//! Quickstart: train a small DNN, run it on approximate DRAM, and see how
//! EDEN's bounding logic and curricular retraining keep its accuracy up.
//!
//! Run with: `cargo run --release --example quickstart`

use eden::core::bounding::{BoundingLogic, CorrectionPolicy};
use eden::core::curricular::{CurricularConfig, CurricularTrainer};
use eden::core::faults::ApproximateMemory;
use eden::core::inference;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset};
use eden::dram::ErrorModel;
use eden::tensor::Precision;

fn main() {
    // 1. Train a LeNet baseline on reliable memory. (The default learning
    //    rate of 0.05 diverges on the 8-class `small` dataset; 0.02 trains
    //    to full accuracy.)
    let dataset = SyntheticVision::small(42);
    let mut net = zoo::lenet(&dataset.spec(), 1);
    let report = Trainer::new(TrainConfig {
        learning_rate: 0.02,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    println!(
        "baseline: train accuracy {:.3}, test accuracy {:.3}",
        report.final_train_accuracy, report.final_test_accuracy
    );

    // 2. Evaluate it on approximate DRAM at increasing bit error rates.
    let template = ErrorModel::uniform(0.01, 0.5, 7);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    println!("\nBER sweep of the *baseline* DNN (int8, with bounding):");
    for &ber in &[1e-4, 1e-3, 5e-3, 2e-2, 5e-2] {
        let mut memory =
            ApproximateMemory::from_model(template.with_ber(ber), 3).with_bounding(bounding);
        let acc = inference::evaluate_with_faults(
            &net,
            &dataset.test()[..96],
            Precision::Int8,
            &mut memory,
        );
        println!("  BER {ber:>8.1e} → accuracy {acc:.3}");
    }

    // 3. Boost the DNN with curricular retraining and re-evaluate.
    let mut boosted = net.clone();
    let trainer = CurricularTrainer::new(CurricularConfig {
        epochs: 6,
        step_epochs: 2,
        target_ber: 1e-2,
        // Fine-tuning rate: the default 0.01 is aggressive enough to undo
        // the baseline on this dataset once errors are being injected.
        learning_rate: 2e-3,
        ..CurricularConfig::default()
    });
    let retrain = trainer.retrain(&mut boosted, &dataset, &template);
    println!(
        "\nafter curricular retraining: reliable accuracy {:.3}, accuracy at BER 1e-2 {:.3}",
        retrain.final_reliable_accuracy, retrain.final_approximate_accuracy
    );

    println!("\nBER sweep of the *boosted* DNN:");
    let boosted_bounding = BoundingLogic::calibrated(
        &boosted,
        &dataset.train()[..16],
        1.5,
        CorrectionPolicy::Zero,
    );
    for &ber in &[1e-4, 1e-3, 5e-3, 2e-2, 5e-2] {
        let mut memory = ApproximateMemory::from_model(template.with_ber(ber), 3)
            .with_bounding(boosted_bounding);
        let acc = inference::evaluate_with_faults(
            &boosted,
            &dataset.test()[..96],
            Precision::Int8,
            &mut memory,
        );
        println!("  BER {ber:>8.1e} → accuracy {acc:.3}");
    }
}
