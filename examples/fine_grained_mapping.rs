//! Fine-grained DNN→DRAM mapping: characterize the error tolerance of every
//! weight tensor and IFM of a ResNet-style network, characterize the BER of
//! each DRAM bank at several voltage levels, and run Algorithm 1 to place
//! each data type in the most aggressive partition it tolerates (the flow of
//! Figures 11 and 12).
//!
//! Run with: `cargo run --release --example fine_grained_mapping`

use eden::core::bounding::{BoundingLogic, CorrectionPolicy};
use eden::core::characterize::{fine_characterize, FineConfig};
use eden::core::mapping::fine_map;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::zoo::ModelId;
use eden::dnn::{DataKind, Dataset};
use eden::dram::characterize::{CharacterizeConfig, DramErrorProfile};
use eden::dram::geometry::{partitions, PartitionGranularity};
use eden::dram::{ApproxDramDevice, ErrorModel, OperatingPoint, Vendor};
use eden::tensor::Precision;

fn main() {
    // Train the ResNet stand-in.
    let model = ModelId::ResNet;
    let dataset = model.dataset(3);
    let mut net = model.build(&dataset.spec(), 3);
    println!("training {model} ...");
    Trainer::new(TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);

    // Fine-grained DNN characterization (Figure 11).
    let template = ErrorModel::uniform(0.01, 0.5, 11);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    println!("characterizing per-data-type error tolerance ...");
    let fine = fine_characterize(
        &net,
        &dataset,
        Precision::Int8,
        &template,
        Some(bounding),
        &FineConfig {
            eval_samples: 48,
            bootstrap_ber: 1e-3,
            max_rounds: 3,
            ..FineConfig::default()
        },
    );
    println!("{:<28} {:>8} {:>12}", "data type", "elements", "max BER");
    for (info, ber) in &fine.tolerances {
        println!(
            "{:<28} {:>8} {:>12.2e}",
            info.site.to_string(),
            info.elements,
            ber
        );
    }

    // DRAM characterization of four banks at four voltage levels (Figure 12
    // uses four partitions with different VDD values).
    let device = ApproxDramDevice::new(Vendor::A, 21);
    let parts = partitions(device.geometry(), PartitionGranularity::Bank);
    let ops = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_vdd_reduction(0.10),
        OperatingPoint::with_vdd_reduction(0.25),
        OperatingPoint::with_vdd_reduction(0.35),
    ];
    println!("\ncharacterizing 4 DRAM bank partitions at 4 voltage levels ...");
    let profile = DramErrorProfile::characterize(
        &device,
        &parts[..4],
        &ops,
        &CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 1024,
            reads_per_row: 3,
            seed: 5,
        },
    );

    // Algorithm 1.
    let mapping = fine_map(&fine, &profile, Precision::Int8);
    println!("\nfine-grained mapping (Algorithm 1):");
    for a in &mapping.assignments {
        let op = &profile.operating_points[a.op_index];
        println!(
            "  {:<26} ({:>5} {}) → partition {} @ {}",
            a.data.site.to_string(),
            a.data.elements,
            if a.data.site.kind == DataKind::Weight {
                "weights"
            } else {
                "ifm"
            },
            a.partition_index,
            op
        );
    }
    println!(
        "\nmapped {:.1}% of DNN bytes to reduced-voltage partitions ({} unmapped data types)",
        100.0 * mapping.mapped_fraction(Precision::Int8),
        mapping.unmapped.len()
    );
}
