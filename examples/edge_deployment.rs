//! Edge-deployment scenario: run the full EDEN pipeline for a mobile-class
//! network (the MobileNetV2 stand-in) against a specific approximate DRAM
//! device, and report the DRAM voltage/latency reductions EDEN unlocks and
//! the resulting DRAM energy savings on an Eyeriss-class accelerator.
//!
//! This is the scenario the paper's introduction motivates: DNN inference on
//! energy-constrained edge devices where DRAM consumes 30–80% of system
//! energy.
//!
//! Run with: `cargo run --release --example edge_deployment`

use eden::core::{EdenConfig, EdenPipeline};
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::zoo::ModelId;
use eden::dnn::Dataset;
use eden::dram::{ApproxDramDevice, OperatingPoint, Vendor};
use eden::sysim::{AcceleratorConfig, AcceleratorSim, WorkloadProfile};
use eden::tensor::Precision;

fn main() {
    let model = ModelId::MobileNet;
    let dataset = model.dataset(7);
    let mut net = model.build(&dataset.spec(), 7);
    println!("training the {model} baseline ...");
    let report = Trainer::new(TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    println!("baseline test accuracy: {:.3}", report.final_test_accuracy);

    // The target edge device ships DRAM from vendor A.
    let device = ApproxDramDevice::new(Vendor::A, 99);
    println!("\nrunning the EDEN pipeline (characterize → boost → map) ...");
    let outcome = EdenPipeline::new(EdenConfig {
        accuracy_drop: 0.01,
        precision: Precision::Int8,
        ..EdenConfig::default()
    })
    .run(&mut net, &dataset, &device);

    println!("selected error model: {}", outcome.error_model);
    println!(
        "tolerable BER: baseline {:.2e} → boosted {:.2e} ({:.1}x boost)",
        outcome.baseline_tolerable_ber, outcome.boosted.max_tolerable_ber, outcome.boost_factor
    );
    println!(
        "coarse mapping: ΔVDD = -{:.2} V, ΔtRCD = -{:.1} ns",
        outcome.mapping.vdd_reduction, outcome.mapping.trcd_reduction_ns
    );

    // System-level effect on an Eyeriss-class edge accelerator.
    let workload = WorkloadProfile::for_model(model, Precision::Int8);
    for config in [
        AcceleratorConfig::eyeriss_ddr4(),
        AcceleratorConfig::eyeriss_lpddr3(),
    ] {
        let sim = AcceleratorSim::new(config);
        let nominal = sim.run(&workload, &OperatingPoint::nominal());
        let reduced = sim.run(&workload, &outcome.mapping.operating_point);
        println!(
            "{:<16} DRAM energy {:.2} mJ → {:.2} mJ  ({:.1}% savings)",
            config.name,
            nominal.dram_energy.total_mj(),
            reduced.dram_energy.total_mj(),
            100.0 * reduced.energy_reduction_vs(&nominal)
        );
    }
}
