//! Data-center scenario: estimate fleet-level DRAM energy savings when EDEN
//! runs the paper's six system-evaluation networks on CPU, GPU and TPU
//! serving platforms, using each model's Table 3 operating point.
//!
//! Run with: `cargo run --release --example datacenter_capacity`

use eden::dnn::zoo::ModelId;
use eden::dram::OperatingPoint;
use eden::sysim::result::geometric_mean;
use eden::sysim::{AcceleratorConfig, AcceleratorSim, CpuSim, GpuSim, WorkloadProfile};
use eden::tensor::Precision;

fn main() {
    let cpu = CpuSim::table4();
    let gpu = GpuSim::table5();
    let tpu = AcceleratorSim::new(AcceleratorConfig::tpu_ddr4());

    println!(
        "{:<14} {:>7} | {:>10} {:>10} {:>10} | {:>9}",
        "model", "ΔVDD", "CPU save", "GPU save", "TPU save", "CPU speedup"
    );

    let mut cpu_savings = Vec::new();
    let mut gpu_savings = Vec::new();
    let mut tpu_savings = Vec::new();
    let mut cpu_speedups = Vec::new();

    for id in ModelId::system_eval() {
        let spec = id.spec();
        let Some((_, dvdd, dtrcd)) = spec.paper.coarse_int8 else {
            continue;
        };
        let workload = WorkloadProfile::for_model(id, Precision::Int8);
        let energy_op = OperatingPoint::with_vdd_reduction(dvdd);
        let latency_op = OperatingPoint::with_trcd_reduction(dtrcd);

        let cpu_nom = cpu.run(&workload, &OperatingPoint::nominal());
        let cpu_red = cpu.run(&workload, &energy_op);
        let cpu_fast = cpu.run(&workload, &latency_op);
        let gpu_nom = gpu.run(&workload, &OperatingPoint::nominal());
        let gpu_red = gpu.run(&workload, &energy_op);
        let tpu_nom = tpu.run(&workload, &OperatingPoint::nominal());
        let tpu_red = tpu.run(&workload, &energy_op);

        let cs = cpu_red.energy_reduction_vs(&cpu_nom);
        let gs = gpu_red.energy_reduction_vs(&gpu_nom);
        let ts = tpu_red.energy_reduction_vs(&tpu_nom);
        let sp = cpu_fast.speedup_over(&cpu_nom);
        cpu_savings.push(1.0 - cs);
        gpu_savings.push(1.0 - gs);
        tpu_savings.push(1.0 - ts);
        cpu_speedups.push(sp);

        println!(
            "{:<14} {:>6.2}V | {:>9.1}% {:>9.1}% {:>9.1}% | {:>9.3}x",
            spec.display_name,
            dvdd,
            100.0 * cs,
            100.0 * gs,
            100.0 * ts,
            sp
        );
    }

    println!(
        "\nfleet geometric means: CPU {:.1}% | GPU {:.1}% | TPU {:.1}% DRAM energy savings, CPU speedup {:.3}x",
        100.0 * (1.0 - geometric_mean(&cpu_savings)),
        100.0 * (1.0 - geometric_mean(&gpu_savings)),
        100.0 * (1.0 - geometric_mean(&tpu_savings)),
        geometric_mean(&cpu_speedups)
    );
    println!("(paper, within-1%-accuracy setting: CPU 21%, GPU 37%, TPU 32%, CPU speedup 1.08x)");
}
