//! Per-layer DRAM traffic and compute profiles of DNN inference workloads.
//!
//! The system models are driven by how many bytes each DNN layer moves to and
//! from DRAM (weights, IFMs, OFMs) and how many multiply-accumulates it
//! performs. Profiles can be built directly from a [`Network`] or from a zoo
//! [`ModelId`], in which case the traffic is scaled to the paper's Table 1
//! footprints so that the *memory intensity* of the full-size networks — the
//! property the system results depend on — is preserved even though our
//! trained networks are scaled down (see `DESIGN.md`).

use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};
use eden_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Per-layer DRAM traffic and compute of one inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTraffic {
    /// Layer name.
    pub name: String,
    /// Weight bytes loaded from DRAM.
    pub weight_bytes: u64,
    /// Input-feature-map bytes loaded from DRAM.
    pub ifm_bytes: u64,
    /// Output-feature-map bytes written to DRAM.
    pub ofm_bytes: u64,
    /// Multiply-accumulate operations.
    pub macs: u64,
}

impl LayerTraffic {
    /// Total DRAM bytes moved by this layer.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.ifm_bytes + self.ofm_bytes
    }
}

/// The DRAM traffic and compute profile of one DNN inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Name of the DNN.
    pub model_name: String,
    /// Numeric precision of weights and feature maps.
    pub precision: Precision,
    /// Per-layer traffic, in execution order.
    pub layers: Vec<LayerTraffic>,
    /// Fraction of DRAM accesses that are irregular (pointer-chasing-like
    /// indexing that prefetchers cannot cover). The paper attributes YOLO's
    /// latency sensitivity to exactly such accesses (non-maximum suppression
    /// and confidence thresholding, Section 7.1).
    pub irregular_access_fraction: f64,
}

impl WorkloadProfile {
    /// Builds a profile directly from a network.
    pub fn from_network(
        net: &Network,
        precision: Precision,
        irregular_access_fraction: f64,
    ) -> Self {
        let bytes_per_value = precision.bits() as u64;
        let mut layers = Vec::with_capacity(net.depth());
        let mut cur_shape = net.input_shape().to_vec();
        for layer in net.layers() {
            let out_shape = layer.output_shape(&cur_shape);
            let ifm_elems: usize = cur_shape.iter().product();
            let ofm_elems: usize = out_shape.iter().product();
            layers.push(LayerTraffic {
                name: layer.name().to_string(),
                weight_bytes: layer.param_count() as u64 * bytes_per_value / 8,
                ifm_bytes: ifm_elems as u64 * bytes_per_value / 8,
                ofm_bytes: ofm_elems as u64 * bytes_per_value / 8,
                macs: layer.macs(&cur_shape),
            });
            cur_shape = out_shape;
        }
        Self {
            model_name: net.name().to_string(),
            precision,
            layers,
            irregular_access_fraction: irregular_access_fraction.clamp(0.0, 1.0),
        }
    }

    /// Builds the profile of a paper model at a precision: the scaled-down
    /// zoo network provides the per-layer *structure*, and total traffic is
    /// scaled to the paper's Table 1 "IFM+Weight size" so the memory
    /// intensity of the full-size network is preserved.
    pub fn for_model(id: ModelId, precision: Precision) -> Self {
        let dataset_spec = id.dataset(0).spec();
        let net = id.build(&dataset_spec, 0);
        let mut profile = Self::from_network(&net, precision, Self::irregularity_for(id));
        profile.model_name = id.spec().display_name.to_string();

        // Scale to the paper footprint: Table 1 reports FP32 sizes in MB.
        let paper_bytes_fp32 = (id.spec().paper.ifm_weight_size_mb as f64) * 1024.0 * 1024.0;
        let paper_bytes = paper_bytes_fp32 * precision.bits() as f64 / 32.0;
        let ours = profile.total_dram_bytes().max(1) as f64;
        let scale = paper_bytes / ours;
        for layer in &mut profile.layers {
            layer.weight_bytes = (layer.weight_bytes as f64 * scale) as u64;
            layer.ifm_bytes = (layer.ifm_bytes as f64 * scale) as u64;
            layer.ofm_bytes = (layer.ofm_bytes as f64 * scale) as u64;
            layer.macs = (layer.macs as f64 * scale) as u64;
        }
        profile
    }

    /// Irregular-access fraction per model family. The YOLO networks perform
    /// arbitrary indexing (NMS, IoU/confidence thresholding) that defeats
    /// prefetchers; the image classifiers stream their data predictably.
    fn irregularity_for(id: ModelId) -> f64 {
        match id {
            ModelId::Yolo => 0.30,
            ModelId::YoloTiny => 0.26,
            ModelId::Vgg16 | ModelId::AlexNet | ModelId::DenseNet => 0.08,
            ModelId::MobileNet | ModelId::LeNet => 0.06,
            ModelId::ResNet | ModelId::SqueezeNet => 0.02,
        }
    }

    /// Total DRAM bytes moved per inference.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.total_bytes()).sum()
    }

    /// Total weight bytes per inference.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Total feature-map bytes (IFM + OFM) per inference.
    pub fn feature_map_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.ifm_bytes + l.ofm_bytes).sum()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Arithmetic intensity: MACs per DRAM byte.
    pub fn macs_per_byte(&self) -> f64 {
        self.total_macs() as f64 / self.total_dram_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::Dataset;

    #[test]
    fn profiles_exist_for_every_zoo_model() {
        for id in ModelId::all() {
            let p = WorkloadProfile::for_model(id, Precision::Int8);
            assert!(!p.layers.is_empty(), "{id}");
            assert!(p.total_dram_bytes() > 0, "{id}");
            assert!(p.total_macs() > 0, "{id}");
        }
    }

    #[test]
    fn paper_scaling_matches_table1_footprint() {
        let p = WorkloadProfile::for_model(ModelId::Vgg16, Precision::Fp32);
        let expected = 218.0 * 1024.0 * 1024.0;
        let actual = p.total_dram_bytes() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.01,
            "VGG traffic {actual} should match Table 1's 218 MB"
        );
    }

    #[test]
    fn int8_traffic_is_quarter_of_fp32() {
        let fp32 = WorkloadProfile::for_model(ModelId::ResNet, Precision::Fp32).total_dram_bytes();
        let int8 = WorkloadProfile::for_model(ModelId::ResNet, Precision::Int8).total_dram_bytes();
        let ratio = fp32 as f64 / int8 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn yolo_is_marked_irregular_resnet_is_not() {
        let yolo = WorkloadProfile::for_model(ModelId::Yolo, Precision::Int8);
        let resnet = WorkloadProfile::for_model(ModelId::ResNet, Precision::Int8);
        assert!(yolo.irregular_access_fraction > 3.0 * resnet.irregular_access_fraction);
    }

    #[test]
    fn from_network_traffic_matches_network_accounting() {
        let id = ModelId::LeNet;
        let spec = id.dataset(0).spec();
        let net = id.build(&spec, 0);
        let p = WorkloadProfile::from_network(&net, Precision::Fp32, 0.05);
        assert_eq!(p.weight_bytes(), net.weight_bytes(Precision::Fp32));
        // IFM accounting in the profile equals the network's own IFM bytes.
        let ifm: u64 = p.layers.iter().map(|l| l.ifm_bytes).sum();
        assert_eq!(ifm, net.ifm_bytes(Precision::Fp32));
        assert_eq!(p.total_macs(), net.total_macs());
    }

    #[test]
    fn arithmetic_intensity_is_finite_and_positive() {
        for id in [ModelId::Vgg16, ModelId::SqueezeNet, ModelId::Yolo] {
            let p = WorkloadProfile::for_model(id, Precision::Int8);
            assert!(p.macs_per_byte() > 0.0);
            assert!(p.macs_per_byte().is_finite());
        }
    }
}
