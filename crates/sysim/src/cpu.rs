//! Trace-driven multi-core CPU model (Table 4).
//!
//! The paper simulates a 2-core out-of-order CPU with a three-level cache
//! hierarchy and a 2-channel DDR4-2133 memory system using ZSim + Ramulator,
//! and estimates DRAM energy with DRAMPower (Section 7.1). This model keeps
//! the first-order behaviour those tools expose:
//!
//! * execution time is the larger of compute time and DRAM-bandwidth time,
//!   plus the row-activation latency that out-of-order execution and
//!   prefetchers cannot hide (which only the irregular accesses of
//!   YOLO-style workloads expose);
//! * DRAM energy is per-command energy plus background energy, scaled by
//!   `VDD²` through [`DramEnergyModel`].

use crate::result::SystemResult;
use crate::sim::{filtered_traffic, voltage_only, SystemSim};
use crate::workload::WorkloadProfile;
use eden_dram::energy::{AccessCounts, DramEnergyModel, DramKind};
use eden_dram::params::TimingParams;
use eden_dram::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated CPU system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Multiply-accumulates each core retires per cycle (SIMD units).
    pub macs_per_cycle_per_core: f64,
    /// Aggregate DRAM bandwidth in bytes per nanosecond.
    pub dram_bandwidth_bytes_per_ns: f64,
    /// Fraction of feature-map traffic served by the cache hierarchy
    /// (weights are streamed from DRAM: they are used once per inference).
    pub feature_map_cache_hit_rate: f64,
    /// Row-buffer hit rate of regular (streaming) accesses.
    pub regular_row_hit_rate: f64,
    /// Row-buffer hit rate of irregular accesses.
    pub irregular_row_hit_rate: f64,
    /// Nanoseconds of each row-miss latency hidden by out-of-order execution,
    /// prefetching and memory-level parallelism.
    pub hidden_latency_ns: f64,
    /// Fraction of a workload's irregular accesses that turn into exposed
    /// (demand, unprefetchable) DRAM row misses.
    pub irregular_miss_weight: f64,
}

impl CpuConfig {
    /// The configuration of Table 4 (2 cores at 4 GHz, DDR4-2133 × 2
    /// channels).
    pub fn table4() -> Self {
        Self {
            cores: 2,
            freq_ghz: 4.0,
            macs_per_cycle_per_core: 32.0,
            dram_bandwidth_bytes_per_ns: 34.0,
            feature_map_cache_hit_rate: 0.60,
            regular_row_hit_rate: 0.85,
            irregular_row_hit_rate: 0.40,
            hidden_latency_ns: 31.0,
            irregular_miss_weight: 0.25,
        }
    }

    /// Peak MAC throughput in MACs per nanosecond.
    pub fn macs_per_ns(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.macs_per_cycle_per_core
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::table4()
    }
}

/// The CPU system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSim {
    config: CpuConfig,
}

impl CpuSim {
    /// Creates a simulator with an explicit configuration.
    pub fn new(config: CpuConfig) -> Self {
        Self { config }
    }

    /// Creates the Table 4 configuration.
    pub fn table4() -> Self {
        Self::new(CpuConfig::table4())
    }

    /// The simulator configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Runs one inference of `workload` with DRAM at `op`.
    pub fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        self.run_with_timing(workload, op.timing, op.vdd_reduction())
    }

    /// Runs one inference with an idealized zero `tRCD` (the "ideal
    /// activation latency" bar of Figure 14) at nominal voltage.
    pub fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult {
        let timing = TimingParams {
            trcd_ns: 0.0,
            ..TimingParams::nominal()
        };
        self.run_with_timing(workload, timing, 0.0)
    }

    fn run_with_timing(
        &self,
        workload: &WorkloadProfile,
        timing: TimingParams,
        vdd_reduction: f32,
    ) -> SystemResult {
        let cfg = &self.config;

        // DRAM traffic after cache filtering (shared with the GPU model).
        let traffic = filtered_traffic(workload, cfg.feature_map_cache_hit_rate);

        // Row-buffer behaviour: irregular accesses hit open rows less often.
        let irregular = workload.irregular_access_fraction;
        let row_hit =
            cfg.regular_row_hit_rate * (1.0 - irregular) + cfg.irregular_row_hit_rate * irregular;
        let activations = ((traffic.reads + traffic.writes) as f64 * (1.0 - row_hit)).ceil() as u64;

        // Time components.
        let compute_ns = workload.total_macs() as f64 / cfg.macs_per_ns();
        let bandwidth_ns =
            (traffic.read_bytes + traffic.write_bytes) / cfg.dram_bandwidth_bytes_per_ns;
        let exposed_misses = traffic.reads as f64 * irregular * cfg.irregular_miss_weight;
        let miss_latency =
            (timing.trp_ns + timing.trcd_ns + timing.cl_ns) as f64 - cfg.hidden_latency_ns;
        let exposed_latency_ns = exposed_misses * miss_latency.max(0.0);
        let time_ns = compute_ns.max(bandwidth_ns) + exposed_latency_ns;

        let counts = AccessCounts {
            activations,
            reads: traffic.reads,
            writes: traffic.writes,
            elapsed_ns: time_ns,
        };
        let energy_model =
            DramEnergyModel::at_operating_point(DramKind::Ddr4, &voltage_only(vdd_reduction));
        SystemResult {
            time_ns,
            compute_ns,
            bandwidth_ns,
            exposed_latency_ns,
            dram_counts: counts,
            dram_energy: energy_model.energy(&counts),
        }
    }
}

impl SystemSim for CpuSim {
    fn name(&self) -> &str {
        "CPU (Table 4)"
    }

    fn macs_per_ns(&self) -> f64 {
        self.config.macs_per_ns()
    }

    fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        CpuSim::run(self, workload, op)
    }

    fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult {
        CpuSim::run_ideal_latency(self, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::zoo::ModelId;
    use eden_tensor::Precision;

    fn profile(id: ModelId) -> WorkloadProfile {
        WorkloadProfile::for_model(id, Precision::Int8)
    }

    #[test]
    fn reduced_trcd_speeds_up_latency_bound_workloads() {
        let cpu = CpuSim::table4();
        let yolo = profile(ModelId::Yolo);
        let nominal = cpu.run(&yolo, &OperatingPoint::nominal());
        let reduced = cpu.run(&yolo, &OperatingPoint::with_trcd_reduction(5.5));
        let ideal = cpu.run_ideal_latency(&yolo);
        let speedup = reduced.speedup_over(&nominal);
        let ideal_speedup = ideal.speedup_over(&nominal);
        assert!(speedup > 1.05, "YOLO speedup {speedup} too small");
        assert!(speedup < 1.30, "YOLO speedup {speedup} implausibly large");
        assert!(ideal_speedup >= speedup);
        // EDEN should capture most of the ideal-tRCD benefit (Figure 14).
        assert!(
            (speedup - 1.0) > 0.6 * (ideal_speedup - 1.0),
            "EDEN speedup {speedup} should be close to ideal {ideal_speedup}"
        );
    }

    #[test]
    fn compute_bound_workloads_see_little_speedup() {
        let cpu = CpuSim::table4();
        for id in [ModelId::ResNet, ModelId::SqueezeNet] {
            let p = profile(id);
            let nominal = cpu.run(&p, &OperatingPoint::nominal());
            let ideal = cpu.run_ideal_latency(&p);
            let s = ideal.speedup_over(&nominal);
            assert!(s < 1.04, "{id}: ideal speedup {s} should be marginal");
        }
    }

    #[test]
    fn voltage_reduction_saves_dram_energy_without_changing_time() {
        let cpu = CpuSim::table4();
        let p = profile(ModelId::Vgg16);
        let nominal = cpu.run(&p, &OperatingPoint::nominal());
        let reduced = cpu.run(&p, &OperatingPoint::with_vdd_reduction(0.35));
        assert!((reduced.time_ns - nominal.time_ns).abs() < 1e-6);
        let saving = reduced.energy_reduction_vs(&nominal);
        assert!(
            saving > 0.25 && saving < 0.45,
            "VGG energy saving {saving} outside the paper's ballpark"
        );
    }

    #[test]
    fn smaller_voltage_reduction_saves_less() {
        let cpu = CpuSim::table4();
        let p = profile(ModelId::SqueezeNet);
        let nominal = cpu.run(&p, &OperatingPoint::nominal());
        let small = cpu.run(&p, &OperatingPoint::with_vdd_reduction(0.10));
        let large = cpu.run(&p, &OperatingPoint::with_vdd_reduction(0.30));
        assert!(small.energy_reduction_vs(&nominal) < large.energy_reduction_vs(&nominal));
        assert!(small.energy_reduction_vs(&nominal) > 0.02);
    }

    #[test]
    fn activations_never_exceed_accesses() {
        let cpu = CpuSim::table4();
        for id in ModelId::all() {
            let r = cpu.run(&profile(id), &OperatingPoint::nominal());
            assert!(r.dram_counts.activations <= r.dram_counts.reads + r.dram_counts.writes);
            assert!(r.time_ns > 0.0);
        }
    }

    #[test]
    fn irregular_workloads_expose_more_latency() {
        let cpu = CpuSim::table4();
        let yolo = cpu.run(&profile(ModelId::Yolo), &OperatingPoint::nominal());
        let resnet = cpu.run(&profile(ModelId::ResNet), &OperatingPoint::nominal());
        let yolo_frac = yolo.exposed_latency_ns / yolo.time_ns;
        let resnet_frac = resnet.exposed_latency_ns / resnet.time_ns;
        assert!(yolo_frac > 3.0 * resnet_frac.max(1e-6));
    }
}
