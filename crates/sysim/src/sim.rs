//! The common system-simulator interface and shared plumbing.
//!
//! The paper evaluates EDEN on three kinds of systems — a multi-core CPU
//! (Table 4), a Titan X-class GPU (Table 5) and two systolic accelerators
//! (Table 6) — and every one of its system experiments runs the same loop:
//! per workload, simulate at the nominal operating point, at a reduced-VDD
//! point (energy), and at a reduced-tRCD point (performance). [`SystemSim`]
//! is that loop's interface: the experiment binaries iterate one
//! `Vec<Box<dyn SystemSim>>` instead of copy-pasting per-simulator plumbing,
//! and the traffic/energy helpers here keep the CPU and GPU models from
//! duplicating their cache-filtered DRAM-traffic math.

use crate::accelerator::{AcceleratorConfig, AcceleratorSim};
use crate::cpu::CpuSim;
use crate::gpu::GpuSim;
use crate::result::SystemResult;
use crate::workload::WorkloadProfile;
use eden_dram::OperatingPoint;

/// One slice of a workload's DRAM traffic resident on memory running at its
/// own operating point — the per-`(module, partition)` accounting unit of a
/// multi-module placement plan ([Figure 12]'s fine-grained mapping
/// generalized across modules).
///
/// [Figure 12]: https://arxiv.org/abs/1905.03853
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficShare {
    /// Bytes of the workload's DRAM data resident in this share.
    pub bytes: u64,
    /// Voltage reduction of the share's operating point (volts).
    pub vdd_reduction: f32,
    /// `tRCD` reduction of the share's operating point (nanoseconds).
    pub trcd_reduction_ns: f32,
}

/// A system-level simulator: runs one DNN inference against DRAM at a given
/// operating point and reports time, traffic and energy.
pub trait SystemSim {
    /// Human-readable system name (used by the evaluation binaries' tables).
    fn name(&self) -> &str;

    /// Peak MAC throughput in MACs per nanosecond.
    fn macs_per_ns(&self) -> f64;

    /// Runs one inference of `workload` with DRAM at `op`.
    fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult;

    /// Runs one inference with an idealized zero `tRCD` at nominal voltage
    /// (the "ideal activation latency" bar of Figure 14).
    fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult;

    /// Fractional DRAM energy saving of running at a `vdd_reduction`-volt
    /// reduced rail versus nominal.
    fn energy_saving(&self, workload: &WorkloadProfile, vdd_reduction: f32) -> f64 {
        let nominal = self.run(workload, &OperatingPoint::nominal());
        self.run(workload, &OperatingPoint::with_vdd_reduction(vdd_reduction))
            .energy_reduction_vs(&nominal)
    }

    /// Speedup of running with `trcd_reduction_ns` shaved off `tRCD` versus
    /// nominal.
    fn trcd_speedup(&self, workload: &WorkloadProfile, trcd_reduction_ns: f32) -> f64 {
        let nominal = self.run(workload, &OperatingPoint::nominal());
        self.run(
            workload,
            &OperatingPoint::with_trcd_reduction(trcd_reduction_ns),
        )
        .speedup_over(&nominal)
    }

    /// Fractional DRAM energy saving of a multi-module placement: each
    /// [`TrafficShare`]'s bytes are served at its own reduced rail, so the
    /// saving is the bytes-weighted mean of the per-share savings. Empty or
    /// zero-byte shares save nothing.
    fn mixed_energy_saving(&self, workload: &WorkloadProfile, shares: &[TrafficShare]) -> f64 {
        let total: u64 = shares.iter().map(|s| s.bytes).sum();
        if total == 0 {
            return 0.0;
        }
        shares
            .iter()
            .filter(|s| s.bytes > 0)
            .map(|s| {
                let saving = if s.vdd_reduction > 0.0 {
                    self.energy_saving(workload, s.vdd_reduction)
                } else {
                    0.0
                };
                saving * s.bytes as f64 / total as f64
            })
            .sum()
    }

    /// Speedup of a multi-module placement: each share's accesses complete at
    /// its own `tRCD`, so the combined speedup is the bytes-weighted
    /// *harmonic* mean of the per-share speedups (time adds, rates do not).
    /// Empty or zero-byte shares leave the speedup at 1.
    fn mixed_trcd_speedup(&self, workload: &WorkloadProfile, shares: &[TrafficShare]) -> f64 {
        let total: u64 = shares.iter().map(|s| s.bytes).sum();
        if total == 0 {
            return 1.0;
        }
        let inverse: f64 = shares
            .iter()
            .filter(|s| s.bytes > 0)
            .map(|s| {
                let speedup = if s.trcd_reduction_ns > 0.0 {
                    self.trcd_speedup(workload, s.trcd_reduction_ns)
                } else {
                    1.0
                };
                (s.bytes as f64 / total as f64) / speedup
            })
            .sum();
        1.0 / inverse
    }
}

/// The four systolic-accelerator configurations of Table 6 (Section 7.2),
/// as a trait-object list — the single source of truth for "every
/// accelerator the paper evaluates".
pub fn accelerator_sims() -> Vec<Box<dyn SystemSim>> {
    [
        AcceleratorConfig::eyeriss_ddr4(),
        AcceleratorConfig::tpu_ddr4(),
        AcceleratorConfig::eyeriss_lpddr3(),
        AcceleratorConfig::tpu_lpddr3(),
    ]
    .into_iter()
    .map(|config| Box::new(AcceleratorSim::new(config)) as Box<dyn SystemSim>)
    .collect()
}

/// Every simulator of the paper's evaluation (Tables 4–6), as one
/// trait-object list: the Table 4 CPU, the Table 5 GPU, and the four
/// accelerator configurations.
pub fn standard_sims() -> Vec<Box<dyn SystemSim>> {
    let mut sims: Vec<Box<dyn SystemSim>> =
        vec![Box::new(CpuSim::table4()), Box::new(GpuSim::table5())];
    sims.extend(accelerator_sims());
    sims
}

/// DRAM cache-line traffic of one inference after cache filtering, shared by
/// the CPU and GPU models (the accelerator model adds SRAM tiling on top and
/// keeps its own accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DramTraffic {
    pub read_bytes: f64,
    pub write_bytes: f64,
    pub reads: u64,
    pub writes: u64,
}

/// Computes the cache-filtered DRAM traffic: weights stream from DRAM (used
/// once per inference), while feature-map traffic is split between reads and
/// writes and filtered by the on-chip hit rate.
pub(crate) fn filtered_traffic(
    workload: &WorkloadProfile,
    feature_map_cache_hit_rate: f64,
) -> DramTraffic {
    let weight_bytes = workload.weight_bytes() as f64;
    let fm_bytes = workload.feature_map_bytes() as f64;
    let read_bytes = weight_bytes + fm_bytes * 0.5 * (1.0 - feature_map_cache_hit_rate);
    let write_bytes = fm_bytes * 0.5 * (1.0 - feature_map_cache_hit_rate);
    DramTraffic {
        read_bytes,
        write_bytes,
        reads: (read_bytes / 64.0).ceil() as u64,
        writes: (write_bytes / 64.0).ceil() as u64,
    }
}

/// Builds an operating point carrying only a voltage reduction (used for
/// energy accounting; timing is handled separately by each model).
pub(crate) fn voltage_only(vdd_reduction: f32) -> OperatingPoint {
    if vdd_reduction <= 0.0 {
        OperatingPoint::nominal()
    } else {
        OperatingPoint::with_vdd_reduction(vdd_reduction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::zoo::ModelId;
    use eden_tensor::Precision;

    #[test]
    fn every_standard_sim_upholds_the_shared_invariants() {
        let workload = WorkloadProfile::for_model(ModelId::AlexNet, Precision::Int8);
        for sim in standard_sims() {
            let nominal = sim.run(&workload, &OperatingPoint::nominal());
            assert!(nominal.time_ns > 0.0, "{}", sim.name());
            assert!(sim.macs_per_ns() > 0.0, "{}", sim.name());
            // Voltage reduction always saves DRAM energy without slowing
            // anything down.
            let saving = sim.energy_saving(&workload, 0.30);
            assert!(
                saving > 0.1 && saving < 0.5,
                "{}: saving {saving}",
                sim.name()
            );
            let reduced = sim.run(&workload, &OperatingPoint::with_vdd_reduction(0.30));
            assert!(
                (reduced.time_ns - nominal.time_ns).abs() < 1e-6,
                "{}",
                sim.name()
            );
            // tRCD reductions never hurt, and the ideal-latency run bounds
            // every achievable speedup.
            let speedup = sim.trcd_speedup(&workload, 5.5);
            let ideal = sim.run_ideal_latency(&workload).speedup_over(&nominal);
            assert!(speedup >= 1.0 - 1e-12, "{}: speedup {speedup}", sim.name());
            assert!(
                ideal >= speedup - 1e-12,
                "{}: ideal {ideal} < speedup {speedup}",
                sim.name()
            );
        }
    }

    #[test]
    fn mixed_costs_interpolate_between_pure_operating_points() {
        let workload = WorkloadProfile::for_model(ModelId::AlexNet, Precision::Int8);
        let sim = CpuSim::table4();
        // A single share holding all bytes degenerates to the pure helpers.
        let all = [TrafficShare {
            bytes: 1 << 20,
            vdd_reduction: 0.30,
            trcd_reduction_ns: 5.5,
        }];
        let pure_saving = sim.energy_saving(&workload, 0.30);
        let pure_speedup = sim.trcd_speedup(&workload, 5.5);
        assert!((sim.mixed_energy_saving(&workload, &all) - pure_saving).abs() < 1e-12);
        assert!((sim.mixed_trcd_speedup(&workload, &all) - pure_speedup).abs() < 1e-12);
        // A 50/50 split with nominal halves the saving and lands the
        // harmonic-mean speedup strictly between 1 and the pure speedup.
        let nominal = TrafficShare {
            bytes: 1 << 20,
            vdd_reduction: 0.0,
            trcd_reduction_ns: 0.0,
        };
        let split = [all[0], nominal];
        let mixed_saving = sim.mixed_energy_saving(&workload, &split);
        assert!((mixed_saving - pure_saving / 2.0).abs() < 1e-12);
        let mixed_speedup = sim.mixed_trcd_speedup(&workload, &split);
        assert!(mixed_speedup > 1.0 && mixed_speedup < pure_speedup);
        // All-nominal and empty placements are the identity.
        assert_eq!(sim.mixed_energy_saving(&workload, &[nominal]), 0.0);
        assert_eq!(sim.mixed_trcd_speedup(&workload, &[nominal]), 1.0);
        assert_eq!(sim.mixed_energy_saving(&workload, &[]), 0.0);
        assert_eq!(sim.mixed_trcd_speedup(&workload, &[]), 1.0);
    }

    #[test]
    fn standard_sims_have_distinct_names() {
        let sims = standard_sims();
        let mut names: Vec<&str> = sims.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), sims.len());
    }

    #[test]
    fn filtered_traffic_scales_with_hit_rate() {
        let workload = WorkloadProfile::for_model(ModelId::Vgg16, Precision::Int8);
        let cold = filtered_traffic(&workload, 0.0);
        let warm = filtered_traffic(&workload, 0.9);
        assert!(warm.read_bytes < cold.read_bytes);
        assert!(warm.write_bytes < cold.write_bytes);
        // Weights always stream from DRAM regardless of the hit rate.
        assert!(warm.read_bytes >= workload.weight_bytes() as f64);
        assert_eq!(cold.reads, (cold.read_bytes / 64.0).ceil() as u64);
    }
}
