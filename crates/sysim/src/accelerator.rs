//! Systolic-array DNN accelerator model: Eyeriss and TPU (Table 6).
//!
//! The paper models both accelerators with SCALE-Sim and feeds the resulting
//! DRAM traces to DRAMPower (Section 7.2). Its two findings are that (1)
//! reducing DRAM voltage saves 31–32% of DRAM energy with DDR4 (21% with
//! LPDDR3), and (2) reducing `tRCD` gives **no** speedup, because the
//! accelerators' regular dataflows are perfectly prefetchable. The model
//! below reproduces both: double-buffered, software-orchestrated DMA hides
//! all activation latency, and energy follows the `VDD²`-scaled command
//! energies of the DRAM traffic.

use crate::result::SystemResult;
use crate::sim::{voltage_only, SystemSim};
use crate::workload::WorkloadProfile;
use eden_dram::energy::{AccessCounts, DramEnergyModel, DramKind};
use eden_dram::OperatingPoint;
use serde::Serialize;

/// Configuration of a systolic-array accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AcceleratorConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Processing-element rows.
    pub pe_rows: usize,
    /// Processing-element columns.
    pub pe_cols: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// On-chip SRAM buffer in bytes (all data types).
    pub sram_bytes: u64,
    /// Average utilization of the PE array.
    pub utilization: f64,
    /// DRAM bandwidth in bytes per nanosecond.
    pub dram_bandwidth_bytes_per_ns: f64,
    /// DRAM device family attached to the accelerator.
    pub dram_kind: DramKind,
    /// Fraction of DRAM energy on the scaled voltage rail.
    pub vdd_scalable_fraction: f64,
}

impl AcceleratorConfig {
    /// Eyeriss (12×14 PEs, 324 KB buffer) with DDR4-2400.
    pub fn eyeriss_ddr4() -> Self {
        Self {
            name: "Eyeriss/DDR4",
            pe_rows: 12,
            pe_cols: 14,
            freq_ghz: 0.2,
            sram_bytes: 324 * 1024,
            utilization: 0.75,
            dram_bandwidth_bytes_per_ns: 19.2,
            dram_kind: DramKind::Ddr4,
            vdd_scalable_fraction: 0.78,
        }
    }

    /// Eyeriss with LPDDR3-1600.
    pub fn eyeriss_lpddr3() -> Self {
        Self {
            name: "Eyeriss/LPDDR3",
            dram_bandwidth_bytes_per_ns: 12.8,
            dram_kind: DramKind::Lpddr3,
            vdd_scalable_fraction: 0.48,
            ..Self::eyeriss_ddr4()
        }
    }

    /// Google TPU (256×256 PEs, 24 MB buffer) with DDR4-2400.
    pub fn tpu_ddr4() -> Self {
        Self {
            name: "TPU/DDR4",
            pe_rows: 256,
            pe_cols: 256,
            freq_ghz: 0.7,
            sram_bytes: 24 * 1024 * 1024,
            utilization: 0.55,
            dram_bandwidth_bytes_per_ns: 19.2,
            dram_kind: DramKind::Ddr4,
            vdd_scalable_fraction: 0.80,
        }
    }

    /// TPU with LPDDR3-1600.
    pub fn tpu_lpddr3() -> Self {
        Self {
            name: "TPU/LPDDR3",
            dram_bandwidth_bytes_per_ns: 12.8,
            dram_kind: DramKind::Lpddr3,
            vdd_scalable_fraction: 0.48,
            ..Self::tpu_ddr4()
        }
    }

    /// Peak MAC throughput in MACs per nanosecond.
    pub fn macs_per_ns(&self) -> f64 {
        self.pe_rows as f64 * self.pe_cols as f64 * self.freq_ghz * self.utilization
    }
}

/// The accelerator simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AcceleratorSim {
    config: AcceleratorConfig,
}

impl AcceleratorSim {
    /// Creates a simulator with an explicit configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one inference of `workload` with DRAM at `op`.
    ///
    /// The systolic dataflow is fully double-buffered, so execution time is
    /// the larger of compute time and DRAM streaming time: `tRCD` reductions
    /// change nothing (the paper's observation), while voltage reductions
    /// scale DRAM energy.
    pub fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        let cfg = &self.config;

        // Layers whose working set exceeds the SRAM buffer re-fetch part of
        // their data (simple tiling overhead).
        let mut read_bytes = 0.0f64;
        let mut write_bytes = 0.0f64;
        for layer in &workload.layers {
            let working_set = layer.weight_bytes + layer.ifm_bytes;
            let tiling = if working_set > cfg.sram_bytes {
                1.0 + 0.25 * (working_set as f64 / cfg.sram_bytes as f64).log2().max(0.0)
            } else {
                1.0
            };
            read_bytes += (layer.weight_bytes + layer.ifm_bytes) as f64 * tiling;
            write_bytes += layer.ofm_bytes as f64;
        }
        let reads = (read_bytes / 64.0).ceil() as u64;
        let writes = (write_bytes / 64.0).ceil() as u64;
        // Streaming DMA accesses have very high row locality.
        let activations = ((reads + writes) as f64 * 0.08).ceil() as u64;

        let compute_ns = workload.total_macs() as f64 / cfg.macs_per_ns();
        let bandwidth_ns = (read_bytes + write_bytes) / cfg.dram_bandwidth_bytes_per_ns;
        let time_ns = compute_ns.max(bandwidth_ns);

        let counts = AccessCounts {
            activations,
            reads,
            writes,
            elapsed_ns: time_ns,
        };
        let energy_model =
            DramEnergyModel::at_operating_point(cfg.dram_kind, &voltage_only(op.vdd_reduction()))
                .with_scalable_fraction(cfg.vdd_scalable_fraction);
        SystemResult {
            time_ns,
            compute_ns,
            bandwidth_ns,
            exposed_latency_ns: 0.0,
            dram_counts: counts,
            dram_energy: energy_model.energy(&counts),
        }
    }
}

impl SystemSim for AcceleratorSim {
    fn name(&self) -> &str {
        self.config.name
    }

    fn macs_per_ns(&self) -> f64 {
        self.config.macs_per_ns()
    }

    fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        AcceleratorSim::run(self, workload, op)
    }

    /// The systolic dataflow already hides every activation latency behind
    /// double-buffered DMA, so the ideal-`tRCD` run *is* the nominal run —
    /// the paper's "no speedup from tRCD on accelerators" observation.
    fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult {
        AcceleratorSim::run(self, workload, &OperatingPoint::nominal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::zoo::ModelId;
    use eden_tensor::Precision;

    fn workloads() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::for_model(ModelId::AlexNet, Precision::Int8),
            WorkloadProfile::for_model(ModelId::YoloTiny, Precision::Int8),
        ]
    }

    #[test]
    fn trcd_reduction_gives_no_accelerator_speedup() {
        for cfg in [
            AcceleratorConfig::eyeriss_ddr4(),
            AcceleratorConfig::tpu_ddr4(),
        ] {
            let sim = AcceleratorSim::new(cfg);
            for w in workloads() {
                let nominal = sim.run(&w, &OperatingPoint::nominal());
                let reduced = sim.run(&w, &OperatingPoint::with_trcd_reduction(5.5));
                assert!(
                    (reduced.speedup_over(&nominal) - 1.0).abs() < 1e-9,
                    "{}: accelerators must not speed up from tRCD",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn ddr4_voltage_savings_match_paper_ballpark() {
        for cfg in [
            AcceleratorConfig::eyeriss_ddr4(),
            AcceleratorConfig::tpu_ddr4(),
        ] {
            let sim = AcceleratorSim::new(cfg);
            for w in workloads() {
                let nominal = sim.run(&w, &OperatingPoint::nominal());
                let reduced = sim.run(&w, &OperatingPoint::with_vdd_reduction(0.30));
                let saving = reduced.energy_reduction_vs(&nominal);
                assert!(
                    saving > 0.24 && saving < 0.40,
                    "{} saving {saving} outside the 31–32% ballpark",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn lpddr3_savings_are_smaller_than_ddr4_savings() {
        let w = WorkloadProfile::for_model(ModelId::AlexNet, Precision::Int8);
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let saving = |cfg: AcceleratorConfig| {
            let sim = AcceleratorSim::new(cfg);
            sim.run(&w, &op)
                .energy_reduction_vs(&sim.run(&w, &OperatingPoint::nominal()))
        };
        let ddr4 = saving(AcceleratorConfig::eyeriss_ddr4());
        let lpddr3 = saving(AcceleratorConfig::eyeriss_lpddr3());
        assert!(lpddr3 < ddr4);
        assert!(lpddr3 > 0.12 && lpddr3 < 0.30, "LPDDR3 saving {lpddr3}");
    }

    #[test]
    fn tpu_is_faster_than_eyeriss() {
        let w = WorkloadProfile::for_model(ModelId::AlexNet, Precision::Int8);
        let eyeriss = AcceleratorSim::new(AcceleratorConfig::eyeriss_ddr4())
            .run(&w, &OperatingPoint::nominal());
        let tpu =
            AcceleratorSim::new(AcceleratorConfig::tpu_ddr4()).run(&w, &OperatingPoint::nominal());
        assert!(tpu.time_ns <= eyeriss.time_ns);
    }

    #[test]
    fn small_buffer_causes_more_traffic_than_large_buffer() {
        let w = WorkloadProfile::for_model(ModelId::Vgg16, Precision::Fp32);
        let eyeriss = AcceleratorSim::new(AcceleratorConfig::eyeriss_ddr4())
            .run(&w, &OperatingPoint::nominal());
        let tpu =
            AcceleratorSim::new(AcceleratorConfig::tpu_ddr4()).run(&w, &OperatingPoint::nominal());
        assert!(eyeriss.dram_counts.reads >= tpu.dram_counts.reads);
    }
}
