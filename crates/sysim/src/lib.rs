//! # eden-sysim
//!
//! System-level models used by the paper's evaluation (Section 7): a
//! trace-driven multi-core CPU with a three-level cache hierarchy and a DDR4
//! memory subsystem (Table 4, simulated in the paper with ZSim + Ramulator),
//! a Titan X-class GPU (Table 5, GPGPU-Sim + GPUWattch), and two systolic
//! DNN inference accelerators — Eyeriss and the TPU (Table 6, SCALE-Sim) —
//! all sharing a DRAMPower-style energy model from `eden-dram`.
//!
//! These are first-order analytical models driven by per-layer DRAM traffic
//! and compute profiles of the evaluated DNNs ([`workload`]): DRAM energy is
//! per-command energy scaled by `VDD²`, and execution time exposes the
//! portion of row-activation latency (`tRCD`) that prefetchers and
//! memory-level parallelism cannot hide. `DESIGN.md` documents why this
//! substitution preserves the behaviour the paper measures.
//!
//! # Example
//!
//! ```
//! use eden_sysim::{cpu::CpuSim, workload::WorkloadProfile};
//! use eden_dnn::zoo::ModelId;
//! use eden_dram::OperatingPoint;
//! use eden_tensor::Precision;
//!
//! let workload = WorkloadProfile::for_model(ModelId::Yolo, Precision::Int8);
//! let cpu = CpuSim::table4();
//! let nominal = cpu.run(&workload, &OperatingPoint::nominal());
//! let reduced = cpu.run(&workload, &OperatingPoint::with_trcd_reduction(5.5));
//! assert!(reduced.time_ns <= nominal.time_ns);
//! ```

pub mod accelerator;
pub mod cpu;
pub mod gpu;
pub mod result;
pub mod sim;
pub mod workload;

pub use accelerator::{AcceleratorConfig, AcceleratorSim};
pub use cpu::{CpuConfig, CpuSim};
pub use gpu::{GpuConfig, GpuSim};
pub use result::SystemResult;
pub use sim::{accelerator_sims, standard_sims, SystemSim, TrafficShare};
pub use workload::WorkloadProfile;
