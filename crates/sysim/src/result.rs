//! Shared result types of the system simulators.

use eden_dram::energy::{AccessCounts, EnergyBreakdown};
use serde::{Deserialize, Serialize};

/// The outcome of running one DNN inference on a simulated system at a DRAM
/// operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemResult {
    /// End-to-end execution time in nanoseconds.
    pub time_ns: f64,
    /// Time spent on compute (overlappable with memory).
    pub compute_ns: f64,
    /// Time spent streaming data at DRAM bandwidth.
    pub bandwidth_ns: f64,
    /// Memory latency that could not be hidden (exposed stall time).
    pub exposed_latency_ns: f64,
    /// DRAM command counts.
    pub dram_counts: AccessCounts,
    /// DRAM energy breakdown.
    pub dram_energy: EnergyBreakdown,
}

impl SystemResult {
    /// Speedup of this result relative to a baseline run of the same
    /// workload (baseline time / this time).
    pub fn speedup_over(&self, baseline: &SystemResult) -> f64 {
        baseline.time_ns / self.time_ns
    }

    /// Fractional DRAM energy reduction relative to a baseline run.
    pub fn energy_reduction_vs(&self, baseline: &SystemResult) -> f64 {
        1.0 - self.dram_energy.total_nj() / baseline.dram_energy.total_nj()
    }
}

/// Geometric mean of a set of per-workload ratios (the paper reports GMean
/// across workloads in Figures 13 and 14).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(time: f64, energy: f64) -> SystemResult {
        SystemResult {
            time_ns: time,
            compute_ns: time / 2.0,
            bandwidth_ns: time / 4.0,
            exposed_latency_ns: time / 4.0,
            dram_counts: AccessCounts::default(),
            dram_energy: EnergyBreakdown {
                activation_nj: energy,
                ..EnergyBreakdown::default()
            },
        }
    }

    #[test]
    fn speedup_and_energy_reduction_are_relative() {
        let base = result(100.0, 10.0);
        let faster = result(80.0, 7.0);
        assert!((faster.speedup_over(&base) - 1.25).abs() < 1e-9);
        assert!((faster.energy_reduction_vs(&base) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_of_identical_values() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_is_below_arithmetic_mean_for_spread_values() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!(g < 2.5 && g > 1.9);
    }
}
