//! GPU inference model (Table 5).
//!
//! The paper evaluates EDEN on an NVIDIA Titan X simulated with GPGPU-Sim and
//! GPUWattch (Section 7.2). GPUs hide most memory latency with massive
//! multithreading, so the model exposes very little row-activation latency
//! (which is why the paper measures only 0–5.5% speedup) while the GDDR5
//! memory system — almost entirely powered from the scaled rail — yields
//! larger relative DRAM energy savings (37% on average).

use crate::result::SystemResult;
use crate::sim::{filtered_traffic, voltage_only, SystemSim};
use crate::workload::WorkloadProfile;
use eden_dram::energy::{AccessCounts, DramEnergyModel, DramKind};
use eden_dram::params::TimingParams;
use eden_dram::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// MACs per cycle per SM.
    pub macs_per_cycle_per_sm: f64,
    /// Aggregate GDDR5 bandwidth in bytes per nanosecond.
    pub dram_bandwidth_bytes_per_ns: f64,
    /// Fraction of feature-map traffic served by shared memory / L2.
    pub feature_map_cache_hit_rate: f64,
    /// Row-buffer hit rate (GPU memory controllers aggressively coalesce).
    pub row_hit_rate: f64,
    /// Nanoseconds of each row miss hidden by multithreading.
    pub hidden_latency_ns: f64,
    /// Fraction of irregular accesses that become exposed misses.
    pub irregular_miss_weight: f64,
    /// Concurrent outstanding misses the GPU sustains (memory-level
    /// parallelism); exposed latency is divided by this factor.
    pub miss_parallelism: f64,
    /// Fraction of GDDR5 energy on the scaled voltage rail.
    pub vdd_scalable_fraction: f64,
}

impl GpuConfig {
    /// The Titan X configuration of Table 5.
    pub fn table5() -> Self {
        Self {
            sms: 28,
            freq_ghz: 1.417,
            macs_per_cycle_per_sm: 128.0,
            dram_bandwidth_bytes_per_ns: 336.0,
            feature_map_cache_hit_rate: 0.55,
            row_hit_rate: 0.80,
            hidden_latency_ns: 34.0,
            irregular_miss_weight: 0.25,
            miss_parallelism: 16.0,
            vdd_scalable_fraction: 0.92,
        }
    }

    /// Peak MAC throughput in MACs per nanosecond.
    pub fn macs_per_ns(&self) -> f64 {
        self.sms as f64 * self.freq_ghz * self.macs_per_cycle_per_sm
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::table5()
    }
}

/// The GPU system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSim {
    config: GpuConfig,
}

impl GpuSim {
    /// Creates a simulator with an explicit configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// Creates the Table 5 (Titan X) configuration.
    pub fn table5() -> Self {
        Self::new(GpuConfig::table5())
    }

    /// The simulator configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs one inference of `workload` with DRAM at `op`.
    pub fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        self.run_with_timing(workload, op.timing, op.vdd_reduction())
    }

    /// Runs with an idealized zero `tRCD` at nominal voltage.
    pub fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult {
        let timing = TimingParams {
            trcd_ns: 0.0,
            ..TimingParams::nominal()
        };
        self.run_with_timing(workload, timing, 0.0)
    }

    fn run_with_timing(
        &self,
        workload: &WorkloadProfile,
        timing: TimingParams,
        vdd_reduction: f32,
    ) -> SystemResult {
        let cfg = &self.config;
        // Same cache-filtered traffic model as the CPU (shared helper).
        let traffic = filtered_traffic(workload, cfg.feature_map_cache_hit_rate);
        let activations =
            ((traffic.reads + traffic.writes) as f64 * (1.0 - cfg.row_hit_rate)).ceil() as u64;

        let compute_ns = workload.total_macs() as f64 / cfg.macs_per_ns();
        let bandwidth_ns =
            (traffic.read_bytes + traffic.write_bytes) / cfg.dram_bandwidth_bytes_per_ns;
        let exposed_misses =
            traffic.reads as f64 * workload.irregular_access_fraction * cfg.irregular_miss_weight;
        let miss_latency =
            (timing.trp_ns + timing.trcd_ns + timing.cl_ns) as f64 - cfg.hidden_latency_ns;
        let exposed_latency_ns = exposed_misses * miss_latency.max(0.0) / cfg.miss_parallelism;
        // GPUs overlap memory stalls with compute from other thread blocks:
        // exposed latency only matters when the workload is memory bound.
        let time_ns = compute_ns.max(bandwidth_ns + exposed_latency_ns);

        let counts = AccessCounts {
            activations,
            reads: traffic.reads,
            writes: traffic.writes,
            elapsed_ns: time_ns,
        };
        let energy_model =
            DramEnergyModel::at_operating_point(DramKind::Ddr4, &voltage_only(vdd_reduction))
                .with_scalable_fraction(cfg.vdd_scalable_fraction);
        SystemResult {
            time_ns,
            compute_ns,
            bandwidth_ns,
            exposed_latency_ns,
            dram_counts: counts,
            dram_energy: energy_model.energy(&counts),
        }
    }
}

impl SystemSim for GpuSim {
    fn name(&self) -> &str {
        "GPU Titan X (Table 5)"
    }

    fn macs_per_ns(&self) -> f64 {
        self.config.macs_per_ns()
    }

    fn run(&self, workload: &WorkloadProfile, op: &OperatingPoint) -> SystemResult {
        GpuSim::run(self, workload, op)
    }

    fn run_ideal_latency(&self, workload: &WorkloadProfile) -> SystemResult {
        GpuSim::run_ideal_latency(self, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::zoo::ModelId;
    use eden_tensor::Precision;

    #[test]
    fn gpu_is_faster_than_cpu_for_the_same_workload() {
        let p = WorkloadProfile::for_model(ModelId::Yolo, Precision::Fp32);
        let gpu = GpuSim::table5().run(&p, &OperatingPoint::nominal());
        let cpu = crate::cpu::CpuSim::table4().run(&p, &OperatingPoint::nominal());
        assert!(gpu.time_ns < cpu.time_ns);
    }

    #[test]
    fn gpu_energy_savings_are_larger_than_cpu_savings() {
        // Same workload, same voltage reduction: GDDR5's larger scalable
        // fraction yields larger relative savings (37% vs 21% in the paper).
        let p = WorkloadProfile::for_model(ModelId::Yolo, Precision::Int8);
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let gpu = GpuSim::table5();
        let cpu = crate::cpu::CpuSim::table4();
        let gpu_saving = gpu
            .run(&p, &op)
            .energy_reduction_vs(&gpu.run(&p, &OperatingPoint::nominal()));
        let cpu_saving = cpu
            .run(&p, &op)
            .energy_reduction_vs(&cpu.run(&p, &OperatingPoint::nominal()));
        assert!(gpu_saving > cpu_saving);
        assert!(
            gpu_saving > 0.30 && gpu_saving < 0.50,
            "gpu saving {gpu_saving}"
        );
    }

    #[test]
    fn gpu_speedup_is_modest_even_for_yolo() {
        let gpu = GpuSim::table5();
        let tiny = WorkloadProfile::for_model(ModelId::YoloTiny, Precision::Int8);
        let nominal = gpu.run(&tiny, &OperatingPoint::nominal());
        let reduced = gpu.run(&tiny, &OperatingPoint::with_trcd_reduction(4.5));
        let ideal = gpu.run_ideal_latency(&tiny);
        let s = reduced.speedup_over(&nominal);
        let ideal_s = ideal.speedup_over(&nominal);
        assert!((1.0..1.12).contains(&s), "GPU YOLO-Tiny speedup {s}");
        assert!(ideal_s >= s);
    }

    #[test]
    fn compute_bound_models_see_no_gpu_speedup() {
        let gpu = GpuSim::table5();
        let p = WorkloadProfile::for_model(ModelId::ResNet, Precision::Int8);
        let nominal = gpu.run(&p, &OperatingPoint::nominal());
        let ideal = gpu.run_ideal_latency(&p);
        assert!(ideal.speedup_over(&nominal) < 1.03);
    }
}
