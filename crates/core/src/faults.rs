//! The approximate-memory fault hook.
//!
//! [`ApproximateMemory`] models DNN data living in approximate DRAM: every
//! time the DNN "loads" a weight tensor or IFM, the configured error source
//! (a fitted error model or the simulated device itself) corrupts the stored
//! bits, and the optional bounding logic corrects implausible values — the
//! same flow as Figure 6 of the paper. Different data types can be backed by
//! different error rates (fine-grained mapping) and are placed at different
//! DRAM addresses.
//!
//! # Randomness and parallelism
//!
//! Instead of threading one shared RNG through every load, each load draws
//! its failures from an independent stream derived from
//! `(memory seed, load index)`. The flip set of a load is therefore a pure
//! function of the memory's seed and the load's position in this memory's
//! deterministic load sequence — never of wall-clock interleaving. The
//! batch-parallel inference engine exploits this through
//! [`ApproximateMemory::fork`]: each sample of a batch gets a child memory
//! whose seed is derived from the parent seed and the *sample index*, making
//! results bit-identical for any thread count.
//!
//! # Execution backends
//!
//! The memory model is backend-neutral: both inference backends
//! ([`crate::inference::InferenceBackend`]) corrupt the same [`QuantTensor`]
//! stored bits through the same [`FaultHook`] entry point and consume load
//! streams in the same order.
//!
//! # Weight loads: sparse overlays vs image reloads
//!
//! Weight sites are served from cached clean bit images
//! ([`Network::weight_images`]), in one of two equivalent forms:
//!
//! * **Sparse overlays** ([`ApproximateMemory::corrupt_overlay`], the
//!   production path): the load is answered with a [`CorruptionOverlay`] —
//!   the `(word, xor mask)` deltas of the draw's flips, with any bounding
//!   corrections folded in sparsely — which the evaluator patches into (and
//!   later reverts from) a persistent corrupted copy. Per refetch this
//!   costs O(flips), not O(total weights).
//! * **Image reloads** ([`FaultHook::corrupt`] via
//!   [`Network::load_corrupted_weights`], the reference path): each refetch
//!   corrupts a fresh *copy* of the stored bits and rewrites every
//!   parameter word.
//!
//! Both forms consume the same load streams and produce bit-identical
//! results and statistics; the workspace `overlay_equivalence` suite pins
//! them against each other.
//!
//! # Multi-module span placement
//!
//! A site need not live in one partition: [`ApproximateMemory::assign_site_spans`]
//! places contiguous spans of a site's stored values into different
//! `(module, partition, operating point)` triples of a
//! [`eden_dram::MemorySystem`], each span backed by its own [`Injector`] and
//! [`Layout`]. A load then emits one [`CorruptionOverlay`] per span from the
//! span's own seed stream and composes them with [`CorruptionOverlay::merge`]
//! into a single O(flips) overlay — bit-identical (and pinned so by
//! [`SpanComposition::Independent`], the merge-free reference composition) to
//! corrupting each span's slice separately, at any thread count.

use crate::bounding::BoundingLogic;
use eden_dnn::{DataKind, DataSite, FaultHook, Network};
use eden_dram::error_model::{Layout, WeakCellMap};
use eden_dram::inject::{AddressAllocator, Injector};
use eden_dram::util::{seed_mix, stream};
use eden_dram::ErrorModel;
use eden_tensor::{CorruptionOverlay, Precision, QuantTensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Salt separating fork-lane seeds from the parent's own load streams.
const FORK_SALT: u64 = 0xF0_4B_1A_9E_5A_17_ED_01;

/// Cache key of one precomputed weak-cell map: the error model's full
/// parameter fingerprint plus the exact placement and tensor geometry the map
/// was computed for. A map is a pure function of this key, so sharing cached
/// entries across memories can never change results.
type WeakMapKey = (u64, Layout, usize, u32);

/// A shared, thread-safe cache of precomputed [`WeakCellMap`]s, keyed by
/// `(error model fingerprint, placement, tensor geometry)`.
///
/// Every [`ApproximateMemory`] keeps its own per-site map cache, but that
/// cache dies with the memory — and characterization sweeps build a *fresh*
/// memory per probe, recomputing the O(total bits) weak-cell scans dozens of
/// times for placements whose error model never changed between probes.
/// Attaching one `WeakMapCache` (via
/// [`ApproximateMemory::attach_weak_map_cache`]) to every probe's memory
/// makes those scans run once per distinct `(model, placement, geometry)`
/// and be shared from then on. [`crate::session::EvalSession`] owns one such
/// cache and attaches it to every memory it evaluates with.
///
/// The cache is bounded: a fine-grained sweep inserts one map per *rejected*
/// candidate BER that is never looked up again, so an unbounded cache would
/// grow monotonically for the owning session's lifetime. Once
/// [`WeakMapCache::MAX_ENTRIES`] is reached the *least-recently-used half*
/// of the entries is evicted: the hot maps (the currently-accepted
/// tolerances, re-stamped on every probe) survive, the dead
/// rejected-candidate entries go — so an overflow mid-sweep never triggers
/// an O(total bits) recompute storm of the maps every in-flight probe is
/// about to use again. Results are unaffected either way: an evicted map is
/// simply recomputed on its next (if any) use.
///
/// Hit/miss totals are tracked ([`WeakMapCache::counters`]) so long-running
/// consumers — the evaluation service in particular — can report cache
/// effectiveness.
#[derive(Debug, Default)]
pub struct WeakMapCache {
    maps: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The keyed entries plus the logical access clock that orders them for
/// LRU eviction (a counter, not wall-clock time, so eviction order is
/// deterministic for a deterministic access sequence).
#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<WeakMapKey, CacheEntry>,
    tick: u64,
}

#[derive(Debug)]
struct CacheEntry {
    map: Arc<WeakCellMap>,
    last_used: u64,
}

/// Cumulative hit/miss totals of a [`WeakMapCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the weak-cell scan.
    pub misses: u64,
}

impl WeakMapCache {
    /// Entry cap; generous enough that a Figure 11-scale sweep (hundreds of
    /// distinct `(model, placement)` pairs alive at once) never evicts
    /// mid-round, small enough to bound a long session's resident maps.
    pub const MAX_ENTRIES: usize = 4096;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached maps.
    pub fn len(&self) -> usize {
        self.maps.lock().unwrap().entries.len()
    }

    /// Whether the cache holds no maps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit/miss totals since the cache was created.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }

    /// The cached map for `key`, computing it with `compute` on a miss.
    ///
    /// `compute` runs outside the cache lock (a weak-cell scan can be long,
    /// and concurrent probes must not serialize on it); if two threads race
    /// on the same key, the first inserted map wins and both observe it —
    /// the maps are identical by construction, so the race is benign.
    fn get_or_compute(
        &self,
        key: WeakMapKey,
        compute: impl FnOnce() -> Option<WeakCellMap>,
    ) -> Option<Arc<WeakCellMap>> {
        {
            let mut state = self.maps.lock().unwrap();
            let tick = state.tick;
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.last_used = tick;
                let map = entry.map.clone();
                state.tick += 1;
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                return Some(map);
            }
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let map = Arc::new(compute()?);
        let mut state = self.maps.lock().unwrap();
        if state.entries.len() >= Self::MAX_ENTRIES {
            state.evict_lru_half();
        }
        let tick = state.tick;
        state.tick += 1;
        let entry = state.entries.entry(key).or_insert(CacheEntry {
            map,
            last_used: tick,
        });
        entry.last_used = tick;
        Some(entry.map.clone())
    }
}

impl CacheState {
    /// Evicts the least-recently-used half of the entries, preserving the
    /// most recently touched ones. Access ticks are unique, so the cut is
    /// exact and deterministic.
    fn evict_lru_half(&mut self) {
        let keep = WeakMapCache::MAX_ENTRIES / 2;
        let evict = self.entries.len().saturating_sub(keep);
        if evict == 0 {
            return;
        }
        let mut ticks: Vec<u64> = self.entries.values().map(|e| e.last_used).collect();
        ticks.sort_unstable();
        // Everything strictly below the threshold tick goes; `evict` entries
        // exactly, because ticks are unique.
        let threshold = ticks[evict];
        self.entries.retain(|_, e| e.last_used >= threshold);
    }
}

/// One contiguous span of a data site's stored values placed on its own
/// DRAM partition: corruption for the span is drawn by `injector` against the
/// span's slice of the clean image and lifted back into whole-image word
/// coordinates.
///
/// Spans cover loads lazily: a load shorter than the site's longest tensor
/// (a layer's bias sharing its weight site, say) only intersects the leading
/// spans, and the intersection is clipped to the tensor's length.
#[derive(Debug, Clone)]
pub struct PlacedSpan {
    /// Error source of the span's `(module, partition, operating point)`.
    pub injector: Injector,
    /// First value index of the span within the site's stored image.
    pub start_value: usize,
    /// Number of stored values the span covers.
    pub values: usize,
    /// DRAM placement of the span within its partition.
    pub layout: Layout,
}

/// How the per-span overlays of a multi-span site are combined into the one
/// overlay a load returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanComposition {
    /// Compose with [`CorruptionOverlay::merge`] — the O(flips) production
    /// path.
    #[default]
    Merged,
    /// Reference composition: apply each span's lifted overlay to a scratch
    /// copy sequentially and diff the result, never calling `merge`. Exists
    /// to pin the production path bit-identical to evaluating each
    /// partition's faults separately.
    Independent,
}

/// Statistics accumulated while serving loads from approximate memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Tensor loads served.
    pub loads: u64,
    /// Bits flipped by the error source.
    pub bit_flips: u64,
    /// Values corrected by the bounding logic.
    pub corrections: u64,
}

/// DRAM placement and error-source state shared (copy-on-write) by a memory
/// and all of its forks.
///
/// The batch evaluator takes one fork per *sample*; with this state behind
/// an `Arc`, a fork is a constant-time clone instead of a deep copy of
/// several `DataSite`-keyed maps. A fork that lazily allocates a *new*
/// placement after forking diverges via `Arc::make_mut` — exactly the
/// pre-existing semantics that fork-local allocations are not written back.
#[derive(Clone)]
struct PlacementState {
    default_injector: Option<Injector>,
    site_injectors: HashMap<DataSite, Injector>,
    /// Multi-partition placements; a site present here bypasses
    /// `site_injectors`/`site_layouts` entirely. `Arc` so per-sample forks
    /// share the span lists.
    site_spans: HashMap<DataSite, Arc<Vec<PlacedSpan>>>,
    site_layouts: HashMap<DataSite, Layout>,
    /// Precomputed weak-cell maps per site, one entry per tensor geometry
    /// `(element count, bits per value)` — a layer's weight and bias tensors
    /// share a site but have different lengths, and one memory may serve
    /// loads at several precisions. `Arc` so per-sample forks share the maps
    /// instead of recomputing them.
    weak_maps: HashMap<DataSite, Vec<(usize, u32, Arc<WeakCellMap>)>>,
    allocator: AddressAllocator,
}

impl PlacementState {
    fn new(default_injector: Option<Injector>) -> Self {
        Self {
            default_injector,
            site_injectors: HashMap::new(),
            site_spans: HashMap::new(),
            site_layouts: HashMap::new(),
            weak_maps: HashMap::new(),
            allocator: AddressAllocator::new(2048 * 8),
        }
    }

    fn injector_for(&self, site: &DataSite) -> Option<&Injector> {
        self.site_injectors
            .get(site)
            .or(self.default_injector.as_ref())
    }
}

/// Approximate DRAM backing the DNN's weights and feature maps.
#[derive(Clone)]
pub struct ApproximateMemory {
    placement: Arc<PlacementState>,
    /// Optional cross-memory map cache (see [`WeakMapCache`]); consulted on a
    /// local miss before falling back to a fresh weak-cell scan.
    shared_maps: Option<Arc<WeakMapCache>>,
    bounding: Option<BoundingLogic>,
    /// How multi-span sites compose their per-span overlays.
    span_composition: SpanComposition,
    /// Master seed; every load's RNG stream is derived from it.
    seed: u64,
    /// Index of the next load in this memory's deterministic load sequence.
    next_load: u64,
    stats: MemoryStats,
}

impl ApproximateMemory {
    /// Memory in which every data type is backed by the same error model
    /// (coarse-grained operation).
    pub fn from_model(model: ErrorModel, seed: u64) -> Self {
        Self::from_injector(Injector::from_model(model, Layout::default()), seed)
    }

    /// Memory backed by an arbitrary injector (e.g. the simulated device).
    pub fn from_injector(injector: Injector, seed: u64) -> Self {
        Self {
            placement: Arc::new(PlacementState::new(Some(injector))),
            shared_maps: None,
            bounding: None,
            span_composition: SpanComposition::default(),
            seed,
            next_load: 0,
            stats: MemoryStats::default(),
        }
    }

    /// Reliable memory: no errors are ever injected.
    pub fn reliable(seed: u64) -> Self {
        Self {
            placement: Arc::new(PlacementState::new(None)),
            shared_maps: None,
            bounding: None,
            span_composition: SpanComposition::default(),
            seed,
            next_load: 0,
            stats: MemoryStats::default(),
        }
    }

    /// Attaches a shared weak-map cache: local misses consult (and populate)
    /// `cache` before falling back to a fresh weak-cell scan. Maps are pure
    /// functions of `(error model, placement, geometry)`, so attaching a
    /// cache never changes injection results — only how often the O(total
    /// bits) scans run. Forks and clones share the attachment.
    pub fn attach_weak_map_cache(&mut self, cache: Arc<WeakMapCache>) {
        self.shared_maps = Some(cache);
    }

    /// Enables implausible-value correction on every load.
    pub fn with_bounding(mut self, bounding: BoundingLogic) -> Self {
        self.bounding = Some(bounding);
        self
    }

    /// Backs one specific data type with its own error source (fine-grained
    /// mapping: different partitions have different BERs).
    pub fn assign_site(&mut self, site: DataSite, injector: Injector) {
        let state = Arc::make_mut(&mut self.placement);
        // Any maps computed under the previous error source are stale.
        state.weak_maps.remove(&site);
        state.site_injectors.insert(site, injector);
    }

    /// Places one data site across several DRAM partitions: span `k` of
    /// `spans` covers stored values `[start_value, start_value + values)` and
    /// is corrupted by its own injector at its own layout, from the sub-seed
    /// stream `seed_mix(load stream, k)`. Spans must be non-empty, sorted by
    /// `start_value`, disjoint, and start at value 0 with no gaps — every
    /// stored value belongs to exactly one span.
    ///
    /// A site placed here bypasses any [`ApproximateMemory::assign_site`]
    /// override and the default injector.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty or violates the coverage contract.
    pub fn assign_site_spans(&mut self, site: DataSite, spans: Vec<PlacedSpan>) {
        assert!(
            !spans.is_empty(),
            "a span placement needs at least one span"
        );
        let mut next = 0usize;
        for span in &spans {
            assert!(span.values > 0, "empty span at value {}", span.start_value);
            assert_eq!(
                span.start_value, next,
                "spans must tile the value space contiguously from 0"
            );
            next += span.values;
        }
        let state = Arc::make_mut(&mut self.placement);
        // Any maps computed under the previous error source are stale (and
        // the span path draws per-span, not per-site, corruption).
        state.weak_maps.remove(&site);
        state.site_spans.insert(site, Arc::new(spans));
    }

    /// Selects how multi-span sites compose their per-span overlays (the
    /// production [`SpanComposition::Merged`] by default).
    pub fn with_span_composition(mut self, composition: SpanComposition) -> Self {
        self.span_composition = composition;
        self
    }

    /// Replaces the default error source for all unassigned sites.
    pub fn set_default(&mut self, injector: Option<Injector>) {
        let state = Arc::make_mut(&mut self.placement);
        // Keep only maps pinned by per-site overrides; default-backed maps
        // are stale under the new error source.
        let overridden: Vec<DataSite> = state.site_injectors.keys().cloned().collect();
        state.weak_maps.retain(|s, _| overridden.contains(s));
        state.default_injector = injector;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }

    /// The bounding logic, if enabled.
    pub fn bounding(&self) -> Option<&BoundingLogic> {
        self.bounding.as_ref()
    }

    /// Creates an independent child memory for one lane of parallel work
    /// (e.g. one sample of a batch).
    ///
    /// The child shares this memory's injectors, DRAM placements and bounding
    /// logic but derives its RNG streams from `(parent seed, lane)`, so its
    /// flip sets depend only on the lane index and its own load order — two
    /// forks of the same lane replay identically, and forks of different
    /// lanes never interact. Call [`ApproximateMemory::preallocate`] first if
    /// the forks must agree on site addresses that the parent has not served
    /// yet; fork-local lazy allocations are not written back.
    ///
    /// Fork statistics start at zero; merge them back with
    /// [`ApproximateMemory::merge_stats`].
    ///
    /// Forking is O(1): the placement state (injectors, layouts, weak-cell
    /// maps) is shared copy-on-write, so the per-sample forks of a batch
    /// evaluation cost an `Arc` clone each rather than a deep copy of the
    /// site maps.
    pub fn fork(&self, lane: u64) -> ApproximateMemory {
        let mut child = self.clone();
        child.seed = seed_mix(self.seed ^ FORK_SALT, &[lane]);
        child.next_load = 0;
        child.stats = MemoryStats::default();
        child
    }

    /// Accumulates statistics from a fork (or any other source) into this
    /// memory. Counter addition is commutative, so the merge order of
    /// parallel forks does not affect the totals.
    pub fn merge_stats(&mut self, stats: MemoryStats) {
        self.stats.loads += stats.loads;
        self.stats.bit_flips += stats.bit_flips;
        self.stats.corrections += stats.corrections;
    }

    /// Assigns DRAM placements to every data site of `net` (weights and
    /// IFMs, in network order) that does not have one yet, and precomputes
    /// each placement's weak-cell map.
    ///
    /// Lazy allocation is deterministic for a *single* memory serving loads
    /// in sequence, but forks must agree on addresses without communicating;
    /// pre-allocating from the network structure pins every site's placement
    /// before the forks are taken. The weak-cell maps shift the O(total
    /// bits) weak-cell scan from every load to this one call: forks share
    /// the precomputed maps, so per-sample IFM corruption touches only the
    /// weak cells.
    pub fn preallocate(&mut self, net: &Network, precision: Precision) {
        for info in net.data_sites() {
            // Span-placed sites carry explicit per-span layouts and skip the
            // weak-map machinery entirely.
            if self.placement.site_spans.contains_key(&info.site) {
                continue;
            }
            let bits = info.elements as u64 * precision.bits() as u64;
            self.layout_for(&info.site, bits);
            if info.site.kind == DataKind::Ifm {
                self.weak_map_for(&info.site, info.elements, precision.bits());
            }
        }
        // Weight sites serve one load per *parameter tensor* (a layer's
        // weight and bias share the site), so map each geometry separately.
        for (i, layer) in net.layers().iter().enumerate() {
            if layer.param_count() == 0 {
                continue;
            }
            let site = DataSite::new(i, layer.name(), DataKind::Weight);
            if self.placement.site_spans.contains_key(&site) {
                continue;
            }
            layer.visit_params_ref(&mut |_, t| {
                self.weak_map_for(&site, t.len(), precision.bits());
            });
        }
    }

    /// The cached weak-cell map of a `(site, tensor length)` placement,
    /// computing and caching it if absent (`None` for reliable memory and
    /// device-backed sites).
    fn weak_map_for(
        &mut self,
        site: &DataSite,
        values: usize,
        bits: u32,
    ) -> Option<Arc<WeakCellMap>> {
        // Borrowed-key lookup first: cloning the `DataSite` (and its name
        // string) on every load would dominate the hit path.
        if let Some(map) = self.placement.weak_maps.get(site).and_then(|geos| {
            geos.iter()
                .find(|(v, b, _)| *v == values && *b == bits)
                .map(|(_, _, m)| m.clone())
        }) {
            return Some(map);
        }
        let layout = self.layout_for(site, values as u64 * bits as u64);
        let map = {
            let injector = self.placement.injector_for(site)?;
            // Model-backed placements go through the shared cache when one is
            // attached (the map depends only on the model, not the site name,
            // so probes sweeping per-site error rates share every unchanged
            // map).
            match (&self.shared_maps, injector) {
                (Some(shared), Injector::Model { model, .. }) => shared
                    .get_or_compute((model.fingerprint(), layout, values, bits), || {
                        injector.weak_map(values, bits, &layout)
                    })?,
                _ => Arc::new(injector.weak_map(values, bits, &layout)?),
            }
        };
        Arc::make_mut(&mut self.placement)
            .weak_maps
            .entry(site.clone())
            .or_default()
            .push((values, bits, map.clone()));
        Some(map)
    }

    /// Serves one load of `site` as a sparse [`CorruptionOverlay`] over its
    /// clean stored image instead of mutating a tensor — the O(flips)
    /// counterpart of the [`FaultHook::corrupt`] entry point, consuming the
    /// same load stream, updating the same statistics, and (with bounding
    /// enabled) folding the corrections the full scan would make into the
    /// overlay's masks.
    ///
    /// `clean_corrections` are the [`BoundingLogic::clean_corrections`] of
    /// `clean` under this memory's bounding logic; pass a precomputed slice
    /// on hot paths (they depend only on the clean image and the thresholds,
    /// so a session computes them once per image). When `None` and bounding
    /// is enabled they are derived on the fly.
    ///
    /// Applying the returned overlay to `clean` is bit-identical to calling
    /// `corrupt` on a copy of it at the same point of the load sequence.
    pub fn corrupt_overlay(
        &mut self,
        site: &DataSite,
        clean: &QuantTensor,
        clean_corrections: Option<&[(u32, u32)]>,
    ) -> CorruptionOverlay {
        let load_stream = stream(self.seed, self.next_load);
        self.next_load += 1;
        self.stats.loads += 1;
        let mut overlay = match self.placement.site_spans.get(site).cloned() {
            Some(spans) => self.span_overlay(&spans, clean, load_stream),
            None if self.site_is_dirty(site) => {
                let layout = self.layout_for(site, clean.total_bits());
                let map = self.weak_map_for(site, clean.len(), clean.bits_per_value());
                let injector = self
                    .placement
                    .injector_for(site)
                    .expect("dirty site has an injector");
                injector.overlay_placed_seeded(clean, &layout, load_stream, map.as_deref())
            }
            None => CorruptionOverlay::empty(clean.len(), clean.bits_per_value()),
        };
        self.stats.bit_flips += overlay.bit_flips();
        if let Some(bounding) = &self.bounding {
            // Same elision as the mutating hook: a fully-plausible integer
            // grid can never produce a correction, so the fold is skipped.
            if !bounding.covers_grid(clean) {
                let computed;
                let corrections = match clean_corrections {
                    Some(c) => c,
                    None => {
                        computed = bounding.clean_corrections(clean);
                        &computed
                    }
                };
                overlay = bounding.fold_overlay(clean, overlay, corrections);
                self.stats.corrections += overlay.corrections();
            }
        }
        overlay
    }

    /// Composes the per-span overlays of one load of a span-placed site into
    /// a single whole-image overlay (see [`SpanComposition`]).
    ///
    /// Span `k` corrupts the clean image's values
    /// `[start_value, start_value + values) ∩ [0, clean.len())` — spans past
    /// the end of a short load are skipped, partial intersections clipped —
    /// from the sub-seed stream `seed_mix(load_stream, k)`. The sub-seed is
    /// indexed by span *position*, so the draw of a span depends only on the
    /// memory seed, the load index and the span list — never on thread
    /// interleaving.
    fn span_overlay(
        &self,
        spans: &[PlacedSpan],
        clean: &QuantTensor,
        load_stream: u64,
    ) -> CorruptionOverlay {
        let values = clean.len();
        let bits = clean.bits_per_value();
        let sub_overlays = spans.iter().enumerate().filter_map(|(k, span)| {
            let lo = span.start_value.min(values);
            let hi = (span.start_value + span.values).min(values);
            if lo >= hi {
                return None;
            }
            let slice = clean.slice_values(lo..hi);
            let span_seed = seed_mix(load_stream, &[k as u64]);
            let sub = span
                .injector
                .overlay_placed_seeded(&slice, &span.layout, span_seed, None);
            Some(sub.lifted(lo, values))
        });
        match self.span_composition {
            SpanComposition::Merged => {
                let mut composed = CorruptionOverlay::empty(values, bits);
                for sub in sub_overlays {
                    composed.merge(&sub);
                }
                composed
            }
            SpanComposition::Independent => {
                // Apply each span's corruption to a scratch image in turn and
                // diff — the "evaluate every partition's faults separately"
                // reference. Spans are disjoint, so the diff's deltas equal
                // the union of the per-span masks; the flip counters are
                // summed per span because a diff cannot see a span's
                // self-cancelling double flips.
                let mut scratch = clean.clone();
                let mut flips = 0u64;
                let mut corrections = 0u64;
                for sub in sub_overlays {
                    sub.apply(&mut scratch);
                    flips += sub.bit_flips();
                    corrections += sub.corrections();
                }
                let diff = CorruptionOverlay::from_diff(clean, &scratch);
                CorruptionOverlay::new(values, bits, diff.deltas().to_vec(), flips, corrections)
            }
        }
    }

    /// The first layer whose forward computation this memory's error sources
    /// could perturb — the "first dirty layer" of incremental re-evaluation.
    ///
    /// A data site dirties the layer that loads it: a Weight site its own
    /// layer, an Ifm site the layer consuming that activation — both are the
    /// site's `layer_index`. A site is dirty when the injector serving it is
    /// not provably error-free ([`Injector::is_provably_clean`]); a
    /// span-placed site is dirty when *any* of its spans is. Returns
    /// `num_layers` when no site below it is dirty (a fully reliable memory):
    /// every boundary activation is then clean.
    ///
    /// Bounding logic does **not** dirty a prefix: corrections on clean loads
    /// are a deterministic function of the clean data and the thresholds
    /// alone, so activations (and correction counts) at clean boundaries are
    /// identical across probes evaluated under the *same* bounding — which is
    /// why checkpoint consumers key their stores by bounding configuration
    /// rather than consulting it here.
    pub fn first_dirty_layer(&self, num_layers: usize) -> usize {
        let dirty_default = self
            .placement
            .default_injector
            .as_ref()
            .is_some_and(|inj| !inj.is_provably_clean());
        if dirty_default {
            // Every unassigned site (all layers, in general) is dirty.
            return 0;
        }
        let mut first = num_layers;
        for (site, injector) in &self.placement.site_injectors {
            if !injector.is_provably_clean() {
                first = first.min(site.layer_index);
            }
        }
        for (site, spans) in &self.placement.site_spans {
            if spans.iter().any(|s| !s.injector.is_provably_clean()) {
                first = first.min(site.layer_index);
            }
        }
        first
    }

    /// Advances the load cursor past `loads` loads that are known to be
    /// error-free, accounting `corrections` bounding corrections they would
    /// have made — the resume half of incremental re-evaluation.
    ///
    /// Each skipped load consumes exactly one stream index (every load does,
    /// regardless of outcome), flips zero bits (the prefix is provably
    /// clean), and contributes its recorded clean-data correction count. The
    /// memory's subsequent draws are therefore bit-identical to having
    /// served the `loads` prefix loads against clean data.
    pub fn skip_clean_loads(&mut self, loads: u64, corrections: u64) {
        self.next_load += loads;
        self.stats.loads += loads;
        self.stats.corrections += corrections;
    }

    /// Whether a load of `site` can flip bits: it resolves to an injector
    /// that is not provably clean.
    ///
    /// Both load paths gate their layout allocation and weak-map lookup on
    /// this, so a load served by reliable memory (or a provably clean
    /// injector) is a complete no-op apart from its stream index — in
    /// particular it must **not** advance the lazy address allocator.
    /// [`ApproximateMemory::skip_clean_loads`] depends on that: a resumed
    /// lane that skips its clean prefix must leave the allocator exactly
    /// where a full pass over the same prefix would have, or the dirty
    /// sites' layouts (and with them every subsequent draw) would diverge.
    fn site_is_dirty(&self, site: &DataSite) -> bool {
        self.placement
            .injector_for(site)
            .is_some_and(|inj| !inj.is_provably_clean())
    }

    fn layout_for(&mut self, site: &DataSite, total_bits: u64) -> Layout {
        if let Some(layout) = self.placement.site_layouts.get(site) {
            return *layout;
        }
        let state = Arc::make_mut(&mut self.placement);
        let layout = state.allocator.allocate(total_bits);
        state.site_layouts.insert(site.clone(), layout);
        layout
    }
}

impl FaultHook for ApproximateMemory {
    fn corrupt(&mut self, site: &DataSite, tensor: &mut QuantTensor) {
        let load_stream = stream(self.seed, self.next_load);
        self.next_load += 1;
        self.stats.loads += 1;
        if let Some(spans) = self.placement.site_spans.get(site).cloned() {
            // The tensor's bits are the clean image at load time, so
            // composing the per-span overlays against them and applying the
            // result equals corrupting each span's slice in place.
            let overlay = self.span_overlay(&spans, tensor, load_stream);
            self.stats.bit_flips += overlay.bit_flips();
            overlay.apply(tensor);
        } else if self.site_is_dirty(site) {
            let layout = self.layout_for(site, tensor.total_bits());
            let map = self.weak_map_for(site, tensor.len(), tensor.bits_per_value());
            let injector = self
                .placement
                .injector_for(site)
                .expect("dirty site has an injector");
            self.stats.bit_flips +=
                injector.corrupt_placed_seeded_mapped(tensor, &layout, load_stream, map.as_deref());
        }
        if let Some(bounding) = &self.bounding {
            // Integer tensors whose whole quantization grid is plausible can
            // never hold a correctable value (every corrupted word is still
            // on the grid), so the O(values) scan is skipped outright — the
            // common case for calibrated thresholds, and what keeps the
            // per-sample IFM loads O(weak cells) end to end.
            if !bounding.covers_grid(tensor) {
                self.stats.corrections += bounding.correct(tensor) as u64;
            }
        }
    }
}

impl std::fmt::Debug for ApproximateMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ApproximateMemory(default: {}, {} site overrides, {} span placements, stats: {:?})",
            self.placement
                .default_injector
                .as_ref()
                .map(|i| format!("BER {:.2e}", i.expected_ber()))
                .unwrap_or_else(|| "reliable".to_string()),
            self.placement.site_injectors.len(),
            self.placement.site_spans.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::CorrectionPolicy;
    use eden_dnn::DataKind;
    use eden_tensor::{Precision, Tensor};

    fn site(i: usize, kind: DataKind) -> DataSite {
        DataSite::new(i, format!("layer{i}"), kind)
    }

    fn stored(n: usize) -> QuantTensor {
        QuantTensor::quantize(
            &Tensor::from_vec((0..n).map(|i| (i as f32 * 0.11).sin()).collect(), &[n]),
            Precision::Int8,
        )
    }

    #[test]
    fn weak_map_cache_is_bounded() {
        let cache = WeakMapCache::new();
        let model = ErrorModel::uniform(0.02, 0.5, 1);
        // Distinct fingerprints simulate a long sweep of rejected candidate
        // BERs; the cache must evict at the cap instead of growing forever.
        for i in 0..(WeakMapCache::MAX_ENTRIES + 10) as u64 {
            let key = (i, Layout::default(), 64, 8);
            cache.get_or_compute(key, || Some(model.weak_map(64, 8, &Layout::default())));
        }
        assert!(cache.len() <= WeakMapCache::MAX_ENTRIES);
        assert!(!cache.is_empty());
        let counters = cache.counters();
        assert_eq!(counters.hits, 0);
        assert_eq!(counters.misses, (WeakMapCache::MAX_ENTRIES + 10) as u64);
    }

    #[test]
    fn weak_map_cache_eviction_preserves_hot_entries() {
        // The regression this pins: the cap used to wipe the *entire* cache,
        // evicting the hot currently-accepted maps alongside dead
        // rejected-candidate entries and triggering recompute storms
        // mid-sweep. Eviction must now preserve recently-used entries: a key
        // that is touched throughout a flood of one-shot inserts survives
        // the overflow without ever being recomputed.
        let cache = WeakMapCache::new();
        let model = ErrorModel::uniform(0.02, 0.5, 1);
        let layout = Layout::default();
        let hot = (u64::MAX, layout, 64, 8);
        let mut hot_computes = 0usize;
        cache.get_or_compute(hot, || {
            hot_computes += 1;
            Some(model.weak_map(64, 8, &layout))
        });
        // Flood well past the cap, re-touching the hot key all along (every
        // probe of an in-flight sweep re-reads its accepted maps).
        for i in 0..(2 * WeakMapCache::MAX_ENTRIES) as u64 {
            let key = (i, layout, 64, 8);
            cache.get_or_compute(key, || Some(model.weak_map(64, 8, &layout)));
            if i % 64 == 0 {
                cache.get_or_compute(hot, || {
                    hot_computes += 1;
                    Some(model.weak_map(64, 8, &layout))
                });
            }
        }
        assert_eq!(
            hot_computes, 1,
            "hot key must survive every overflow without recomputation"
        );
        assert!(cache.len() <= WeakMapCache::MAX_ENTRIES);
        // Eviction kept roughly the recent half, not a single survivor.
        assert!(cache.len() > WeakMapCache::MAX_ENTRIES / 4);
        assert!(cache.counters().hits > 0);
    }

    #[test]
    fn reliable_memory_never_corrupts() {
        let mut mem = ApproximateMemory::reliable(0);
        let clean = stored(512);
        let mut t = clean.clone();
        mem.corrupt(&site(0, DataKind::Weight), &mut t);
        assert_eq!(t, clean);
        assert_eq!(mem.stats().bit_flips, 0);
        assert_eq!(mem.stats().loads, 1);
    }

    #[test]
    fn model_backed_memory_flips_bits() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 1), 2);
        let clean = stored(4096);
        let mut t = clean.clone();
        mem.corrupt(&site(0, DataKind::Ifm), &mut t);
        assert!(mem.stats().bit_flips > 0);
        assert_eq!(clean.bit_differences(&t), mem.stats().bit_flips);
    }

    #[test]
    fn different_sites_get_different_addresses() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 1.0, 3), 4);
        let clean = stored(2048);
        let mut a = clean.clone();
        let mut b = clean.clone();
        mem.corrupt(&site(0, DataKind::Weight), &mut a);
        mem.corrupt(&site(1, DataKind::Weight), &mut b);
        // With deterministic weak cells (F = 1), identical data corrupted at
        // different addresses must differ.
        assert_ne!(a, b);
    }

    #[test]
    fn same_site_reuses_its_address() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 1.0, 5), 6);
        let clean = stored(2048);
        let mut a = clean.clone();
        let mut b = clean.clone();
        let s = site(2, DataKind::Weight);
        mem.corrupt(&s, &mut a);
        mem.corrupt(&s, &mut b);
        // Same weak cells, F = 1 → identical corruption.
        assert_eq!(a, b);
    }

    #[test]
    fn site_overrides_take_precedence() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.05, 1.0, 7), 8);
        let quiet_site = site(3, DataKind::Weight);
        mem.assign_site(
            quiet_site.clone(),
            Injector::from_model(ErrorModel::uniform(0.0, 0.0, 7), Layout::default()),
        );
        let clean = stored(2048);
        let mut protected = clean.clone();
        mem.corrupt(&quiet_site, &mut protected);
        assert_eq!(protected, clean, "site mapped to an error-free partition");
        let mut unprotected = clean.clone();
        mem.corrupt(&site(4, DataKind::Weight), &mut unprotected);
        assert_ne!(unprotected, clean);
    }

    #[test]
    fn same_lane_forks_replay_identically_and_lanes_differ() {
        let base = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 1), 9);
        let clean = stored(4096);
        let run = |mut mem: ApproximateMemory| {
            let mut t = clean.clone();
            mem.corrupt(&site(0, DataKind::Ifm), &mut t);
            t
        };
        assert_eq!(run(base.fork(3)), run(base.fork(3)));
        assert_ne!(run(base.fork(3)), run(base.fork(4)));
        // Forking must not perturb the parent's own stream: the parent
        // corrupts identically whether or not forks were taken.
        let mut a = base.clone();
        let mut b = base.clone();
        let _ = b.fork(0);
        let mut ta = clean.clone();
        let mut tb = clean.clone();
        a.corrupt(&site(1, DataKind::Weight), &mut ta);
        b.corrupt(&site(1, DataKind::Weight), &mut tb);
        assert_eq!(ta, tb);
    }

    #[test]
    fn one_memory_serves_loads_at_several_precisions() {
        // The weak-map cache is keyed by (site, length, bits): the same
        // memory corrupting the same site at different precisions (or the
        // same precision with different tensor lengths, as a layer's weight
        // and bias do) must not mix up maps — and each mapped corruption
        // must equal the unmapped full scan.
        let model = ErrorModel::uniform(0.05, 0.5, 4);
        let s = site(0, DataKind::Weight);
        let values = Tensor::from_vec((0..512).map(|i| (i as f32 * 0.3).sin()).collect(), &[512]);
        for precision in [Precision::Int8, Precision::Int4, Precision::Int16] {
            let mut mem = ApproximateMemory::from_model(model, 9);
            // Prime the cache at a different precision and length first.
            let mut primer = QuantTensor::quantize(&values, Precision::Int8);
            mem.corrupt(&s, &mut primer);
            let mut small = QuantTensor::quantize(
                &Tensor::from_vec(values.data()[..100].to_vec(), &[100]),
                precision,
            );
            mem.corrupt(&s, &mut small);
            let mut full = QuantTensor::quantize(&values, precision);
            mem.corrupt(&s, &mut full);
            assert!(mem.stats().loads == 3, "{precision}");
        }
    }

    #[test]
    fn corrupt_overlay_matches_hook_corruption() {
        // The overlay form of a load must equal the mutating form at every
        // position of the load sequence — same bits, same statistics — with
        // and without bounding, for model-backed and reliable memory.
        let model = ErrorModel::data_dependent(0.03, 0.8, 0.2, 5);
        let bounding = BoundingLogic::new(-0.6, 0.6, CorrectionPolicy::Zero);
        let clean = stored(6000);
        for with_bounding in [false, true] {
            let make = || {
                let mem = ApproximateMemory::from_model(model, 11);
                if with_bounding {
                    mem.with_bounding(bounding)
                } else {
                    mem
                }
            };
            let mut via_hook = make();
            let mut via_overlay = make();
            for (i, kind) in [DataKind::Weight, DataKind::Ifm, DataKind::Weight]
                .into_iter()
                .enumerate()
            {
                let s = site(i % 2, kind);
                let mut corrupted = clean.clone();
                via_hook.corrupt(&s, &mut corrupted);
                let overlay = via_overlay.corrupt_overlay(&s, &clean, None);
                let mut patched = clean.clone();
                overlay.apply(&mut patched);
                assert_eq!(patched, corrupted, "load {i}, bounding={with_bounding}");
                assert_eq!(
                    via_hook.stats(),
                    via_overlay.stats(),
                    "load {i}, bounding={with_bounding}"
                );
            }
            assert!(via_hook.stats().bit_flips > 0);
            if with_bounding {
                assert!(via_hook.stats().corrections > 0);
            }
        }
        // Reliable memory with bounding: the overlay still carries the
        // clean-image corrections the scan would make.
        let outliers = {
            let mut v: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin() * 0.3).collect();
            v[7] = 100.0;
            QuantTensor::quantize(&Tensor::from_vec(v, &[256]), Precision::Fp32)
        };
        let mut reliable = ApproximateMemory::reliable(0).with_bounding(bounding);
        let overlay = reliable.corrupt_overlay(&site(0, DataKind::Weight), &outliers, None);
        assert_eq!(overlay.bit_flips(), 0);
        assert_eq!(overlay.corrections(), 1);
        assert_eq!(reliable.stats().corrections, 1);
        let mut patched = outliers.clone();
        overlay.apply(&mut patched);
        let mut scanned = outliers.clone();
        reliable.corrupt(&site(0, DataKind::Weight), &mut scanned);
        assert_eq!(patched, scanned);
    }

    #[test]
    fn merge_stats_accumulates_fork_counters() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 2), 3);
        let mut fork = mem.fork(0);
        let mut t = stored(4096);
        fork.corrupt(&site(0, DataKind::Ifm), &mut t);
        let flips = fork.stats().bit_flips;
        assert!(flips > 0);
        mem.merge_stats(fork.stats());
        mem.merge_stats(fork.stats());
        assert_eq!(mem.stats().loads, 2);
        assert_eq!(mem.stats().bit_flips, 2 * flips);
    }

    /// A model-backed span over `[start, start + values)` with its own BER,
    /// seed and DRAM placement (one row per ~2 KB, offset so spans never
    /// share weak rows).
    fn span(start: usize, values: usize, ber: f64, seed: u64) -> PlacedSpan {
        PlacedSpan {
            injector: Injector::from_model(ErrorModel::uniform(ber, 0.5, seed), Layout::default()),
            start_value: start,
            values,
            layout: Layout::new(2048 * 8, start / 64),
        }
    }

    fn span_memory(composition: SpanComposition) -> (ApproximateMemory, DataSite) {
        let s = site(0, DataKind::Weight);
        let mut mem = ApproximateMemory::reliable(17).with_span_composition(composition);
        mem.assign_site_spans(
            s.clone(),
            vec![
                span(0, 1500, 0.03, 31),
                span(1500, 2000, 0.0, 32), // error-free middle partition
                span(3500, 2500, 0.09, 33),
            ],
        );
        (mem, s)
    }

    #[test]
    fn span_merge_matches_independent_reference() {
        // The production merge composition must be bit-identical — bits and
        // statistics — to the reference that applies every span's corruption
        // separately, at full and clipped load lengths.
        for len in [6000, 2000, 900] {
            let clean = stored(len);
            let (mut merged, s) = span_memory(SpanComposition::Merged);
            let (mut independent, _) = span_memory(SpanComposition::Independent);
            for load in 0..3 {
                let a = merged.corrupt_overlay(&s, &clean, None);
                let b = independent.corrupt_overlay(&s, &clean, None);
                assert_eq!(a.deltas(), b.deltas(), "load {load}, len {len}");
                assert_eq!(a.bit_flips(), b.bit_flips(), "load {load}, len {len}");
                assert_eq!(
                    merged.stats(),
                    independent.stats(),
                    "load {load}, len {len}"
                );
            }
            assert!(merged.stats().bit_flips > 0, "len {len}");
        }
    }

    #[test]
    fn span_overlay_load_matches_hook_corruption() {
        // The O(flips) overlay form of a span-placed load must equal the
        // mutating hook at every position of the load sequence, with and
        // without bounding.
        let bounding = BoundingLogic::new(-0.6, 0.6, CorrectionPolicy::Zero);
        let clean = stored(6000);
        for with_bounding in [false, true] {
            let make = || {
                let (mem, s) = span_memory(SpanComposition::Merged);
                let mem = if with_bounding {
                    mem.with_bounding(bounding)
                } else {
                    mem
                };
                (mem, s)
            };
            let (mut via_hook, s) = make();
            let (mut via_overlay, _) = make();
            for load in 0..3 {
                let mut corrupted = clean.clone();
                via_hook.corrupt(&s, &mut corrupted);
                let overlay = via_overlay.corrupt_overlay(&s, &clean, None);
                let mut patched = clean.clone();
                overlay.apply(&mut patched);
                assert_eq!(patched, corrupted, "load {load}, bounding={with_bounding}");
                assert_eq!(
                    via_hook.stats(),
                    via_overlay.stats(),
                    "load {load}, bounding={with_bounding}"
                );
            }
            assert!(via_hook.stats().bit_flips > 0);
        }
    }

    #[test]
    fn span_forks_replay_identically_and_lanes_differ() {
        let (base, s) = span_memory(SpanComposition::Merged);
        let clean = stored(6000);
        let run = |mut mem: ApproximateMemory| {
            let overlay = mem.corrupt_overlay(&s, &clean, None);
            let mut t = clean.clone();
            overlay.apply(&mut t);
            t
        };
        assert_eq!(run(base.fork(3)), run(base.fork(3)));
        assert_ne!(run(base.fork(3)), run(base.fork(4)));
    }

    #[test]
    fn error_free_span_stays_clean() {
        // Values covered by the error-free middle span must never change,
        // while both neighbouring spans corrupt.
        let (mut mem, s) = span_memory(SpanComposition::Merged);
        let clean = stored(6000);
        let overlay = mem.corrupt_overlay(&s, &clean, None);
        assert!(overlay.bit_flips() > 0);
        assert!(
            overlay
                .deltas()
                .iter()
                .all(|&(w, _)| !(1500..3500).contains(&(w as usize))),
            "flips leaked into the error-free span"
        );
    }

    #[test]
    #[should_panic]
    fn gapped_spans_rejected() {
        let mut mem = ApproximateMemory::reliable(0);
        mem.assign_site_spans(
            site(0, DataKind::Weight),
            vec![span(0, 100, 0.01, 1), span(150, 100, 0.01, 2)],
        );
    }

    #[test]
    fn first_dirty_layer_tracks_the_lowest_dirty_site() {
        let clean_inj = Injector::from_model(
            ErrorModel::uniform(0.05, 0.5, 3).with_ber(0.0),
            Layout::default(),
        );
        let dirty_inj = Injector::from_model(ErrorModel::uniform(0.01, 0.5, 3), Layout::default());

        // Reliable memory: nothing is ever dirty.
        let mut mem = ApproximateMemory::reliable(0);
        assert_eq!(mem.first_dirty_layer(5), 5);

        // A provably clean per-site override stays clean.
        mem.assign_site(site(1, DataKind::Weight), clean_inj.clone());
        assert_eq!(mem.first_dirty_layer(5), 5);

        // Dirty overrides: the minimum layer index wins, for both kinds.
        mem.assign_site(site(3, DataKind::Ifm), dirty_inj.clone());
        assert_eq!(mem.first_dirty_layer(5), 3);
        mem.assign_site(site(2, DataKind::Weight), dirty_inj.clone());
        assert_eq!(mem.first_dirty_layer(5), 2);

        // A dirty default injector dirties everything.
        let coarse = ApproximateMemory::from_model(ErrorModel::uniform(0.01, 0.5, 1), 0);
        assert_eq!(coarse.first_dirty_layer(5), 0);
        // …but a zero-BER default is provably clean.
        let mut zeroed = coarse.clone();
        zeroed.set_default(Some(clean_inj.clone()));
        assert_eq!(zeroed.first_dirty_layer(5), 5);

        // Span placements: dirty iff any span is dirty.
        let mut spanned = ApproximateMemory::reliable(1);
        spanned.assign_site_spans(
            site(4, DataKind::Weight),
            vec![span(0, 100, 0.0, 1), span(100, 100, 0.0, 2)],
        );
        assert_eq!(spanned.first_dirty_layer(6), 6);
        spanned.assign_site_spans(
            site(2, DataKind::Weight),
            vec![span(0, 100, 0.0, 1), span(100, 100, 0.02, 2)],
        );
        assert_eq!(spanned.first_dirty_layer(6), 2);
    }

    #[test]
    fn skip_clean_loads_matches_serving_clean_prefix_loads() {
        // Serving N loads through reliable sites, then a dirty one, must be
        // bit-identical to skipping the N clean loads and serving only the
        // dirty one — same draw, same statistics.
        let dirty_site = site(3, DataKind::Ifm);
        let make = || {
            let mut mem = ApproximateMemory::reliable(21);
            mem.assign_site(
                dirty_site.clone(),
                Injector::from_model(ErrorModel::uniform(0.02, 0.5, 5), Layout::default()),
            );
            mem
        };
        let clean = stored(4096);
        let mut served = make();
        for i in 0..3 {
            let mut t = clean.clone();
            served.corrupt(&site(i, DataKind::Ifm), &mut t);
            assert_eq!(t, clean, "prefix load {i} must be clean");
        }
        let mut via_serve = clean.clone();
        served.corrupt(&dirty_site, &mut via_serve);

        let mut skipped = make();
        skipped.skip_clean_loads(3, 0);
        let mut via_skip = clean.clone();
        skipped.corrupt(&dirty_site, &mut via_skip);

        assert_eq!(via_skip, via_serve);
        assert_eq!(skipped.stats(), served.stats());
        assert!(skipped.stats().bit_flips > 0);
        assert_eq!(skipped.stats().loads, 4);
    }

    #[test]
    fn bounding_corrects_fp32_explosions() {
        let model = ErrorModel::uniform(0.01, 0.8, 11);
        let mut mem = ApproximateMemory::from_model(model, 12).with_bounding(BoundingLogic::new(
            -16.0,
            16.0,
            CorrectionPolicy::Zero,
        ));
        let t = Tensor::from_vec(
            (0..2048).map(|i| (i as f32 * 0.01).sin()).collect(),
            &[2048],
        );
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        mem.corrupt(&site(0, DataKind::Weight), &mut q);
        let max = q.dequantize().abs_max();
        assert!(
            max <= 16.0,
            "bounding must cap corrupted magnitudes, got {max}"
        );
    }
}
