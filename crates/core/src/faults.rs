//! The approximate-memory fault hook.
//!
//! [`ApproximateMemory`] models DNN data living in approximate DRAM: every
//! time the DNN "loads" a weight tensor or IFM, the configured error source
//! (a fitted error model or the simulated device itself) corrupts the stored
//! bits, and the optional bounding logic corrects implausible values — the
//! same flow as Figure 6 of the paper. Different data types can be backed by
//! different error rates (fine-grained mapping) and are placed at different
//! DRAM addresses.

use crate::bounding::BoundingLogic;
use eden_dnn::{DataSite, FaultHook};
use eden_dram::error_model::Layout;
use eden_dram::inject::{AddressAllocator, Injector};
use eden_dram::ErrorModel;
use eden_tensor::QuantTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Statistics accumulated while serving loads from approximate memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Tensor loads served.
    pub loads: u64,
    /// Bits flipped by the error source.
    pub bit_flips: u64,
    /// Values corrected by the bounding logic.
    pub corrections: u64,
}

/// Approximate DRAM backing the DNN's weights and feature maps.
pub struct ApproximateMemory {
    default_injector: Option<Injector>,
    site_injectors: HashMap<DataSite, Injector>,
    site_layouts: HashMap<DataSite, Layout>,
    allocator: AddressAllocator,
    bounding: Option<BoundingLogic>,
    rng: StdRng,
    stats: MemoryStats,
}

impl ApproximateMemory {
    /// Memory in which every data type is backed by the same error model
    /// (coarse-grained operation).
    pub fn from_model(model: ErrorModel, seed: u64) -> Self {
        Self {
            default_injector: Some(Injector::from_model(model, Layout::default())),
            site_injectors: HashMap::new(),
            site_layouts: HashMap::new(),
            allocator: AddressAllocator::new(2048 * 8),
            bounding: None,
            rng: StdRng::seed_from_u64(seed),
            stats: MemoryStats::default(),
        }
    }

    /// Memory backed by an arbitrary injector (e.g. the simulated device).
    pub fn from_injector(injector: Injector, seed: u64) -> Self {
        Self {
            default_injector: Some(injector),
            site_injectors: HashMap::new(),
            site_layouts: HashMap::new(),
            allocator: AddressAllocator::new(2048 * 8),
            bounding: None,
            rng: StdRng::seed_from_u64(seed),
            stats: MemoryStats::default(),
        }
    }

    /// Reliable memory: no errors are ever injected.
    pub fn reliable(seed: u64) -> Self {
        Self {
            default_injector: None,
            site_injectors: HashMap::new(),
            site_layouts: HashMap::new(),
            allocator: AddressAllocator::new(2048 * 8),
            bounding: None,
            rng: StdRng::seed_from_u64(seed),
            stats: MemoryStats::default(),
        }
    }

    /// Enables implausible-value correction on every load.
    pub fn with_bounding(mut self, bounding: BoundingLogic) -> Self {
        self.bounding = Some(bounding);
        self
    }

    /// Backs one specific data type with its own error source (fine-grained
    /// mapping: different partitions have different BERs).
    pub fn assign_site(&mut self, site: DataSite, injector: Injector) {
        self.site_injectors.insert(site, injector);
    }

    /// Replaces the default error source for all unassigned sites.
    pub fn set_default(&mut self, injector: Option<Injector>) {
        self.default_injector = injector;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }

    /// The bounding logic, if enabled.
    pub fn bounding(&self) -> Option<&BoundingLogic> {
        self.bounding.as_ref()
    }

    fn layout_for(&mut self, site: &DataSite, total_bits: u64) -> Layout {
        if let Some(layout) = self.site_layouts.get(site) {
            return *layout;
        }
        let layout = self.allocator.allocate(total_bits);
        self.site_layouts.insert(site.clone(), layout);
        layout
    }
}

impl FaultHook for ApproximateMemory {
    fn corrupt(&mut self, site: &DataSite, tensor: &mut QuantTensor) {
        self.stats.loads += 1;
        let layout = self.layout_for(site, tensor.total_bits());
        let injector = self
            .site_injectors
            .get(site)
            .or(self.default_injector.as_ref())
            .cloned();
        if let Some(injector) = injector {
            self.stats.bit_flips += injector.corrupt_placed(tensor, &layout, &mut self.rng);
        }
        if let Some(bounding) = &self.bounding {
            self.stats.corrections += bounding.correct(tensor) as u64;
        }
    }
}

impl std::fmt::Debug for ApproximateMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ApproximateMemory(default: {}, {} site overrides, stats: {:?})",
            self.default_injector
                .as_ref()
                .map(|i| format!("BER {:.2e}", i.expected_ber()))
                .unwrap_or_else(|| "reliable".to_string()),
            self.site_injectors.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::CorrectionPolicy;
    use eden_dnn::DataKind;
    use eden_tensor::{Precision, Tensor};

    fn site(i: usize, kind: DataKind) -> DataSite {
        DataSite::new(i, format!("layer{i}"), kind)
    }

    fn stored(n: usize) -> QuantTensor {
        QuantTensor::quantize(
            &Tensor::from_vec((0..n).map(|i| (i as f32 * 0.11).sin()).collect(), &[n]),
            Precision::Int8,
        )
    }

    #[test]
    fn reliable_memory_never_corrupts() {
        let mut mem = ApproximateMemory::reliable(0);
        let clean = stored(512);
        let mut t = clean.clone();
        mem.corrupt(&site(0, DataKind::Weight), &mut t);
        assert_eq!(t, clean);
        assert_eq!(mem.stats().bit_flips, 0);
        assert_eq!(mem.stats().loads, 1);
    }

    #[test]
    fn model_backed_memory_flips_bits() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 1), 2);
        let clean = stored(4096);
        let mut t = clean.clone();
        mem.corrupt(&site(0, DataKind::Ifm), &mut t);
        assert!(mem.stats().bit_flips > 0);
        assert_eq!(clean.bit_differences(&t), mem.stats().bit_flips);
    }

    #[test]
    fn different_sites_get_different_addresses() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 1.0, 3), 4);
        let clean = stored(2048);
        let mut a = clean.clone();
        let mut b = clean.clone();
        mem.corrupt(&site(0, DataKind::Weight), &mut a);
        mem.corrupt(&site(1, DataKind::Weight), &mut b);
        // With deterministic weak cells (F = 1), identical data corrupted at
        // different addresses must differ.
        assert_ne!(a, b);
    }

    #[test]
    fn same_site_reuses_its_address() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 1.0, 5), 6);
        let clean = stored(2048);
        let mut a = clean.clone();
        let mut b = clean.clone();
        let s = site(2, DataKind::Weight);
        mem.corrupt(&s, &mut a);
        mem.corrupt(&s, &mut b);
        // Same weak cells, F = 1 → identical corruption.
        assert_eq!(a, b);
    }

    #[test]
    fn site_overrides_take_precedence() {
        let mut mem = ApproximateMemory::from_model(ErrorModel::uniform(0.05, 1.0, 7), 8);
        let quiet_site = site(3, DataKind::Weight);
        mem.assign_site(
            quiet_site.clone(),
            Injector::from_model(ErrorModel::uniform(0.0, 0.0, 7), Layout::default()),
        );
        let clean = stored(2048);
        let mut protected = clean.clone();
        mem.corrupt(&quiet_site, &mut protected);
        assert_eq!(protected, clean, "site mapped to an error-free partition");
        let mut unprotected = clean.clone();
        mem.corrupt(&site(4, DataKind::Weight), &mut unprotected);
        assert_ne!(unprotected, clean);
    }

    #[test]
    fn bounding_corrects_fp32_explosions() {
        let model = ErrorModel::uniform(0.01, 0.8, 11);
        let mut mem = ApproximateMemory::from_model(model, 12).with_bounding(BoundingLogic::new(
            -16.0,
            16.0,
            CorrectionPolicy::Zero,
        ));
        let t = Tensor::from_vec(
            (0..2048).map(|i| (i as f32 * 0.01).sin()).collect(),
            &[2048],
        );
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        mem.corrupt(&site(0, DataKind::Weight), &mut q);
        let max = q.dequantize().abs_max();
        assert!(
            max <= 16.0,
            "bounding must cap corrupted magnitudes, got {max}"
        );
    }
}
