//! Reusable evaluation sessions: the probe-loop backbone of EDEN.
//!
//! Every stage of the EDEN pipeline is dominated by *repeated* accuracy
//! evaluations of one network at one precision: the coarse binary search
//! (Table 3) probes a dozen BER operating points, the fine-grained sweep
//! (Figure 11) runs `sites × rounds` probes, the BER tolerance curves
//! (Figure 8) fan dozens of points out, and curricular retraining evaluates
//! after every boost iteration. The one-shot functions in
//! [`crate::inference`] are correct but rebuild everything per call: the
//! clean quantized weight bit images, the corrupted-weight pools, and —
//! through a fresh [`ApproximateMemory`] per probe — every placement's
//! O(total bits) weak-cell scan.
//!
//! [`EvalSession`] is the session layer those loops share. Constructed once
//! from `(network, precision, backend)`, it owns:
//!
//! * the clean quantized **weight bit images** ([`Network::weight_images`]),
//!   captured once instead of once per probe;
//! * the reusable **corrupted-weight pools** (simulated-f32 network copies
//!   and [`NativeWeights`] integer state), patched in place per refetch;
//! * the **per-worker scratch arena** of the native integer executor;
//! * the cached **reliable baseline** per evaluated sample set;
//! * a keyed cache of **per-placement injectors and weak-cell maps**
//!   ([`WeakMapCache`]) shared by every memory the session evaluates with,
//!   so a probe that changes one site's BER recomputes one map, not all of
//!   them;
//! * per-image **clean-image bounding corrections**, computed once per
//!   threshold set for the overlay refetch path.
//!
//! # Sparse overlay refetches
//!
//! By default ([`RefetchMode::Overlay`]) every weight refetch is served as a
//! set of sparse [`CorruptionOverlay`]s ([`ApproximateMemory::corrupt_overlay`]):
//! the pool's corrupted copies are held at the dequantized-clean baseline
//! and only the words a fault draw touches are patched — and reverted
//! before the next draw (`apply ∘ revert` is the identity). At the BERs the
//! paper operates at this makes the per-refetch weight cost O(flips)
//! instead of O(total weights), which is the dominant cost of the
//! characterization and tolerance-curve probe loops.
//! [`RefetchMode::ImageReload`] keeps the full image-reload path as the
//! reference implementation; the workspace `overlay_equivalence` suite pins
//! the two against each other bit for bit.
//!
//! # Incremental re-evaluation
//!
//! Characterization and mapping probes perturb only a few data sites; every
//! layer below the first perturbed one computes exactly what the previous
//! probe computed. The session exploits this with a **clean-activation
//! checkpoint store** ([`EvalSession::checkpoint_counters`]): during any
//! evaluation, each sample lane harvests the f32 activations crossing the
//! layer boundaries that the probed memory provably cannot have touched
//! (every boundary for small nets, every k-th for large ones), keyed by
//! `(sample-set content, sample index, boundary, bounding thresholds)`. A
//! later probe whose [`ApproximateMemory::first_dirty_layer`] is `L` resumes
//! each lane from the deepest stored boundary `≤ L`: the boundary activation
//! is restored, the lane's load cursor advances past the clean prefix
//! ([`ApproximateMemory::skip_clean_loads`], re-accounting the prefix's
//! deterministic bounding corrections), and only the suffix executes. The
//! result is **bit-identical** to the full pass — the prefix is skipped, not
//! approximated: prefix loads are served by provably error-free injectors
//! (zero flips), and bounding corrections on clean data are a pure function
//! of the data and the thresholds in the key. Per-probe cost drops from
//! O(layers) to O(suffix from the probed site).
//!
//! The store is byte-budgeted (64 MiB by default,
//! [`EvalSession::with_checkpoint_budget`]) with LRU-half eviction, drained
//! by [`EvalSession::release_transient_state`], and can be disabled
//! ([`EvalSession::with_checkpoints`]) — it is a pure cache, so eviction,
//! draining and disabling never change results, only recomputation cost.
//! The workspace `overlay_equivalence` suite pins checkpoints-on against
//! checkpoints-off bit for bit.
//!
//! Results are **bit-for-bit identical** to the one-shot API (which is
//! itself implemented as a thin wrapper constructing a throwaway session):
//! everything the session reuses is either a pure function of unchanged
//! inputs (images, weak maps, layouts) or state that each probe fully
//! re-initializes (pools, scratch). The workspace `session_equivalence`
//! suite pins this across backends, precisions and thread counts.
//!
//! # Example
//!
//! ```
//! use eden_core::faults::ApproximateMemory;
//! use eden_core::inference::InferenceBackend;
//! use eden_core::session::EvalSession;
//! use eden_dnn::{data::SyntheticVision, zoo, Dataset};
//! use eden_dram::ErrorModel;
//! use eden_tensor::Precision;
//!
//! let dataset = SyntheticVision::tiny(0);
//! let net = zoo::lenet(&dataset.spec(), 1);
//! let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::SimulatedF32);
//! let template = ErrorModel::uniform(0.001, 0.5, 7);
//! // Probe two operating points; the second reuses the session's images,
//! // pools and weak-cell maps.
//! for ber in [1e-4, 1e-3] {
//!     let mut memory = ApproximateMemory::from_model(template.with_ber(ber), 3);
//!     let accuracy = session.evaluate_with_faults(&dataset.test()[..8], &mut memory);
//!     assert!((0.0..=1.0).contains(&accuracy));
//! }
//! ```

use crate::bounding::{BoundingLogic, CorrectionPolicy};
use crate::faults::{ApproximateMemory, MemoryStats, WeakMapCache};
use crate::inference::{effective_backend, InferenceBackend};
use eden_dnn::network::WeightImage;
use eden_dnn::qexec::{self, NativeWeights, QuantScratch, ScratchArena};
use eden_dnn::{DataKind, DataSite, FaultHook, Network};
use eden_dram::error_model::Layout;
use eden_dram::inject::Injector;
use eden_dram::util::stream;
use eden_dram::ErrorModel;
use eden_tensor::{CorruptionOverlay, Precision, QuantTensor, Tensor};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Samples per weight refetch: the corrupted weight copy is re-loaded from
/// approximate DRAM once per this many samples, modelling periodic
/// re-fetching (the same constant the seed implementation chunked by).
pub const WEIGHT_REFETCH_PERIOD: usize = 16;

/// Samples per window: at most 16 corrupted weight copies are resident at
/// once, wide enough to keep every worker busy.
const WINDOW: usize = 16 * WEIGHT_REFETCH_PERIOD;

/// Number of refetch slots a window needs.
fn refetch_slots(window_len: usize) -> usize {
    window_len.div_ceil(WEIGHT_REFETCH_PERIOD)
}

/// Default cap on the samples of one weight-stationary batch group
/// ([`EvalSession::with_batch_limit`]).
pub const DEFAULT_BATCH_LIMIT: usize = 32;

/// Cumulative batch-group counters of a session's evaluations
/// ([`EvalSession::batch_counters`]): how the overlay-grouping rule resolved
/// each evaluated sample. `batched_samples` counts samples executed inside a
/// multi-sample weight-stationary group (one of `groups`);
/// `fallback_samples` counts samples that ran alone — either because their
/// corrupted weight state matched no neighbour's or because the batch limit
/// is 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Multi-sample groups formed (each executed as one batched forward).
    pub groups: u64,
    /// Samples executed inside a multi-sample group.
    pub batched_samples: u64,
    /// Samples that fell back to per-sample execution.
    pub fallback_samples: u64,
}

/// Lock-free accumulators behind [`BatchCounters`] (grouping runs inside
/// concurrent probes sharing one `&SessionCore`).
#[derive(Default)]
struct BatchStats {
    groups: AtomicU64,
    batched_samples: AtomicU64,
    fallback_samples: AtomicU64,
}

/// How the session re-loads its corrupted weight state from approximate
/// memory on each refetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefetchMode {
    /// Sparse corruption overlays (the production path): the persistent
    /// corrupted copies are held at the dequantized-clean baseline and
    /// patched/reverted per draw via [`CorruptionOverlay`]s — O(flips) per
    /// refetch instead of O(total weights).
    #[default]
    Overlay,
    /// Full image reloads (the reference implementation the overlay path is
    /// pinned against, bit for bit): every refetch corrupts a copy of each
    /// clean bit image and rewrites every parameter word.
    ImageReload,
}

impl fmt::Display for RefetchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefetchMode::Overlay => f.write_str("overlay"),
            RefetchMode::ImageReload => f.write_str("reload"),
        }
    }
}

impl FromStr for RefetchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "overlay" => Ok(RefetchMode::Overlay),
            "reload" | "image-reload" => Ok(RefetchMode::ImageReload),
            other => Err(format!(
                "unknown refetch mode {other:?} (expected \"overlay\" or \"reload\")"
            )),
        }
    }
}

/// Reusable buffers of one simulated-f32 forward pass: the stored-bits
/// image crossing every layer boundary and the dequantized activation
/// buffer. [`QuantTensor::quantize`] is defined as `requantize_from` on a
/// fresh buffer, so reusing one across layers (and samples) is
/// bit-identical to allocating per layer.
#[derive(Default)]
struct SimScratch {
    stored: Option<QuantTensor>,
    dequantized: Vec<f32>,
    /// Per-sample dequantized-activation buffers of the batched executor:
    /// grown once to the group width, reused across the layer loop.
    batch: Vec<Vec<f32>>,
}

/// How a session holds its network: borrowed from the caller's frame (the
/// classic stack-scoped probe loops) or shared ownership of an `Arc` (the
/// serving layer, where sessions outlive any request frame and reference the
/// `Arc`-shared model zoo — see [`EvalSession::new_shared`]).
enum NetRef<'a> {
    Borrowed(&'a Network),
    Shared(Arc<Network>),
}

impl std::ops::Deref for NetRef<'_> {
    type Target = Network;

    fn deref(&self) -> &Network {
        match self {
            NetRef::Borrowed(net) => net,
            NetRef::Shared(net) => net,
        }
    }
}

/// The shareable, probe-invariant part of a session: everything that depends
/// only on `(network, precision, backend)` and can therefore back any number
/// of concurrent probes (the BER sweep fans probes out over the `eden-par`
/// pool with one borrowed `SessionCore`).
struct SessionCore<'a> {
    net: NetRef<'a>,
    precision: Precision,
    backend: InferenceBackend,
    refetch: RefetchMode,
    /// Clean quantized bit images of every weight parameter, in
    /// [`Network::corrupt_weights`] visit order — captured once per session.
    images: Vec<WeightImage>,
    /// One IFM [`DataSite`] per layer, precomputed so the per-layer loads of
    /// every sample skip the site's name allocation.
    ifm_sites: Vec<DataSite>,
    /// Weak-cell maps and placements shared by every memory this session
    /// evaluates with.
    weak_maps: Arc<WeakMapCache>,
    /// Per-image clean-image bounding corrections, keyed by the exact
    /// threshold bits — computed once per `(images, bounding)` pair so the
    /// overlay refetch path folds corrections in O(corrections) per load
    /// instead of re-scanning every weight value
    /// ([`BoundingLogic::clean_corrections`]).
    clean_corrections: Mutex<HashMap<BoundingKey, Arc<CleanCorrections>>>,
    /// Native-executor scratch buffers, checked out per worker pass.
    scratch: ScratchArena<QuantScratch>,
    /// Simulated-path scratch buffers, checked out per worker pass.
    sim_scratch: ScratchArena<SimScratch>,
    /// Corrupted-weight pools for concurrent probes ([`EvalSession::
    /// evaluate_concurrent`] and the probe fan-outs built on it), checked
    /// out per probe. Which pool a probe gets cannot affect numerics — every
    /// refetch fully determines the weight state from the slot's tracked
    /// overlay state — so checkout order is free to vary with thread count
    /// while results stay bit-identical. At one thread this degenerates to
    /// the same single reused pool the sequential probe loops enjoy.
    pool_arena: ScratchArena<ProbePools>,
    /// Clean-activation checkpoints backing incremental re-evaluation; see
    /// the [module docs](self) and [`CheckpointStore`].
    checkpoints: CheckpointStore,
    /// Harvest every `checkpoint_stride`-th boundary (1 for small nets).
    checkpoint_stride: usize,
    /// Whether evaluations may consult and populate the checkpoint store
    /// (on by default; results are bit-identical either way).
    checkpoints_enabled: bool,
    /// Cap on the samples of one weight-stationary batch group; 1 disables
    /// batching (pure per-sample execution, the reference the batched path
    /// is pinned against).
    batch_limit: usize,
    /// Batch-group accounting, surfaced by [`EvalSession::batch_counters`].
    batch_stats: BatchStats,
}

/// Exact-value cache key of one [`BoundingLogic`]: every field as bits, so
/// two logics share clean corrections iff they correct identically.
type BoundingKey = (u32, u32, CorrectionPolicy, u32);

/// The clean-image bounding corrections of every weight image, in image
/// order ([`BoundingLogic::clean_corrections`] per image).
type CleanCorrections = Vec<Vec<(u32, u32)>>;

fn bounding_key(b: &BoundingLogic) -> BoundingKey {
    (
        b.lower.to_bits(),
        b.upper.to_bits(),
        b.policy,
        b.latency_cycles,
    )
}

/// Default byte budget of a session's clean-activation checkpoint store.
const CHECKPOINT_BUDGET_BYTES: usize = 64 << 20;

/// Per-sample byte target used to pick the checkpoint stride: a net whose
/// boundary activations together fit this budget checkpoints every boundary;
/// larger nets checkpoint every k-th boundary.
const CHECKPOINT_SAMPLE_BUDGET_BYTES: usize = 256 << 10;

/// Key of one clean-activation checkpoint:
/// `(sample-set content key, sample index, boundary layer, bounding key)`.
///
/// The precision and backend are *not* in the key because the store lives on
/// a [`SessionCore`], which is itself one `(network, precision, backend)`
/// triple — the per-(sample, precision, backend) scoping the design calls
/// for. The bounding key is required: bounding corrects clean out-of-range
/// values too, so the clean activation entering a boundary (and the
/// correction count the prefix loads accumulate) depends on the exact
/// thresholds in force; `None` keys the bounding-free evaluations.
type CheckpointKey = (u64, u32, u32, Option<BoundingKey>);

/// One checkpointed clean boundary activation: the exact f32 bits entering
/// the boundary layer, plus the bounding corrections the prefix IFM loads
/// accumulated on the way there (deterministic for clean data, so part of
/// the checkpoint rather than recomputed).
struct Checkpoint {
    data: Vec<f32>,
    shape: Vec<usize>,
    corrections: u64,
}

impl Checkpoint {
    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.data.len() * std::mem::size_of::<f32>()
            + self.shape.len() * std::mem::size_of::<usize>()
    }
}

/// Cumulative counters of a session's checkpoint store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Lane evaluations resumed from a checkpointed boundary.
    pub hits: u64,
    /// Lane evaluations with a clean prefix but no stored boundary (ran the
    /// full forward pass and harvested checkpoints along the way).
    pub misses: u64,
    /// Checkpoints evicted under the byte budget.
    pub evictions: u64,
    /// Bytes currently held by resident checkpoints.
    pub resident_bytes: u64,
}

/// The per-session store of clean boundary activations backing incremental
/// re-evaluation (see the [module docs](self)).
///
/// Entries are a pure cache: a lookup either returns the bit-exact
/// activation a full forward pass would compute at that boundary or nothing,
/// so eviction (and the store being disabled entirely) can never change
/// results — only how much of each forward pass is recomputed. Eviction
/// drops the least-recently-used half of the entries, ordered by a logical
/// access clock exactly like [`WeakMapCache`].
struct CheckpointStore {
    state: Mutex<CheckpointState>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Mirror of `state.resident_bytes` readable without the lock.
    resident: AtomicU64,
}

#[derive(Default)]
struct CheckpointState {
    entries: HashMap<CheckpointKey, CheckpointEntry>,
    tick: u64,
    resident_bytes: usize,
}

struct CheckpointEntry {
    value: Arc<Checkpoint>,
    last_used: u64,
}

impl CheckpointStore {
    fn new(budget: usize) -> Self {
        Self {
            state: Mutex::new(CheckpointState::default()),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        }
    }

    /// The checkpoint stored under `key`, refreshing its LRU position.
    fn get(&self, key: &CheckpointKey) -> Option<Arc<Checkpoint>> {
        let mut state = self.state.lock().unwrap();
        let tick = state.tick;
        state.tick += 1;
        let entry = state.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Stores `make()` under `key` unless an entry already exists (the
    /// existing entry's LRU position is refreshed instead — concurrent lanes
    /// of one window harvest the same boundaries, and the first insert
    /// wins). Evicts the LRU half when the byte budget is exceeded.
    fn insert_with(&self, key: CheckpointKey, make: impl FnOnce() -> Checkpoint) {
        let mut state = self.state.lock().unwrap();
        let tick = state.tick;
        state.tick += 1;
        if let Some(entry) = state.entries.get_mut(&key) {
            entry.last_used = tick;
            return;
        }
        let value = Arc::new(make());
        state.resident_bytes += value.bytes();
        state.entries.insert(
            key,
            CheckpointEntry {
                value,
                last_used: tick,
            },
        );
        if state.resident_bytes > self.budget {
            let evicted = state.evict_lru_half();
            self.evictions.fetch_add(evicted, AtomicOrdering::Relaxed);
        }
        self.resident
            .store(state.resident_bytes as u64, AtomicOrdering::Relaxed);
    }

    /// Drops every checkpoint, keeping the cumulative counters.
    fn clear(&self) {
        let mut state = self.state.lock().unwrap();
        state.entries.clear();
        state.resident_bytes = 0;
        self.resident.store(0, AtomicOrdering::Relaxed);
    }

    fn counters(&self) -> CheckpointCounters {
        CheckpointCounters {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            evictions: self.evictions.load(AtomicOrdering::Relaxed),
            resident_bytes: self.resident.load(AtomicOrdering::Relaxed),
        }
    }
}

impl CheckpointState {
    /// Evicts the least-recently-used half of the entries (by unique access
    /// tick, as [`WeakMapCache`] does) and returns how many were dropped.
    fn evict_lru_half(&mut self) -> u64 {
        let keep = self.entries.len() / 2;
        let evict = self.entries.len() - keep;
        if evict == 0 {
            return 0;
        }
        let mut ticks: Vec<u64> = self.entries.values().map(|e| e.last_used).collect();
        ticks.sort_unstable();
        match ticks.get(evict) {
            // Keep the `keep` most recently used entries.
            Some(&threshold) => self.entries.retain(|_, e| e.last_used >= threshold),
            // `keep == 0` (a single entry over a sub-entry budget): drop all.
            None => self.entries.clear(),
        }
        self.resident_bytes = self.entries.values().map(|e| e.value.bytes()).sum();
        evict as u64
    }
}

/// The checkpoint plumbing of one `evaluate` call: the store plus everything
/// the per-lane resume/harvest decisions need — the sample-set and bounding
/// key components, the highest provably-clean boundary of the probed memory,
/// and the harvest stride.
struct CheckpointCtx<'c> {
    store: &'c CheckpointStore,
    skey: u64,
    bkey: Option<BoundingKey>,
    /// Highest boundary whose entering activation is clean under the probed
    /// memory: `min(first dirty layer, depth - 1)`. 0 disables both resume
    /// and harvest (corruption reaches layer 0).
    top: usize,
    /// Harvest every `stride`-th boundary (1 for small nets).
    stride: usize,
}

impl CheckpointCtx<'_> {
    /// The deepest stored checkpoint usable for `sample`, scanning from the
    /// highest clean boundary down. One hit or miss is recorded per lane
    /// with a non-trivial clean prefix, not per boundary probed.
    fn resume(&self, sample: u32) -> Option<(usize, Arc<Checkpoint>)> {
        if self.top == 0 {
            return None;
        }
        for boundary in (1..=self.top).rev() {
            if let Some(ck) = self
                .store
                .get(&(self.skey, sample, boundary as u32, self.bkey))
            {
                self.store.hits.fetch_add(1, AtomicOrdering::Relaxed);
                return Some((boundary, ck));
            }
        }
        self.store.misses.fetch_add(1, AtomicOrdering::Relaxed);
        None
    }

    /// Offers boundary `boundary`'s entering activation (with the lane's
    /// cumulative prefix corrections) for storage; kept iff the boundary is
    /// clean under the probed memory and on the stride grid.
    fn harvest(&self, sample: u32, boundary: usize, x: &Tensor, corrections: u64) {
        if boundary == 0 || boundary > self.top || !boundary.is_multiple_of(self.stride) {
            return;
        }
        let key = (self.skey, sample, boundary as u32, self.bkey);
        self.store.insert_with(key, || Checkpoint {
            data: x.data().to_vec(),
            shape: x.shape().to_vec(),
            corrections,
        });
    }
}

/// The checkpoint stride of `net`: every boundary while the per-sample
/// checkpoint footprint fits [`CHECKPOINT_SAMPLE_BUDGET_BYTES`], every k-th
/// boundary beyond it.
fn checkpoint_stride(net: &Network) -> usize {
    let shapes = net.data_flow_shapes();
    if shapes.len() < 2 {
        return 1;
    }
    // shapes[b - 1] is the activation entering boundary b, for b in 1..depth.
    let per_sample: usize = shapes[..shapes.len() - 1]
        .iter()
        .map(|s| s.iter().product::<usize>() * std::mem::size_of::<f32>())
        .sum();
    per_sample.div_ceil(CHECKPOINT_SAMPLE_BUDGET_BYTES).max(1)
}

/// Weight state of one corrupted-copy slot with respect to the session's
/// clean images.
enum SlotState {
    /// Parameters hold an image-reload result, or the master network's raw
    /// values (a freshly cloned slot) — anything the overlay path must reset
    /// with a full clean load before patching.
    Unknown,
    /// Parameters hold `clean` patched by these overlays; reverting them
    /// restores the clean baseline in O(flips).
    Overlaid(Vec<CorruptionOverlay>),
}

/// One reusable corrupted-weight slot: the weight state plus how it was last
/// written.
struct Slot<T> {
    inner: T,
    state: SlotState,
}

impl<T> Slot<T> {
    fn new(inner: T) -> Self {
        Self {
            inner,
            state: SlotState::Unknown,
        }
    }
}

/// A corrupted-weight state the session can refetch either sparsely (clean
/// baseline + overlay patches) or by full image reload — implemented by the
/// simulated-f32 [`Network`] copies and the [`NativeWeights`] integer state,
/// so both backends share one refetch state machine
/// ([`SessionCore::refetch_slot`]).
trait RefetchTarget {
    fn load_clean(&mut self, images: &[WeightImage]);
    fn load_reference(&mut self, images: &[WeightImage], memory: &mut ApproximateMemory);
    fn apply_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]);
    fn revert_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]);
}

impl RefetchTarget for Network {
    fn load_clean(&mut self, images: &[WeightImage]) {
        self.load_clean_weights(images);
    }

    fn load_reference(&mut self, images: &[WeightImage], memory: &mut ApproximateMemory) {
        self.load_corrupted_weights(images, memory);
    }

    fn apply_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        Network::apply_overlay(self, images, overlays);
    }

    fn revert_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        Network::revert_overlay(self, images, overlays);
    }
}

impl RefetchTarget for NativeWeights {
    fn load_clean(&mut self, images: &[WeightImage]) {
        self.refresh_clean(images);
    }

    fn load_reference(&mut self, images: &[WeightImage], memory: &mut ApproximateMemory) {
        self.refresh(images, memory);
    }

    fn apply_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        NativeWeights::apply_overlay(self, images, overlays);
    }

    fn revert_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        NativeWeights::revert_overlay(self, images, overlays);
    }
}

/// Reusable corrupted-weight state: lazily grown to the refetch-slot count
/// and re-written in place per refetch — patched sparsely under
/// [`RefetchMode::Overlay`], fully re-loaded from the session's bit images
/// under [`RefetchMode::ImageReload`] — so sequential probes never re-clone
/// the network object graph.
#[derive(Default)]
struct ProbePools {
    simulated: Vec<Slot<Network>>,
    native: Vec<Slot<NativeWeights>>,
}

/// A reusable evaluation session for one `(network, precision, backend)`
/// triple. See the [module docs](self) for what it owns and why.
///
/// The session borrows the network immutably: construct a fresh session
/// after mutating weights (e.g. between boost iterations of the pipeline).
/// Cached baselines assume the evaluated sample sets are immutable for the
/// session's lifetime — they are keyed by sample *content*, so a mutated
/// set is never confused with its previous contents, merely re-evaluated.
pub struct EvalSession<'a> {
    core: SessionCore<'a>,
    pools: ProbePools,
    /// Reliable-baseline accuracy per sample-set content key.
    baselines: HashMap<u64, f32>,
    /// Injectors keyed by `(error-model fingerprint, BER bits)`.
    injectors: HashMap<(u64, u64), Injector>,
}

impl<'a> EvalSession<'a> {
    /// Creates a session, capturing the clean quantized weight bit images of
    /// `net` at `precision`. Weight refetches default to the sparse
    /// [`RefetchMode::Overlay`] path; see
    /// [`EvalSession::with_refetch_mode`].
    pub fn new(net: &'a Network, precision: Precision, backend: InferenceBackend) -> Self {
        Self::from_net_ref(NetRef::Borrowed(net), precision, backend)
    }

    fn from_net_ref(net: NetRef<'a>, precision: Precision, backend: InferenceBackend) -> Self {
        Self {
            core: SessionCore {
                images: net.weight_images(precision),
                ifm_sites: net
                    .layers()
                    .iter()
                    .enumerate()
                    .map(|(i, layer)| DataSite::new(i, layer.name(), DataKind::Ifm))
                    .collect(),
                checkpoint_stride: checkpoint_stride(&net),
                net,
                precision,
                backend,
                refetch: RefetchMode::default(),
                weak_maps: Arc::new(WeakMapCache::new()),
                clean_corrections: Mutex::new(HashMap::new()),
                scratch: ScratchArena::new(),
                sim_scratch: ScratchArena::new(),
                pool_arena: ScratchArena::new(),
                checkpoints: CheckpointStore::new(CHECKPOINT_BUDGET_BYTES),
                checkpoints_enabled: true,
                batch_limit: DEFAULT_BATCH_LIMIT,
                batch_stats: BatchStats::default(),
            },
            pools: ProbePools::default(),
            baselines: HashMap::new(),
            injectors: HashMap::new(),
        }
    }

    /// Selects how weight refetches are served (sparse overlays by default;
    /// [`RefetchMode::ImageReload`] is the reference implementation the
    /// overlay path is pinned against). Results are bit-identical either
    /// way; only the per-refetch cost differs.
    pub fn with_refetch_mode(mut self, mode: RefetchMode) -> Self {
        self.core.refetch = mode;
        self
    }

    /// The session's weight-refetch mode.
    pub fn refetch_mode(&self) -> RefetchMode {
        self.core.refetch
    }

    /// The network under evaluation.
    pub fn net(&self) -> &Network {
        &self.core.net
    }

    /// The stored-data precision of the session.
    pub fn precision(&self) -> Precision {
        self.core.precision
    }

    /// The execution backend of the session.
    pub fn backend(&self) -> InferenceBackend {
        self.core.backend
    }

    /// The session's shared weak-map cache. Attach it to memories evaluated
    /// outside the session (it is attached automatically to every memory
    /// passed through the session's own methods).
    pub fn weak_map_cache(&self) -> Arc<WeakMapCache> {
        self.core.weak_maps.clone()
    }

    /// Enables or disables the clean-activation checkpoint store (on by
    /// default). Checkpoints are a pure cache — results are bit-identical
    /// either way — so disabling exists for cost comparisons and as the
    /// reference the incremental path is pinned against.
    pub fn with_checkpoints(mut self, enabled: bool) -> Self {
        self.core.checkpoints_enabled = enabled;
        self
    }

    /// Whether the checkpoint store is consulted by evaluations.
    pub fn checkpoints_enabled(&self) -> bool {
        self.core.checkpoints_enabled
    }

    /// Overrides the checkpoint store's byte budget (default 64 MiB). A
    /// budget too small for even one window's boundaries just means constant
    /// eviction — every lane falls back to the full forward pass, results
    /// unchanged.
    pub fn with_checkpoint_budget(mut self, bytes: usize) -> Self {
        self.core.checkpoints = CheckpointStore::new(bytes);
        self
    }

    /// Cumulative checkpoint-store counters (hits, misses, evictions,
    /// resident bytes) — the session-stats accounting of incremental
    /// re-evaluation, surfaced by the serving layer next to the weak-map
    /// cache counters.
    pub fn checkpoint_counters(&self) -> CheckpointCounters {
        self.core.checkpoints.counters()
    }

    /// Overrides the cap on weight-stationary batch-group size (default
    /// [`DEFAULT_BATCH_LIMIT`]; clamped to at least 1). A limit of 1
    /// disables batching entirely — the reference per-sample execution the
    /// batched path is pinned against, bit for bit.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.core.batch_limit = limit.max(1);
        self
    }

    /// The session's batch-group size cap.
    pub fn batch_limit(&self) -> usize {
        self.core.batch_limit
    }

    /// Cumulative batch-group counters (groups formed, samples batched,
    /// per-sample fallbacks) across every evaluation the session has run —
    /// surfaced by the serving layer next to the checkpoint counters.
    pub fn batch_counters(&self) -> BatchCounters {
        let s = &self.core.batch_stats;
        BatchCounters {
            groups: s.groups.load(AtomicOrdering::Relaxed),
            batched_samples: s.batched_samples.load(AtomicOrdering::Relaxed),
            fallback_samples: s.fallback_samples.load(AtomicOrdering::Relaxed),
        }
    }

    /// Classification accuracy over `samples` served from `memory` —
    /// bit-identical to [`crate::inference::evaluate_with_faults_backend`],
    /// with the session amortizing images, pools and weak-cell maps across
    /// calls. Returns the [`f32::NAN`] sentinel for an empty sample slice.
    pub fn evaluate_with_faults(
        &mut self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
    ) -> f32 {
        self.core.evaluate(samples, memory, &mut self.pools, None)
    }

    /// Runs two independent probes concurrently on the `eden-par` pool (the
    /// coarse search's speculative boundary probes). Each probe gets its own
    /// transient pools, exactly like two one-shot calls would.
    pub fn evaluate_pair(
        &mut self,
        samples: &[(Tensor, usize)],
        memory_a: &mut ApproximateMemory,
        memory_b: &mut ApproximateMemory,
    ) -> (f32, f32) {
        let core = &self.core;
        eden_par::join(
            || {
                core.pool_arena
                    .with(|p| core.evaluate(samples, memory_a, p, None))
            },
            || {
                core.pool_arena
                    .with(|p| core.evaluate(samples, memory_b, p, None))
            },
        )
    }

    /// Accuracy of the network on reliable memory, cached per sample-set
    /// content so repeated characterizations of the same validation slice
    /// evaluate it once. Returns [`f32::NAN`] for an empty slice.
    pub fn evaluate_reliable(&mut self, samples: &[(Tensor, usize)]) -> f32 {
        let key = samples_key(samples);
        if let Some(&accuracy) = self.baselines.get(&key) {
            return accuracy;
        }
        let mut memory = ApproximateMemory::reliable(0);
        let accuracy = self.evaluate_with_faults(samples, &mut memory);
        self.baselines.insert(key, accuracy);
        accuracy
    }

    /// Accuracy at a sequence of bit error rates (the Figure 8 sweep) —
    /// bit-identical to [`crate::inference::accuracy_vs_ber_backend`]. The
    /// points fan out over the `eden-par` pool and share the session's
    /// images and weak-map cache.
    pub fn accuracy_vs_ber(
        &mut self,
        samples: &[(Tensor, usize)],
        template: &ErrorModel,
        bers: &[f64],
        bounding: Option<BoundingLogic>,
        seed: u64,
    ) -> Vec<(f64, f32)> {
        let core = &self.core;
        eden_par::par_map(bers, |_, &ber| {
            let model = template.with_ber(ber);
            let mut memory = ApproximateMemory::from_model(model, seed);
            if let Some(b) = bounding {
                memory = memory.with_bounding(b);
            }
            (
                ber,
                core.pool_arena
                    .with(|p| core.evaluate(samples, &mut memory, p, None)),
            )
        })
    }

    /// One forward pass with weights and IFMs served from `memory` —
    /// bit-identical to [`crate::inference::forward_with_faults_backend`].
    pub fn forward_with_faults(
        &mut self,
        input: &Tensor,
        memory: &mut ApproximateMemory,
    ) -> Tensor {
        let core = &self.core;
        let pools = &mut self.pools;
        memory.attach_weak_map_cache(core.weak_maps.clone());
        match effective_backend(core.backend, core.precision) {
            InferenceBackend::SimulatedF32 => {
                if pools.simulated.is_empty() {
                    pools.simulated.push(Slot::new((*core.net).clone()));
                }
                let slot = &mut pools.simulated[0];
                slot.inner.load_corrupted_weights(&core.images, memory);
                slot.state = SlotState::Unknown;
                core.sim_scratch.with(|scratch| {
                    core.forward_simulated(&slot.inner, input, 0, memory, scratch, None)
                })
            }
            InferenceBackend::NativeInt => {
                if pools.native.is_empty() {
                    pools
                        .native
                        .push(Slot::new(NativeWeights::prepare(&core.net)));
                }
                let slot = &mut pools.native[0];
                slot.inner.refresh(&core.images, memory);
                slot.state = SlotState::Unknown;
                core.scratch.with(|scratch| {
                    qexec::forward_native(
                        &core.net,
                        &slot.inner,
                        input,
                        core.precision,
                        memory,
                        scratch,
                    )
                })
            }
        }
    }

    /// The model-backed injector for `template.with_ber(ber)` at the default
    /// layout, cached by `(template, BER)` so per-site tolerance sweeps
    /// rebuild one injector per distinct operating point instead of one per
    /// site per probe.
    pub fn injector_for(&mut self, template: &ErrorModel, ber: f64) -> Injector {
        self.injectors
            .entry((template.fingerprint(), ber.to_bits()))
            .or_insert_with(|| Injector::from_model(template.with_ber(ber), Layout::default()))
            .clone()
    }

    /// Classification accuracy over `samples` served from `memory`, through
    /// a shared `&self` — the entry point of the serving layer, where many
    /// concurrent requests hold one session behind an `Arc`.
    ///
    /// Each call evaluates with a corrupted-weight pool checked out of the
    /// session's pool arena (growing it only while calls actually overlap)
    /// while sharing the session's expensive probe-invariant state: the
    /// clean weight bit images, the weak-map cache, the clean-correction
    /// tables and the scratch arenas. Bit-identical to
    /// [`EvalSession::evaluate_with_faults`] — which pool a probe draws
    /// cannot influence results, because every refetch fully determines the
    /// weight state from the slot's tracked overlay state.
    pub fn evaluate_concurrent(
        &self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
    ) -> f32 {
        self.core
            .pool_arena
            .with(|pools| self.core.evaluate(samples, memory, pools, None))
    }

    /// [`EvalSession::evaluate_concurrent`] with a per-call batch-group size
    /// cap overriding the session's [`EvalSession::batch_limit`] — the
    /// serving layer's batched-evaluation entry point. `batch == 1` forces
    /// per-sample execution; results are bit-identical at any cap.
    pub fn evaluate_concurrent_batched(
        &self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
        batch: usize,
    ) -> f32 {
        self.core
            .pool_arena
            .with(|pools| self.core.evaluate(samples, memory, pools, Some(batch)))
    }

    /// Releases the session's transient probe state — the corrupted-weight
    /// pools, cached reliable baselines, cached injectors, clean-correction
    /// tables, clean-activation checkpoints and checked-in scratch buffers —
    /// keeping only the clean bit images and the weak-map cache. The serving
    /// layer calls this when a shard goes cold (session eviction under
    /// memory pressure); results are unaffected either way, the released
    /// state is simply rebuilt on demand by the next probe.
    pub fn release_transient_state(&mut self) {
        self.pools = ProbePools::default();
        self.baselines.clear();
        self.injectors.clear();
        self.core.clean_corrections.lock().unwrap().clear();
        self.core.checkpoints.clear();
        self.core.scratch.drain();
        self.core.sim_scratch.drain();
        self.core.pool_arena.drain();
    }
}

impl EvalSession<'static> {
    /// Creates a session that *owns* a share of its network: the session can
    /// outlive the constructing frame, which is what lets a long-running
    /// evaluation service keep sessions hot across requests while the model
    /// zoo shares one `Arc` per network. Behaves identically to
    /// [`EvalSession::new`] in every other respect.
    pub fn new_shared(net: Arc<Network>, precision: Precision, backend: InferenceBackend) -> Self {
        Self::from_net_ref(NetRef::Shared(net), precision, backend)
    }
}

/// Content hash of a sample set: length, labels and every input's f32 bit
/// pattern. Two slices with identical contents share a baseline entry; any
/// content change produces a different key.
fn samples_key(samples: &[(Tensor, usize)]) -> u64 {
    let mut h = stream(0xBA5E_11E5, samples.len() as u64);
    for (x, label) in samples {
        h = stream(h, *label as u64);
        h = stream(h, x.data().len() as u64);
        for v in x.data() {
            h = h
                .rotate_left(9)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(v.to_bits() as u64);
        }
        h = stream(h, 0x5A17);
    }
    h
}

impl SessionCore<'_> {
    /// The batch evaluator behind [`EvalSession::evaluate_with_faults`]:
    /// identical window/refetch structure (and load-stream consumption) to
    /// the seed implementation, with the per-call state drawn from the
    /// session instead of rebuilt.
    fn evaluate(
        &self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
        pools: &mut ProbePools,
        batch: Option<usize>,
    ) -> f32 {
        if samples.is_empty() {
            return f32::NAN;
        }
        memory.attach_weak_map_cache(self.weak_maps.clone());
        // Pin every site's DRAM placement before forking so all forks agree
        // on addresses without having to communicate.
        memory.preallocate(&self.net, self.precision);
        let ckpt = self.checkpoint_ctx(samples, memory);
        let correct = match effective_backend(self.backend, self.precision) {
            InferenceBackend::SimulatedF32 => {
                self.evaluate_simulated(samples, memory, &mut pools.simulated, ckpt.as_ref(), batch)
            }
            InferenceBackend::NativeInt => {
                self.evaluate_native(samples, memory, &mut pools.native, ckpt.as_ref(), batch)
            }
        };
        correct as f32 / samples.len() as f32
    }

    /// Partitions one window's samples into weight-stationary batch groups:
    /// maximal runs of consecutive samples whose corrupted weight states are
    /// provably equal, split to the batch cap. Samples sharing a refetch
    /// slot trivially qualify; a run extends across a slot boundary iff both
    /// slots are in [`SlotState::Overlaid`] with equal overlay sets — an
    /// O(flips) comparison — which makes batched execution bit-identical by
    /// construction (the group genuinely shares one weight state, and each
    /// lane's fault stream is keyed by its own global sample index either
    /// way). [`RefetchMode::ImageReload`] slots report
    /// [`SlotState::Unknown`], so cross-slot merging never happens there.
    ///
    /// Also the single accounting point of [`BatchCounters`]: every returned
    /// group increments either the group/batched-sample counters or the
    /// fallback counter.
    fn batch_groups<T>(
        &self,
        window_len: usize,
        slots: &[Slot<T>],
        batch: Option<usize>,
    ) -> Vec<std::ops::Range<usize>> {
        let limit = batch.unwrap_or(self.batch_limit).max(1);
        let mergeable = |a: usize, b: usize| match (&slots[a].state, &slots[b].state) {
            (SlotState::Overlaid(x), SlotState::Overlaid(y)) => x == y,
            _ => false,
        };
        let mut groups = Vec::new();
        let mut start = 0usize;
        for i in 1..=window_len {
            let split = i == window_len || i - start == limit || {
                let (a, b) = ((i - 1) / WEIGHT_REFETCH_PERIOD, i / WEIGHT_REFETCH_PERIOD);
                a != b && !mergeable(a, b)
            };
            if split {
                groups.push(start..i);
                start = i;
            }
        }
        for g in &groups {
            if g.len() > 1 {
                self.batch_stats
                    .groups
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.batch_stats
                    .batched_samples
                    .fetch_add(g.len() as u64, AtomicOrdering::Relaxed);
            } else {
                self.batch_stats
                    .fallback_samples
                    .fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
        groups
    }

    /// The checkpoint context of one `evaluate` call (`None` when the store
    /// is disabled or the net is too shallow to have an interior boundary):
    /// keys the store by sample-set content and bounding configuration, and
    /// caps resume/harvest at the probed memory's first dirty layer.
    fn checkpoint_ctx(
        &self,
        samples: &[(Tensor, usize)],
        memory: &ApproximateMemory,
    ) -> Option<CheckpointCtx<'_>> {
        if !self.checkpoints_enabled {
            return None;
        }
        let depth = self.net.depth();
        if depth < 2 {
            return None;
        }
        let first_dirty = memory.first_dirty_layer(depth);
        Some(CheckpointCtx {
            store: &self.checkpoints,
            skey: samples_key(samples),
            bkey: memory.bounding().map(bounding_key),
            top: first_dirty.min(depth - 1),
            stride: self.checkpoint_stride,
        })
    }

    /// The clean-image bounding corrections for `memory`'s bounding logic
    /// (None without bounding, or in reload mode, which corrects inside the
    /// full scan anyway), computed once per distinct threshold set and
    /// shared from then on.
    fn clean_corrections(&self, memory: &ApproximateMemory) -> Option<Arc<CleanCorrections>> {
        if self.refetch != RefetchMode::Overlay {
            return None;
        }
        let bounding = *memory.bounding()?;
        let mut cache = self.clean_corrections.lock().unwrap();
        Some(
            cache
                .entry(bounding_key(&bounding))
                .or_insert_with(|| {
                    Arc::new(
                        self.images
                            .iter()
                            .map(|img| {
                                // A fully-plausible integer grid has no
                                // corrections by construction, and
                                // `corrupt_overlay` never consults the slice
                                // for such images — skip the O(values) scan.
                                if bounding.covers_grid(&img.clean) {
                                    Vec::new()
                                } else {
                                    bounding.clean_corrections(&img.clean)
                                }
                            })
                            .collect(),
                    )
                })
                .clone(),
        )
    }

    /// One weight refetch of a pool slot: under [`RefetchMode::Overlay`],
    /// revert the previous draw (or establish the clean baseline), draw the
    /// new overlays from `memory` and patch them in — O(flips); under
    /// [`RefetchMode::ImageReload`], a full reference reload. Shared by both
    /// execution backends so the state-transition protocol cannot diverge.
    fn refetch_slot<T: RefetchTarget>(
        &self,
        slot: &mut Slot<T>,
        memory: &mut ApproximateMemory,
        corrections: Option<&CleanCorrections>,
    ) {
        match self.refetch {
            RefetchMode::Overlay => {
                let overlays = self.refetch_overlays(memory, corrections.map(Vec::as_slice));
                match std::mem::replace(&mut slot.state, SlotState::Unknown) {
                    SlotState::Overlaid(old) => slot.inner.revert_overlay(&self.images, &old),
                    SlotState::Unknown => slot.inner.load_clean(&self.images),
                }
                slot.inner.apply_overlay(&self.images, &overlays);
                slot.state = SlotState::Overlaid(overlays);
            }
            RefetchMode::ImageReload => {
                slot.inner.load_reference(&self.images, memory);
                slot.state = SlotState::Unknown;
            }
        }
    }

    /// Serves one weight refetch as overlays: one
    /// [`ApproximateMemory::corrupt_overlay`] per weight image, in image
    /// order — consuming exactly the load streams (and accumulating exactly
    /// the statistics) that [`Network::load_corrupted_weights`] would.
    fn refetch_overlays(
        &self,
        memory: &mut ApproximateMemory,
        corrections: Option<&[Vec<(u32, u32)>]>,
    ) -> Vec<CorruptionOverlay> {
        self.images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                memory.corrupt_overlay(&img.site, &img.clean, corrections.map(|c| c[i].as_slice()))
            })
            .collect()
    }

    fn evaluate_simulated(
        &self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
        pool: &mut Vec<Slot<Network>>,
        ckpt: Option<&CheckpointCtx<'_>>,
        batch: Option<usize>,
    ) -> usize {
        // Reusable pool of corrupted network instances: cloned lazily (at
        // most once per refetch slot, i.e. ≤ 16 times per session) and
        // re-written in place on every refetch — the weight refetches inside
        // each window draw sequentially from the parent memory's stream, in
        // sample order, exactly as a fully sequential evaluation would.
        // Under the overlay mode each refetch patches/reverts only the words
        // its fault draw touches (O(flips)); under the reload reference mode
        // it re-loads every parameter from the bit images.
        let corrections = self.clean_corrections(memory);
        let mut correct = 0usize;
        for (w, window) in samples.chunks(WINDOW).enumerate() {
            let slots = refetch_slots(window.len());
            while pool.len() < slots {
                pool.push(Slot::new((*self.net).clone()));
            }
            for slot in pool.iter_mut().take(slots) {
                self.refetch_slot(slot, memory, corrections.as_deref());
            }

            let base = w * WINDOW;
            let shared: &ApproximateMemory = memory;
            let pool_ref: &[Slot<Network>] = pool;
            let groups = self.batch_groups(window.len(), &pool_ref[..slots], batch);
            let outcomes = eden_par::par_map(&groups, |_, g| {
                if g.len() == 1 {
                    let i = g.start;
                    let (x, label) = &window[i];
                    // Lane key is the sample's *global* index: invariant
                    // under the window size, the thread count and the
                    // grouping.
                    let mut lane = shared.fork((base + i) as u64);
                    let net = &pool_ref[i / WEIGHT_REFETCH_PERIOD].inner;
                    let sample = (base + i) as u32;
                    // Resume from the deepest clean checkpoint: set the
                    // boundary activation, advance the lane's load cursor
                    // past the clean prefix, run only the suffix.
                    // Bit-identical to the full pass because the prefix is
                    // skipped, not approximated.
                    let resumed = ckpt.and_then(|c| c.resume(sample));
                    let (start, resume_x) = match &resumed {
                        Some((boundary, ck)) => {
                            lane.skip_clean_loads(*boundary as u64, ck.corrections);
                            (
                                *boundary,
                                Some(Tensor::from_vec(ck.data.clone(), &ck.shape)),
                            )
                        }
                        None => (0, None),
                    };
                    let input = resume_x.as_ref().unwrap_or(x);
                    let logits = self.sim_scratch.with(|scratch| {
                        self.forward_simulated(
                            net,
                            input,
                            start,
                            &mut lane,
                            scratch,
                            ckpt.map(|c| (c, sample)),
                        )
                    });
                    vec![(logits.argmax() == *label, lane.stats())]
                } else {
                    let net = &pool_ref[g.start / WEIGHT_REFETCH_PERIOD].inner;
                    self.forward_simulated_group(net, window, g.clone(), base, shared, ckpt)
                }
            });

            for (ok, stats) in outcomes.into_iter().flatten() {
                if ok {
                    correct += 1;
                }
                memory.merge_stats(stats);
            }
        }
        correct
    }

    /// One weight-stationary batched pass over a group of samples sharing a
    /// corrupted network state: every sample gets its own fault lane (forked
    /// by global index, exactly as per-sample execution forks it) and its own
    /// checkpoint resume layer, while each layer's compute runs through
    /// [`Layer::forward_batch`] — one GEMM over the whole group's activation
    /// columns. Per sample, the sequence of IFM loads, harvests and layer
    /// computations is exactly that of a solo [`SessionCore::
    /// forward_simulated`] run, so outcomes and per-lane statistics are
    /// bit-identical by construction.
    fn forward_simulated_group(
        &self,
        net: &Network,
        window: &[(Tensor, usize)],
        g: std::ops::Range<usize>,
        base: usize,
        shared: &ApproximateMemory,
        ckpt: Option<&CheckpointCtx<'_>>,
    ) -> Vec<(bool, MemoryStats)> {
        let batch = g.len();
        let mut lanes: Vec<ApproximateMemory> =
            g.clone().map(|i| shared.fork((base + i) as u64)).collect();
        let mut starts = vec![0usize; batch];
        let mut xs: Vec<Tensor> = Vec::with_capacity(batch);
        for (j, i) in g.clone().enumerate() {
            let sample = (base + i) as u32;
            match ckpt.and_then(|c| c.resume(sample)) {
                Some((boundary, ck)) => {
                    lanes[j].skip_clean_loads(boundary as u64, ck.corrections);
                    starts[j] = boundary;
                    xs.push(Tensor::from_vec(ck.data.clone(), &ck.shape));
                }
                None => xs.push(window[i].0.clone()),
            }
        }
        let min_start = starts.iter().copied().min().unwrap_or(0);
        self.sim_scratch.with(|scratch| {
            // Per-sample dequantized buffers, checked out of the scratch and
            // grown once to the group width.
            let mut bufs = std::mem::take(&mut scratch.batch);
            bufs.resize_with(batch, Vec::new);
            for (i, layer) in net.layers().iter().enumerate().skip(min_start) {
                // (sample slot, its dequantized activation) per active sample.
                let mut dq: Vec<(usize, Tensor)> = Vec::with_capacity(batch);
                for j in 0..batch {
                    if starts[j] > i {
                        continue;
                    }
                    if let Some(ctx) = ckpt {
                        if i > starts[j] {
                            let sample = (base + g.start + j) as u32;
                            ctx.harvest(sample, i, &xs[j], lanes[j].stats().corrections);
                        }
                    }
                    let q = match &mut scratch.stored {
                        Some(q) => {
                            q.requantize_from(&xs[j], self.precision);
                            q
                        }
                        None => scratch
                            .stored
                            .insert(QuantTensor::quantize(&xs[j], self.precision)),
                    };
                    lanes[j].corrupt(&self.ifm_sites[i], q);
                    let mut buf = std::mem::take(&mut bufs[j]);
                    buf.clear();
                    buf.resize(q.len(), 0.0);
                    q.dequantize_into(&mut buf);
                    dq.push((j, Tensor::from_vec(buf, q.shape())));
                }
                let uniform = dq.windows(2).all(|w| w[0].1.shape() == w[1].1.shape());
                let batched = if dq.len() > 1 && uniform {
                    let refs: Vec<&Tensor> = dq.iter().map(|(_, t)| t).collect();
                    layer.forward_batch(&refs)
                } else {
                    None
                };
                match batched {
                    Some(ys) => {
                        for ((j, t), y) in dq.into_iter().zip(ys) {
                            xs[j] = y;
                            bufs[j] = t.into_vec();
                        }
                    }
                    None => {
                        for (j, t) in dq {
                            xs[j] = layer.forward(&t);
                            bufs[j] = t.into_vec();
                        }
                    }
                }
            }
            scratch.batch = bufs;
        });
        let g0 = g.start;
        lanes
            .into_iter()
            .zip(g)
            .map(|(lane, i)| (xs[i - g0].argmax() == window[i].1, lane.stats()))
            .collect()
    }

    /// One simulated-f32 forward pass over a corrupted pool network —
    /// bit-identical to [`Network::forward_with_ifm_hook`] (and, from a
    /// checkpointed `start`, to its resume form
    /// [`Network::forward_with_ifm_hook_from`]), with the stored bits and
    /// dequantized activations living in reused scratch buffers and the IFM
    /// sites drawn from the session's precomputed list instead of being
    /// re-allocated per layer. With a checkpoint context, clean boundary
    /// activations above `start` are harvested into the store on the way
    /// through.
    fn forward_simulated(
        &self,
        corrupted: &Network,
        input: &Tensor,
        start: usize,
        lane: &mut ApproximateMemory,
        scratch: &mut SimScratch,
        ckpt: Option<(&CheckpointCtx<'_>, u32)>,
    ) -> Tensor {
        let mut x = input.clone();
        for (i, layer) in corrupted.layers().iter().enumerate().skip(start) {
            if let Some((ctx, sample)) = ckpt {
                if i > start {
                    ctx.harvest(sample, i, &x, lane.stats().corrections);
                }
            }
            let q = match &mut scratch.stored {
                Some(q) => {
                    q.requantize_from(&x, self.precision);
                    q
                }
                None => scratch
                    .stored
                    .insert(QuantTensor::quantize(&x, self.precision)),
            };
            lane.corrupt(&self.ifm_sites[i], q);
            scratch.dequantized.clear();
            scratch.dequantized.resize(q.len(), 0.0);
            q.dequantize_into(&mut scratch.dequantized);
            let dequantized = Tensor::from_vec(std::mem::take(&mut scratch.dequantized), q.shape());
            x = layer.forward(&dequantized);
            scratch.dequantized = dequantized.into_vec();
        }
        x
    }

    fn evaluate_native(
        &self,
        samples: &[(Tensor, usize)],
        memory: &mut ApproximateMemory,
        pool: &mut Vec<Slot<NativeWeights>>,
        ckpt: Option<&CheckpointCtx<'_>>,
        batch: Option<usize>,
    ) -> usize {
        // Same window/refetch structure as the simulated path (and the same
        // load-stream consumption), but the refetched state is the integer
        // parameter set instead of an f32 network copy.
        let corrections = self.clean_corrections(memory);
        let mut correct = 0usize;
        for (w, window) in samples.chunks(WINDOW).enumerate() {
            let slots = refetch_slots(window.len());
            while pool.len() < slots {
                pool.push(Slot::new(NativeWeights::prepare(&self.net)));
            }
            for slot in pool.iter_mut().take(slots) {
                self.refetch_slot(slot, memory, corrections.as_deref());
            }

            let base = w * WINDOW;
            let shared: &ApproximateMemory = memory;
            let pool_ref: &[Slot<NativeWeights>] = pool;
            let groups = self.batch_groups(window.len(), &pool_ref[..slots], batch);
            let outcomes = eden_par::par_map(&groups, |_, g| {
                if g.len() == 1 {
                    let i = g.start;
                    let (x, label) = &window[i];
                    let mut lane = shared.fork((base + i) as u64);
                    let weights = &pool_ref[i / WEIGHT_REFETCH_PERIOD].inner;
                    let sample = (base + i) as u32;
                    // Same resume protocol as the simulated path; the
                    // boundary activation is the f32 tensor crossing the
                    // layer boundary, which both backends carry identically.
                    let resumed = ckpt.and_then(|c| c.resume(sample));
                    let (start, resume_x) = match &resumed {
                        Some((boundary, ck)) => {
                            lane.skip_clean_loads(*boundary as u64, ck.corrections);
                            (
                                *boundary,
                                Some(Tensor::from_vec(ck.data.clone(), &ck.shape)),
                            )
                        }
                        None => (0, None),
                    };
                    let input = resume_x.as_ref().unwrap_or(x);
                    // Checked-out scratch: buffer contents never influence
                    // results, so reuse across samples is thread-count
                    // invariant.
                    let logits = self.scratch.with(|scratch| {
                        qexec::forward_native_observed(
                            &self.net,
                            weights,
                            input,
                            start,
                            self.precision,
                            &mut lane,
                            scratch,
                            |boundary, x, lane: &mut ApproximateMemory| {
                                if let Some(ctx) = ckpt {
                                    if boundary > start {
                                        ctx.harvest(sample, boundary, x, lane.stats().corrections);
                                    }
                                }
                            },
                        )
                    });
                    vec![(logits.argmax() == *label, lane.stats())]
                } else {
                    let weights = &pool_ref[g.start / WEIGHT_REFETCH_PERIOD].inner;
                    self.forward_native_group(weights, window, g.clone(), base, shared, ckpt)
                }
            });

            for (ok, stats) in outcomes.into_iter().flatten() {
                if ok {
                    correct += 1;
                }
                memory.merge_stats(stats);
            }
        }
        correct
    }

    /// Native-backend counterpart of [`SessionCore::forward_simulated_group`]:
    /// per-sample lanes and checkpoint resumes feed one
    /// [`qexec::forward_native_batch_observed`] call over the group's shared
    /// integer weight state, which runs each layer's compute as a single
    /// packed integer GEMM. Bit-identical to per-sample execution for the
    /// same reasons — per sample, the observe/load/compute sequence is
    /// exactly the solo executor's.
    fn forward_native_group(
        &self,
        weights: &NativeWeights,
        window: &[(Tensor, usize)],
        g: std::ops::Range<usize>,
        base: usize,
        shared: &ApproximateMemory,
        ckpt: Option<&CheckpointCtx<'_>>,
    ) -> Vec<(bool, MemoryStats)> {
        let batch = g.len();
        let mut lanes: Vec<ApproximateMemory> =
            g.clone().map(|i| shared.fork((base + i) as u64)).collect();
        let mut starts = vec![0usize; batch];
        let mut xs: Vec<Tensor> = Vec::with_capacity(batch);
        for (j, i) in g.clone().enumerate() {
            let sample = (base + i) as u32;
            match ckpt.and_then(|c| c.resume(sample)) {
                Some((boundary, ck)) => {
                    lanes[j].skip_clean_loads(boundary as u64, ck.corrections);
                    starts[j] = boundary;
                    xs.push(Tensor::from_vec(ck.data.clone(), &ck.shape));
                }
                None => xs.push(window[i].0.clone()),
            }
        }
        let g0 = g.start;
        let logits = self.scratch.with(|scratch| {
            qexec::forward_native_batch_observed(
                &self.net,
                weights,
                &xs,
                &starts,
                self.precision,
                &mut lanes,
                scratch,
                |j, boundary, x, lane: &mut ApproximateMemory| {
                    if let Some(ctx) = ckpt {
                        if boundary > starts[j] {
                            let sample = (base + g0 + j) as u32;
                            ctx.harvest(sample, boundary, x, lane.stats().corrections);
                        }
                    }
                },
            )
        });
        lanes
            .into_iter()
            .zip(g)
            .map(|(lane, i)| (logits[i - g0].argmax() == window[i].1, lane.stats()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, Dataset};

    fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);
        (net, dataset)
    }

    #[test]
    fn session_reuse_matches_one_shot_calls_bit_for_bit() {
        let (net, dataset) = trained_lenet(0);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let mut session = EvalSession::new(&net, Precision::Int8, backend);
            // A probe sequence revisiting earlier operating points, as the
            // characterization loops do.
            for ber in [1e-3, 1e-2, 1e-3, 5e-2] {
                let model = template.with_ber(ber);
                let mut session_memory = ApproximateMemory::from_model(model, 7);
                let mut oneshot_memory = ApproximateMemory::from_model(model, 7);
                let via_session = session.evaluate_with_faults(samples, &mut session_memory);
                let via_oneshot = inference::evaluate_with_faults_backend(
                    &net,
                    samples,
                    Precision::Int8,
                    &mut oneshot_memory,
                    backend,
                );
                assert_eq!(via_session.to_bits(), via_oneshot.to_bits(), "{backend}");
                assert_eq!(session_memory.stats(), oneshot_memory.stats(), "{backend}");
            }
        }
    }

    #[test]
    fn overlay_refetch_matches_image_reload_refetch() {
        // The production overlay mode against the reference reload mode:
        // same accuracies, same statistics, across backends, with bounding
        // (so the sparse correction fold is exercised) and across a probe
        // sequence that reuses the persistent pools (revert + re-apply).
        let (net, dataset) = trained_lenet(7);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        let bounding =
            crate::bounding::BoundingLogic::new(-6.0, 6.0, crate::bounding::CorrectionPolicy::Zero);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let mut overlay_session = EvalSession::new(&net, Precision::Int8, backend);
            assert_eq!(overlay_session.refetch_mode(), RefetchMode::Overlay);
            let mut reload_session = EvalSession::new(&net, Precision::Int8, backend)
                .with_refetch_mode(RefetchMode::ImageReload);
            for ber in [1e-3, 1e-2, 1e-3, 5e-2] {
                let model = template.with_ber(ber);
                let make = || ApproximateMemory::from_model(model, 7).with_bounding(bounding);
                let (mut a, mut b) = (make(), make());
                let via_overlay = overlay_session.evaluate_with_faults(samples, &mut a);
                let via_reload = reload_session.evaluate_with_faults(samples, &mut b);
                assert_eq!(
                    via_overlay.to_bits(),
                    via_reload.to_bits(),
                    "{backend} {ber}"
                );
                assert_eq!(a.stats(), b.stats(), "{backend} {ber}");
            }
        }
    }

    #[test]
    fn reliable_baseline_is_cached_per_sample_content() {
        let (net, dataset) = trained_lenet(1);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let a = session.evaluate_reliable(&dataset.test()[..16]);
        assert_eq!(session.baselines.len(), 1);
        // Same contents (even through a different slice expression) hit the
        // cache; a different set gets its own entry.
        let b = session.evaluate_reliable(&dataset.test()[0..16]);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(session.baselines.len(), 1);
        let c = session.evaluate_reliable(&dataset.test()[..8]);
        assert_eq!(session.baselines.len(), 2);
        assert_eq!(
            c.to_bits(),
            inference::evaluate_reliable(&net, &dataset.test()[..8], Precision::Int8).to_bits()
        );
    }

    #[test]
    fn session_sweep_matches_one_shot_sweep() {
        let (net, dataset) = trained_lenet(2);
        let samples = &dataset.test()[..16];
        let template = ErrorModel::uniform(0.02, 0.5, 5);
        let bers = [1e-4, 1e-3, 1e-2];
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::NativeInt);
        let via_session = session.accuracy_vs_ber(samples, &template, &bers, None, 11);
        let via_oneshot = inference::accuracy_vs_ber_backend(
            &net,
            samples,
            Precision::Int8,
            &template,
            &bers,
            None,
            11,
            InferenceBackend::NativeInt,
        );
        assert_eq!(via_session, via_oneshot);
    }

    #[test]
    fn evaluate_pair_matches_sequential_probes() {
        let (net, dataset) = trained_lenet(3);
        let samples = &dataset.test()[..16];
        let template = ErrorModel::uniform(0.02, 0.5, 2);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let make = |ber: f64| ApproximateMemory::from_model(template.with_ber(ber), 9);
        let (mut a, mut b) = (make(1e-4), make(1e-2));
        let (pair_lo, pair_hi) = session.evaluate_pair(samples, &mut a, &mut b);
        let (mut a2, mut b2) = (make(1e-4), make(1e-2));
        let seq_lo = session.evaluate_with_faults(samples, &mut a2);
        let seq_hi = session.evaluate_with_faults(samples, &mut b2);
        assert_eq!(pair_lo.to_bits(), seq_lo.to_bits());
        assert_eq!(pair_hi.to_bits(), seq_hi.to_bits());
        assert_eq!(a.stats(), a2.stats());
        assert_eq!(b.stats(), b2.stats());
    }

    #[test]
    fn injector_cache_is_keyed_by_model_and_ber() {
        let (net, _) = trained_lenet(4);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        let a = session.injector_for(&template, 1e-3);
        let _b = session.injector_for(&template, 1e-2);
        let a_again = session.injector_for(&template, 1e-3);
        assert_eq!(session.injectors.len(), 2);
        assert!((a.expected_ber() - a_again.expected_ber()).abs() < 1e-15);
        // A different template under the same BER is a distinct entry.
        let other = ErrorModel::bitline(0.02, 0.5, 0.8, 3);
        session.injector_for(&other, 1e-3);
        assert_eq!(session.injectors.len(), 3);
    }

    #[test]
    fn empty_sample_slice_returns_the_nan_sentinel() {
        let (net, _) = trained_lenet(5);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let mut memory = ApproximateMemory::reliable(0);
        assert!(session.evaluate_with_faults(&[], &mut memory).is_nan());
        assert!(session.evaluate_reliable(&[]).is_nan());
    }

    #[test]
    fn shared_session_is_sync_and_matches_the_borrowed_session_bit_for_bit() {
        // The serving layer holds `EvalSession<'static>` behind an `Arc` and
        // evaluates through `&self` from many threads at once; both the
        // ownership mode and the concurrent entry point must be invisible in
        // the results.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalSession<'static>>();

        let (net, dataset) = trained_lenet(8);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        let net = Arc::new(net);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let shared = EvalSession::new_shared(net.clone(), Precision::Int8, backend);
            let mut borrowed = EvalSession::new(&net, Precision::Int8, backend);
            for ber in [1e-3, 1e-2] {
                let model = template.with_ber(ber);
                let mut memory_a = ApproximateMemory::from_model(model, 7);
                let mut memory_b = ApproximateMemory::from_model(model, 7);
                let via_shared = shared.evaluate_concurrent(samples, &mut memory_a);
                let via_borrowed = borrowed.evaluate_with_faults(samples, &mut memory_b);
                assert_eq!(via_shared.to_bits(), via_borrowed.to_bits(), "{backend}");
                assert_eq!(memory_a.stats(), memory_b.stats(), "{backend}");
            }
        }
    }

    #[test]
    fn release_transient_state_does_not_change_results() {
        let (net, dataset) = trained_lenet(9);
        let samples = &dataset.test()[..16];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let model = template.with_ber(1e-3);
        let mut before = ApproximateMemory::from_model(model, 5);
        let a = session.evaluate_with_faults(samples, &mut before);
        session.injector_for(&template, 1e-3);
        session.release_transient_state();
        assert!(session.pools.simulated.is_empty() && session.pools.native.is_empty());
        assert!(session.baselines.is_empty() && session.injectors.is_empty());
        let mut after = ApproximateMemory::from_model(model, 5);
        let b = session.evaluate_with_faults(samples, &mut after);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(before.stats(), after.stats());
    }

    #[test]
    fn weak_map_cache_fills_once_and_is_shared_across_probes() {
        let (net, dataset) = trained_lenet(6);
        let samples = &dataset.test()[..8];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let mut memory = ApproximateMemory::from_model(template.with_ber(1e-3), 1);
        session.evaluate_with_faults(samples, &mut memory);
        let filled = session.core.weak_maps.len();
        assert!(filled > 0, "model-backed probes must populate the cache");
        // A second probe at the same operating point adds nothing; a new BER
        // adds exactly the maps of the new model.
        let mut memory2 = ApproximateMemory::from_model(template.with_ber(1e-3), 2);
        session.evaluate_with_faults(samples, &mut memory2);
        assert_eq!(session.core.weak_maps.len(), filled);
        let mut memory3 = ApproximateMemory::from_model(template.with_ber(1e-2), 2);
        session.evaluate_with_faults(samples, &mut memory3);
        assert_eq!(session.core.weak_maps.len(), 2 * filled);
    }

    /// A memory whose only error source is a model injector at the given
    /// site — every other site is provably clean, so the prefix below the
    /// site's layer is checkpoint-resumable.
    fn single_site_memory(site: &DataSite, ber: f64, seed: u64) -> ApproximateMemory {
        let mut memory = ApproximateMemory::reliable(seed);
        memory.assign_site(
            site.clone(),
            Injector::from_model(
                ErrorModel::uniform(0.02, 0.5, 3).with_ber(ber),
                Layout::default(),
            ),
        );
        memory
    }

    /// The deepest IFM site of the network — dirtying it leaves the longest
    /// clean prefix, so checkpoint resume has the most to skip.
    fn deepest_ifm(net: &Network) -> DataSite {
        net.data_sites()
            .into_iter()
            .filter(|info| info.site.kind == DataKind::Ifm)
            .max_by_key(|info| info.site.layer_index)
            .expect("network has IFM sites")
            .site
    }

    #[test]
    fn checkpointed_resume_matches_full_forward_bit_for_bit() {
        let (net, dataset) = trained_lenet(10);
        let samples = &dataset.test()[..16];
        let site = deepest_ifm(&net);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let mut on = EvalSession::new(&net, Precision::Int8, backend);
            let mut off = EvalSession::new(&net, Precision::Int8, backend).with_checkpoints(false);
            assert!(on.checkpoints_enabled());
            assert!(!off.checkpoints_enabled());
            // A probe sequence over the same samples: from the second probe
            // on, the resuming session serves every sample's clean prefix
            // from the checkpoint store while the full session re-executes
            // it — the results and the memory statistics must not tell.
            for ber in [1e-3, 1e-2, 5e-2] {
                let (mut a, mut b) = (
                    single_site_memory(&site, ber, 21),
                    single_site_memory(&site, ber, 21),
                );
                let resumed = on.evaluate_with_faults(samples, &mut a);
                let full = off.evaluate_with_faults(samples, &mut b);
                assert_eq!(resumed.to_bits(), full.to_bits(), "{backend} {ber}");
                assert_eq!(a.stats(), b.stats(), "{backend} {ber}");
            }
            let counters = on.checkpoint_counters();
            assert!(counters.hits > 0, "{backend}: later probes must resume");
            assert!(counters.misses > 0, "{backend}: the first probe is cold");
            assert!(counters.resident_bytes > 0, "{backend}");
            assert_eq!(off.checkpoint_counters(), CheckpointCounters::default());
        }
    }

    #[test]
    fn checkpointed_resume_is_identical_under_bounding() {
        // Bounding corrects clean prefix activations too, so resumed lanes
        // must replay the recorded correction counts; the checkpoint key
        // separates threshold sets.
        let (net, dataset) = trained_lenet(11);
        let samples = &dataset.test()[..16];
        let site = deepest_ifm(&net);
        let bounding = BoundingLogic::new(-6.0, 6.0, CorrectionPolicy::Zero);
        let mut on = EvalSession::new(&net, Precision::Int8, InferenceBackend::NativeInt);
        let mut off = EvalSession::new(&net, Precision::Int8, InferenceBackend::NativeInt)
            .with_checkpoints(false);
        for ber in [1e-2, 1e-2, 5e-2] {
            let make = |seed| single_site_memory(&site, ber, seed).with_bounding(bounding);
            let (mut a, mut b) = (make(4), make(4));
            let resumed = on.evaluate_with_faults(samples, &mut a);
            let full = off.evaluate_with_faults(samples, &mut b);
            assert_eq!(resumed.to_bits(), full.to_bits(), "{ber}");
            assert_eq!(a.stats(), b.stats(), "{ber}");
        }
        assert!(on.checkpoint_counters().hits > 0);
    }

    #[test]
    fn checkpoint_eviction_under_a_tiny_budget_keeps_results_identical() {
        // A budget below one boundary activation forces continual eviction:
        // the cold (miss → full forward) path must stay bit-identical, and
        // the counters must record the churn instead of hiding it.
        let (net, dataset) = trained_lenet(12);
        let samples = &dataset.test()[..16];
        let site = deepest_ifm(&net);
        let mut tiny = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
            .with_checkpoint_budget(64);
        let mut off = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
            .with_checkpoints(false);
        for ber in [1e-3, 1e-3, 1e-2] {
            let (mut a, mut b) = (
                single_site_memory(&site, ber, 13),
                single_site_memory(&site, ber, 13),
            );
            let evicting = tiny.evaluate_with_faults(samples, &mut a);
            let full = off.evaluate_with_faults(samples, &mut b);
            assert_eq!(evicting.to_bits(), full.to_bits(), "{ber}");
            assert_eq!(a.stats(), b.stats(), "{ber}");
        }
        let counters = tiny.checkpoint_counters();
        assert!(counters.evictions > 0, "a 64-byte budget must evict");
        assert!(counters.resident_bytes <= 64 * 1024);
    }

    #[test]
    fn release_transient_state_drains_checkpoints() {
        let (net, dataset) = trained_lenet(13);
        let samples = &dataset.test()[..8];
        let site = deepest_ifm(&net);
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        let mut memory = single_site_memory(&site, 1e-3, 2);
        let before = session.evaluate_with_faults(samples, &mut memory);
        assert!(session.checkpoint_counters().resident_bytes > 0);
        session.release_transient_state();
        assert_eq!(session.checkpoint_counters().resident_bytes, 0);
        // The store refills on demand and results are unaffected.
        let mut again = single_site_memory(&site, 1e-3, 2);
        let after = session.evaluate_with_faults(samples, &mut again);
        assert_eq!(before.to_bits(), after.to_bits());
        assert_eq!(memory.stats(), again.stats());
    }

    #[test]
    fn batched_execution_matches_per_sample_bit_for_bit() {
        // The default (batched) session against a batch-limit-1 session —
        // the per-sample reference execution — across backends and refetch
        // modes: same accuracies, same memory statistics.
        let (net, dataset) = trained_lenet(14);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, 3);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            for mode in [RefetchMode::Overlay, RefetchMode::ImageReload] {
                let mut batched =
                    EvalSession::new(&net, Precision::Int8, backend).with_refetch_mode(mode);
                let mut solo = EvalSession::new(&net, Precision::Int8, backend)
                    .with_refetch_mode(mode)
                    .with_batch_limit(1);
                assert_eq!(batched.batch_limit(), DEFAULT_BATCH_LIMIT);
                assert_eq!(solo.batch_limit(), 1);
                for ber in [1e-3, 1e-2] {
                    let model = template.with_ber(ber);
                    let mut a = ApproximateMemory::from_model(model, 7);
                    let mut b = ApproximateMemory::from_model(model, 7);
                    let via_batched = batched.evaluate_with_faults(samples, &mut a);
                    let via_solo = solo.evaluate_with_faults(samples, &mut b);
                    assert_eq!(
                        via_batched.to_bits(),
                        via_solo.to_bits(),
                        "{backend} {mode}"
                    );
                    assert_eq!(a.stats(), b.stats(), "{backend} {mode}");
                }
                let c = batched.batch_counters();
                assert!(c.groups > 0, "{backend} {mode}: slot-mates must batch");
                assert!(c.batched_samples > 0, "{backend} {mode}");
                let s = solo.batch_counters();
                assert_eq!(s.groups, 0, "{backend} {mode}: limit 1 never batches");
                assert_eq!(s.batched_samples, 0, "{backend} {mode}");
                assert_eq!(s.fallback_samples, 2 * samples.len() as u64);
            }
        }
    }

    #[test]
    fn equal_overlays_merge_batch_groups_across_refetch_slots() {
        // With a weak-cell flip probability of 1.0 every refetch draws the
        // same overlays, so consecutive slots hold provably equal weights
        // and the overlay-grouping rule forms groups wider than one slot —
        // up to the batch cap.
        let (net, dataset) = trained_lenet(15);
        let samples = &dataset.test()[..48]; // 3 refetch slots
        let model = ErrorModel::uniform(0.02, 1.0, 3).with_ber(1e-3);
        let session = EvalSession::new(&net, Precision::Int8, InferenceBackend::NativeInt);
        let mut memory = ApproximateMemory::from_model(model, 7);
        let accuracy = session.evaluate_concurrent(samples, &mut memory);
        let c = session.batch_counters();
        // 48 equal-weight samples under a cap of 32 split into 32 + 16.
        assert_eq!(c.groups, 2);
        assert_eq!(c.batched_samples, 48);
        assert_eq!(c.fallback_samples, 0);
        // And the cross-slot groups stay pinned to per-sample execution.
        let solo = EvalSession::new(&net, Precision::Int8, InferenceBackend::NativeInt)
            .with_batch_limit(1);
        let mut memory2 = ApproximateMemory::from_model(model, 7);
        let reference = solo.evaluate_concurrent(samples, &mut memory2);
        assert_eq!(accuracy.to_bits(), reference.to_bits());
        assert_eq!(memory.stats(), memory2.stats());
    }

    #[test]
    fn evaluate_concurrent_batched_overrides_the_session_cap() {
        let (net, dataset) = trained_lenet(16);
        let samples = &dataset.test()[..16]; // one slot: every sample groupable
        let model = ErrorModel::uniform(0.02, 0.5, 3).with_ber(1e-2);
        let session = EvalSession::new(&net, Precision::Int8, InferenceBackend::SimulatedF32);
        let mut memory = ApproximateMemory::from_model(model, 7);
        let capped = session.evaluate_concurrent_batched(samples, &mut memory, 4);
        // A cap of 4 over 16 slot-sharing samples forms exactly 4 groups.
        let c = session.batch_counters();
        assert_eq!(c.groups, 4);
        assert_eq!(c.batched_samples, 16);
        let mut memory2 = ApproximateMemory::from_model(model, 7);
        let reference = session.evaluate_concurrent_batched(samples, &mut memory2, 1);
        assert_eq!(capped.to_bits(), reference.to_bits());
        assert_eq!(memory.stats(), memory2.stats());
        assert_eq!(session.batch_counters().fallback_samples, 16);
    }

    #[test]
    fn batching_composes_with_checkpoint_resume_inside_a_group() {
        // Probe sequences resume individual samples at their own boundaries;
        // a batch group must honour each member's resume layer while the
        // suffix layers still execute batched.
        let (net, dataset) = trained_lenet(17);
        let samples = &dataset.test()[..16];
        let site = deepest_ifm(&net);
        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let mut batched = EvalSession::new(&net, Precision::Int8, backend);
            let mut solo = EvalSession::new(&net, Precision::Int8, backend).with_batch_limit(1);
            for ber in [1e-3, 1e-2, 5e-2] {
                let (mut a, mut b) = (
                    single_site_memory(&site, ber, 23),
                    single_site_memory(&site, ber, 23),
                );
                let via_batched = batched.evaluate_with_faults(samples, &mut a);
                let via_solo = solo.evaluate_with_faults(samples, &mut b);
                assert_eq!(via_batched.to_bits(), via_solo.to_bits(), "{backend} {ber}");
                assert_eq!(a.stats(), b.stats(), "{backend} {ber}");
            }
            assert!(
                batched.checkpoint_counters().hits > 0,
                "{backend}: later probes must resume inside batch groups"
            );
            assert!(batched.batch_counters().groups > 0, "{backend}");
        }
    }
}
