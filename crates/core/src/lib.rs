//! # eden-core
//!
//! The EDEN framework (Section 3): the first general framework that enables
//! energy-efficient, high-performance DNN inference on approximate DRAM
//! while strictly meeting a user-specified accuracy target.
//!
//! EDEN's three steps, all implemented here:
//!
//! 1. **Boosting DNN error tolerance** with *curricular retraining*
//!    ([`curricular`]) and *implausible-value correction* ([`bounding`]),
//!    Section 3.2.
//! 2. **DNN error-tolerance characterization**, coarse-grained and
//!    fine-grained ([`characterize`]), Section 3.3.
//! 3. **DNN→DRAM mapping**, coarse-grained (one operating point for the
//!    whole module, Table 3) and fine-grained (Algorithm 1) ([`mapping`]),
//!    Section 3.4.
//!
//! [`faults`] provides the approximate-memory fault hook that backs both
//! retraining and inference ([`inference`]), [`session`] provides the
//! reusable evaluation-session layer that the characterization, retraining
//! and mapping probe loops share, and [`pipeline`] chains the three steps
//! into the iterative loop of Figure 4.
//!
//! # Example
//!
//! ```
//! use eden_core::faults::ApproximateMemory;
//! use eden_core::inference;
//! use eden_dnn::{data::SyntheticVision, zoo, Dataset};
//! use eden_dram::ErrorModel;
//! use eden_tensor::Precision;
//!
//! let dataset = SyntheticVision::tiny(0);
//! let net = zoo::lenet(&dataset.spec(), 1);
//! let model = ErrorModel::uniform(0.001, 0.5, 7);
//! let mut memory = ApproximateMemory::from_model(model, 3);
//! let accuracy = inference::evaluate_with_faults(
//!     &net,
//!     &dataset.test()[..8],
//!     Precision::Int8,
//!     &mut memory,
//! );
//! assert!((0.0..=1.0).contains(&accuracy));
//! ```

pub mod bounding;
pub mod characterize;
pub mod curricular;
pub mod faults;
pub mod inference;
pub mod mapping;
pub mod pipeline;
pub mod session;

pub use bounding::{BoundingLogic, CorrectionPolicy};
pub use characterize::{CoarseCharacterization, FineCharacterization};
pub use curricular::{CurricularConfig, CurricularTrainer};
pub use faults::{ApproximateMemory, PlacedSpan, SpanComposition, WeakMapCache};
pub use mapping::{CoarseMapping, FineMapping, PlacementPlan};
pub use pipeline::{EdenConfig, EdenOutcome, EdenPipeline};
pub use session::EvalSession;
