//! Curricular retraining (Section 3.2).
//!
//! Retraining a DNN with the error characteristics of the target approximate
//! DRAM boosts its error tolerance by 5–10×. Injecting the full target error
//! rate from the first epoch occasionally diverges ("accuracy collapse"), so
//! EDEN ramps the injected BER from zero to the target in steps — every two
//! epochs in the paper. Errors are injected only in the forward pass (the
//! forward pass runs on approximate DRAM, the backward pass on reliable
//! DRAM), and implausible values are corrected on every load.

use crate::bounding::{BoundingLogic, CorrectionPolicy};
use crate::faults::ApproximateMemory;
use crate::inference::InferenceBackend;
use crate::session::EvalSession;
use eden_dnn::data::Dataset;
use eden_dnn::loss;
use eden_dnn::metrics;
use eden_dnn::optimizer::Sgd;
use eden_dnn::Network;
use eden_dram::ErrorModel;
use eden_tensor::Precision;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of curricular retraining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurricularConfig {
    /// Total retraining epochs (10–15 in the paper).
    pub epochs: usize,
    /// Epochs between error-rate increases (2 in the paper).
    pub step_epochs: usize,
    /// Target bit error rate reached at the end of the ramp.
    pub target_ber: f64,
    /// Whether to ramp the error rate (curricular) or inject the full target
    /// rate from the first epoch (the non-curricular ablation of Figure 10).
    pub curricular: bool,
    /// Numeric precision of the stored data during retraining.
    pub precision: Precision,
    /// Execution backend for the report's accuracy evaluations (training
    /// itself always runs the simulated-f32 forward: backpropagation needs
    /// the float graph). Callers running NativeInt everywhere else should
    /// set it here too, so `final_approximate_accuracy` measures the engine
    /// that will serve the deployed DNN.
    pub backend: InferenceBackend,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate (lower than baseline training: this is fine-tuning).
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffling / injection seed.
    pub seed: u64,
}

impl Default for CurricularConfig {
    fn default() -> Self {
        Self {
            epochs: 6,
            step_epochs: 2,
            target_ber: 1e-2,
            curricular: true,
            precision: Precision::Int8,
            backend: InferenceBackend::SimulatedF32,
            batch_size: 16,
            learning_rate: 0.01,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Result of a retraining run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainReport {
    /// `(injected BER, mean loss)` per epoch.
    pub epochs: Vec<(f64, f32)>,
    /// Accuracy on reliable memory after retraining.
    pub final_reliable_accuracy: f32,
    /// Accuracy on approximate memory at the target BER after retraining.
    pub final_approximate_accuracy: f32,
}

/// Retrains ("boosts") a DNN for a target approximate DRAM error model.
#[derive(Debug, Clone)]
pub struct CurricularTrainer {
    config: CurricularConfig,
}

impl CurricularTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: CurricularConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CurricularConfig {
        &self.config
    }

    /// Injected BER for a given epoch under the configured schedule.
    pub fn ber_for_epoch(&self, epoch: usize) -> f64 {
        if !self.config.curricular {
            return self.config.target_ber;
        }
        let steps_total = (self.config.epochs.div_ceil(self.config.step_epochs)).max(1);
        let step = (epoch / self.config.step_epochs).min(steps_total - 1);
        // Ramp linearly from target/steps to target.
        self.config.target_ber * (step + 1) as f64 / steps_total as f64
    }

    /// Retrains `net` in place against the error characteristics captured by
    /// `error_model`, returning a report.
    pub fn retrain(
        &self,
        net: &mut Network,
        dataset: &dyn Dataset,
        error_model: &ErrorModel,
    ) -> RetrainReport {
        let cfg = &self.config;
        let bounding = BoundingLogic::calibrated(
            net,
            &dataset.train()[..16.min(dataset.train().len())],
            1.5,
            CorrectionPolicy::Zero,
        );
        let mut optimizer = Sgd::new(cfg.learning_rate, cfg.momentum, 1e-4);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut epochs = Vec::with_capacity(cfg.epochs);

        // One persistent corrupted copy serves every batch of the run: each
        // batch resets its parameters in place from the master network's
        // current bit images and patches the batch's sparse corruption
        // overlay on top, instead of deep-cloning the network object graph
        // per batch (bit-identical — see `train_epoch`).
        let mut corrupted = net.clone();
        for epoch in 0..cfg.epochs {
            let ber = self.ber_for_epoch(epoch);
            let epoch_model = error_model.with_ber(ber);
            let mut memory = ApproximateMemory::from_model(epoch_model, cfg.seed ^ epoch as u64)
                .with_bounding(bounding);
            let loss = self.train_epoch(
                net,
                &mut corrupted,
                dataset,
                &mut optimizer,
                &mut memory,
                &mut rng,
            );
            epochs.push((ber, loss));
        }

        let target_model = error_model.with_ber(cfg.target_ber);
        let mut eval_memory =
            ApproximateMemory::from_model(target_model, cfg.seed ^ 0xEEEE).with_bounding(bounding);
        let mut session = EvalSession::new(net, cfg.precision, cfg.backend);
        RetrainReport {
            epochs,
            final_reliable_accuracy: metrics::accuracy(net, dataset.test()),
            final_approximate_accuracy: session
                .evaluate_with_faults(dataset.test(), &mut eval_memory),
        }
    }

    /// One epoch of retraining: the forward pass runs on approximate DRAM
    /// (weights and IFMs corrupted and bound-corrected), the backward pass
    /// and weight update run on reliable DRAM.
    ///
    /// `corrupted` is the run's persistent approximate-DRAM copy of `net`:
    /// per batch, the master's parameters are quantized to fresh bit images
    /// (they must be recaptured every batch because the optimizer just
    /// updated the master weights), loaded clean, and patched with the
    /// batch's sparse fault draw
    /// ([`ApproximateMemory::corrupt_overlay`] / [`Network::apply_overlay`]).
    /// This consumes the same load streams and produces the same parameter
    /// values as corrupting a fresh clone — or a full
    /// [`Network::load_corrupted_weights`] image reload — would; the
    /// clone-based reference implementation in the test suite pins this bit
    /// for bit.
    #[allow(clippy::too_many_arguments)]
    fn train_epoch(
        &self,
        net: &mut Network,
        corrupted: &mut Network,
        dataset: &dyn Dataset,
        optimizer: &mut Sgd,
        memory: &mut ApproximateMemory,
        rng: &mut StdRng,
    ) -> f32 {
        let cfg = &self.config;
        let mut order: Vec<usize> = (0..dataset.train().len()).collect();
        order.shuffle(rng);
        let mut total_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            // Weights are fetched from approximate DRAM once per batch: the
            // corrupted copy is reset to the batch's clean images and the
            // draw's overlay (flips + bounding corrections) patched on top.
            let images = net.weight_images(cfg.precision);
            let overlays: Vec<_> = images
                .iter()
                .map(|img| memory.corrupt_overlay(&img.site, &img.clean, None))
                .collect();
            corrupted.load_clean_weights(&images);
            corrupted.apply_overlay(&images, &overlays);
            corrupted.zero_grads();
            let mut batch_loss = 0.0;
            for &i in chunk {
                let (x, label) = &dataset.train()[i];
                let logits = corrupted.forward_train_with_ifm_hook(x, cfg.precision, memory);
                let (l, d_logits) = loss::cross_entropy(&logits, *label);
                batch_loss += l;
                corrupted.backward(&d_logits.scale(1.0 / chunk.len() as f32));
            }
            // Transfer gradients to the clean master copy and update it on
            // reliable memory.
            let grads = corrupted.collect_grads();
            net.set_grads(&grads);
            optimizer.step(net);
            net.zero_grads();
            total_loss += batch_loss / chunk.len() as f32;
            batches += 1;
        }
        total_loss / batches.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, Dataset};

    fn baseline(seed: u64) -> (Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);
        (net, dataset)
    }

    #[test]
    fn schedule_ramps_to_target() {
        let trainer = CurricularTrainer::new(CurricularConfig {
            epochs: 6,
            step_epochs: 2,
            target_ber: 0.03,
            ..CurricularConfig::default()
        });
        assert!(trainer.ber_for_epoch(0) < 0.03);
        assert!(trainer.ber_for_epoch(0) > 0.0);
        assert!(trainer.ber_for_epoch(2) > trainer.ber_for_epoch(0));
        assert!((trainer.ber_for_epoch(5) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn non_curricular_schedule_is_flat() {
        let trainer = CurricularTrainer::new(CurricularConfig {
            curricular: false,
            target_ber: 0.02,
            ..CurricularConfig::default()
        });
        for e in 0..6 {
            assert_eq!(trainer.ber_for_epoch(e), 0.02);
        }
    }

    #[test]
    fn retraining_boosts_error_tolerance() {
        let (net, dataset) = baseline(0);
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let target_ber = 6e-3;
        let samples = &dataset.test()[..48];

        // Single-seed accuracy under injection is noisy (one unlucky flip set
        // can cost several samples out of 48), so compare means over a few
        // injection seeds.
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let mean_acc = |candidate: &Network| {
            let seeds = [9u64, 10, 11, 12];
            seeds
                .iter()
                .map(|&s| {
                    let mut memory =
                        ApproximateMemory::from_model(template.with_ber(target_ber), s)
                            .with_bounding(bounding);
                    crate::inference::evaluate_with_faults(
                        candidate,
                        samples,
                        Precision::Int8,
                        &mut memory,
                    )
                })
                .sum::<f32>()
                / seeds.len() as f32
        };
        let baseline_acc = mean_acc(&net);

        // Boost and re-evaluate.
        let mut boosted = net.clone();
        let trainer = CurricularTrainer::new(CurricularConfig {
            epochs: 4,
            step_epochs: 1,
            target_ber,
            seed: 5,
            ..CurricularConfig::default()
        });
        let report = trainer.retrain(&mut boosted, &dataset, &template);
        let boosted_acc = mean_acc(&boosted);

        assert_eq!(report.epochs.len(), 4);
        assert!(
            boosted_acc >= baseline_acc - 0.05,
            "boosted accuracy {boosted_acc} should not be below baseline-under-errors {baseline_acc}"
        );
        // The boosted DNN must still work on reliable memory.
        let reliable = eden_dnn::metrics::accuracy(&boosted, dataset.test());
        let chance = 1.0 / dataset.spec().num_classes as f32;
        assert!(reliable > chance + 0.15);
    }

    #[test]
    fn persistent_corrupted_copy_matches_clone_based_epochs() {
        // Reference implementation of the pre-session algorithm: a fresh
        // `net.clone()` corrupted per batch. The production path re-loads a
        // persistent copy from per-batch bit images and must match it bit
        // for bit — same losses, same final weights.
        fn retrain_clone_based(
            trainer: &CurricularTrainer,
            net: &mut Network,
            dataset: &dyn Dataset,
            error_model: &ErrorModel,
        ) -> Vec<(f64, f32)> {
            let cfg = trainer.config();
            let bounding = BoundingLogic::calibrated(
                net,
                &dataset.train()[..16.min(dataset.train().len())],
                1.5,
                CorrectionPolicy::Zero,
            );
            let mut optimizer = Sgd::new(cfg.learning_rate, cfg.momentum, 1e-4);
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut epochs = Vec::new();
            for epoch in 0..cfg.epochs {
                let ber = trainer.ber_for_epoch(epoch);
                let mut memory = ApproximateMemory::from_model(
                    error_model.with_ber(ber),
                    cfg.seed ^ epoch as u64,
                )
                .with_bounding(bounding);
                let mut order: Vec<usize> = (0..dataset.train().len()).collect();
                order.shuffle(&mut rng);
                let mut total_loss = 0.0;
                let mut batches = 0usize;
                for chunk in order.chunks(cfg.batch_size) {
                    let mut corrupted = net.clone();
                    corrupted.corrupt_weights(cfg.precision, &mut memory);
                    corrupted.zero_grads();
                    let mut batch_loss = 0.0;
                    for &i in chunk {
                        let (x, label) = &dataset.train()[i];
                        let logits =
                            corrupted.forward_train_with_ifm_hook(x, cfg.precision, &mut memory);
                        let (l, d_logits) = loss::cross_entropy(&logits, *label);
                        batch_loss += l;
                        corrupted.backward(&d_logits.scale(1.0 / chunk.len() as f32));
                    }
                    let grads = corrupted.collect_grads();
                    net.set_grads(&grads);
                    optimizer.step(net);
                    net.zero_grads();
                    total_loss += batch_loss / chunk.len() as f32;
                    batches += 1;
                }
                epochs.push((ber, total_loss / batches.max(1) as f32));
            }
            epochs
        }

        let (net, dataset) = baseline(2);
        let template = ErrorModel::uniform(0.01, 0.5, 4);
        let trainer = CurricularTrainer::new(CurricularConfig {
            epochs: 2,
            target_ber: 5e-3,
            seed: 3,
            ..CurricularConfig::default()
        });

        let mut production = net.clone();
        let report = trainer.retrain(&mut production, &dataset, &template);
        let mut reference = net.clone();
        let epochs = retrain_clone_based(&trainer, &mut reference, &dataset, &template);

        assert_eq!(report.epochs, epochs, "per-epoch losses must be identical");
        let x = &dataset.test()[0].0;
        assert_eq!(
            production.forward(x),
            reference.forward(x),
            "final weights must be bit-identical"
        );
    }

    #[test]
    fn retraining_is_deterministic() {
        let (net, dataset) = baseline(1);
        let template = ErrorModel::uniform(0.01, 0.5, 2);
        let cfg = CurricularConfig {
            epochs: 2,
            ..CurricularConfig::default()
        };
        let mut a = net.clone();
        let mut b = net.clone();
        let ra = CurricularTrainer::new(cfg).retrain(&mut a, &dataset, &template);
        let rb = CurricularTrainer::new(cfg).retrain(&mut b, &dataset, &template);
        assert_eq!(ra, rb);
    }
}
