//! The end-to-end EDEN pipeline (Figure 4).
//!
//! Starting from a baseline DNN trained on reliable hardware and a target
//! approximate DRAM device, the pipeline (1) characterizes the device and
//! fits/selects an error model, (2) boosts the DNN with curricular
//! retraining, (3) characterizes the boosted DNN's error tolerance, and (4)
//! maps the DNN to the device's operating parameters — iterating the
//! boost/characterize/map cycle until the tolerable BER stops improving.

use crate::bounding::{BoundingLogic, CorrectionPolicy};
use crate::characterize::{coarse_characterize_session, CoarseCharacterization, CoarseConfig};
use crate::curricular::{CurricularConfig, CurricularTrainer};
use crate::inference::InferenceBackend;
use crate::mapping::{coarse_map, CoarseMapping};
use crate::session::EvalSession;
use eden_dnn::{Dataset, Network};
use eden_dram::characterize::{characterize_bank, CharacterizeConfig};
use eden_dram::fit::select_model;
use eden_dram::{ApproxDramDevice, ErrorModel, OperatingPoint};
use eden_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Configuration of the full EDEN pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdenConfig {
    /// Maximum accuracy drop the user tolerates (1% in the paper's headline
    /// results).
    pub accuracy_drop: f32,
    /// Numeric precision of the deployed DNN.
    pub precision: Precision,
    /// Execution backend for every characterization and report evaluation
    /// (curricular retraining always *trains* in f32 — backpropagation needs
    /// the float graph — but its accuracy reports honor this backend).
    pub backend: InferenceBackend,
    /// Operating point at which the target device is characterized for
    /// error-model fitting.
    pub profiling_point: OperatingPoint,
    /// Curricular retraining settings (the target BER is overwritten by the
    /// pipeline's iterative search).
    pub retraining: CurricularConfig,
    /// Coarse characterization settings (the accuracy drop is overwritten by
    /// `accuracy_drop`).
    pub characterization: CoarseConfig,
    /// Device characterization settings.
    pub dram_characterization: CharacterizeConfig,
    /// Boost → characterize → map iterations (the paper iterates until the
    /// tolerable BER stops improving; two rounds capture most of the gain).
    pub iterations: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for EdenConfig {
    fn default() -> Self {
        Self {
            accuracy_drop: 0.01,
            precision: Precision::Int8,
            backend: InferenceBackend::default(),
            profiling_point: OperatingPoint::with_vdd_reduction(0.30),
            retraining: CurricularConfig::default(),
            characterization: CoarseConfig::default(),
            dram_characterization: CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 1024,
                reads_per_row: 3,
                seed: 0,
            },
            iterations: 2,
            seed: 0,
        }
    }
}

/// The outcome of running EDEN for one DNN on one device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EdenOutcome {
    /// Error model selected for the target device.
    pub error_model: ErrorModel,
    /// Accuracy of the baseline DNN on reliable memory.
    pub baseline_accuracy: f32,
    /// Maximum BER tolerated by the baseline (un-boosted) DNN.
    pub baseline_tolerable_ber: f64,
    /// Coarse characterization of the boosted DNN.
    pub boosted: CoarseCharacterization,
    /// Final DNN→DRAM coarse mapping (ΔVDD / ΔtRCD).
    pub mapping: CoarseMapping,
    /// Tolerable-BER improvement factor from boosting.
    pub boost_factor: f64,
}

/// The EDEN pipeline.
#[derive(Debug, Clone)]
pub struct EdenPipeline {
    config: EdenConfig,
}

impl EdenPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: EdenConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EdenConfig {
        &self.config
    }

    /// Runs EDEN: characterizes `device`, boosts `net` in place, and returns
    /// the characterization and mapping results.
    pub fn run(
        &self,
        net: &mut Network,
        dataset: &dyn Dataset,
        device: &ApproxDramDevice,
    ) -> EdenOutcome {
        let cfg = &self.config;

        // Step 0: characterize the device and select the best-fitting error
        // model (Section 4). Device profiling and bounding-threshold
        // calibration are independent, so they run concurrently; every
        // evaluation below additionally fans its sample batch out over the
        // `eden-par` pool (see `inference::evaluate_with_faults`), and all of
        // it is bit-identical for any thread count.
        let (error_model, bounding) = eden_par::join(
            || {
                let observations =
                    characterize_bank(device, 0, &cfg.profiling_point, &cfg.dram_characterization);
                select_model(&observations, cfg.seed).model
            },
            || {
                BoundingLogic::calibrated(
                    net,
                    &dataset.train()[..16.min(dataset.train().len())],
                    1.5,
                    CorrectionPolicy::Zero,
                )
            },
        );
        let coarse_cfg = CoarseConfig {
            accuracy_drop: cfg.accuracy_drop,
            seed: cfg.seed,
            backend: cfg.backend,
            ..cfg.characterization
        };
        // Each characterization holds its own evaluation session: the probes
        // of one binary search share weight images, corrupted-weight pools
        // and weak-cell maps, while retraining between characterizations
        // mutates the network and therefore invalidates any longer-lived
        // session.
        let baseline = {
            let mut session = EvalSession::new(net, cfg.precision, cfg.backend);
            coarse_characterize_session(
                &mut session,
                dataset,
                &error_model,
                Some(bounding),
                &coarse_cfg,
            )
        };

        // Iterate boost → characterize until the tolerable BER stops
        // improving (Section 3.3).
        let mut best = baseline.clone();
        let mut target_ber = (baseline.max_tolerable_ber * 4.0).clamp(1e-4, 0.1);
        for iteration in 0..cfg.iterations.max(1) {
            let retrain_cfg = CurricularConfig {
                target_ber,
                precision: cfg.precision,
                backend: cfg.backend,
                seed: cfg.seed ^ (iteration as u64 + 1),
                ..cfg.retraining
            };
            CurricularTrainer::new(retrain_cfg).retrain(net, dataset, &error_model);
            let bounding = BoundingLogic::calibrated(
                net,
                &dataset.train()[..16.min(dataset.train().len())],
                1.5,
                CorrectionPolicy::Zero,
            );
            let mut session = EvalSession::new(net, cfg.precision, cfg.backend);
            let characterized = coarse_characterize_session(
                &mut session,
                dataset,
                &error_model,
                Some(bounding),
                &coarse_cfg,
            );
            if characterized.max_tolerable_ber <= best.max_tolerable_ber {
                break;
            }
            target_ber = (characterized.max_tolerable_ber * 2.0).min(0.1);
            best = characterized;
        }

        let mapping = coarse_map(best.max_tolerable_ber, device.profile());
        EdenOutcome {
            error_model,
            baseline_accuracy: baseline.baseline_accuracy,
            baseline_tolerable_ber: baseline.max_tolerable_ber,
            boost_factor: if baseline.max_tolerable_ber > 0.0 {
                best.max_tolerable_ber / baseline.max_tolerable_ber
            } else {
                f64::INFINITY
            },
            boosted: best,
            mapping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::zoo;
    use eden_dram::Vendor;

    fn quick_config() -> EdenConfig {
        EdenConfig {
            retraining: CurricularConfig {
                epochs: 2,
                step_epochs: 1,
                ..CurricularConfig::default()
            },
            characterization: CoarseConfig {
                eval_samples: 24,
                iterations: 4,
                ..CoarseConfig::default()
            },
            dram_characterization: CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 256,
                reads_per_row: 2,
                seed: 0,
            },
            iterations: 1,
            accuracy_drop: 0.03,
            ..EdenConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_a_usable_outcome() {
        let dataset = SyntheticVision::tiny(0);
        let mut net = zoo::lenet(&dataset.spec(), 1);
        Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);

        let device = ApproxDramDevice::new(Vendor::A, 5);
        let outcome = EdenPipeline::new(quick_config()).run(&mut net, &dataset, &device);

        assert!(outcome.baseline_accuracy > 0.3);
        assert!(outcome.boosted.max_tolerable_ber >= outcome.baseline_tolerable_ber);
        assert!(outcome.boost_factor >= 1.0);
        // The mapping must correspond to the boosted tolerance.
        assert!(outcome.mapping.max_tolerable_ber == outcome.boosted.max_tolerable_ber);
        assert!(outcome.mapping.vdd_reduction >= 0.0);
        // The error model was fitted to a device with real errors at the
        // profiling point.
        assert!(outcome.error_model.expected_ber() > 0.0);
    }
}
