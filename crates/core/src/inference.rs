//! DNN inference on approximate DRAM (Section 3.5).
//!
//! Weights reside permanently in approximate DRAM, so they are corrupted once
//! per inference pass (the bit flips a real device would produce on the loads
//! of that pass); IFMs are corrupted every time they move between layers. The
//! only modification to the inference algorithm itself is the
//! implausible-value correction carried by [`ApproximateMemory`].
//!
//! # One-shot wrappers over the session layer
//!
//! Every function here is a thin wrapper that constructs a throwaway
//! [`EvalSession`] and delegates — the session layer
//! ([`crate::session`]) owns the actual evaluation engine. Call these for a
//! single evaluation; for probe loops (characterization sweeps, tolerance
//! curves, retraining), construct one [`EvalSession`] and reuse it, which
//! amortizes the weight bit images, corrupted-weight pools and weak-cell
//! maps that the one-shot wrappers rebuild per call. Results are
//! bit-for-bit identical either way.
//!
//! # Parallel batch execution
//!
//! [`evaluate_with_faults`] runs samples batch-parallel on the current
//! `eden-par` pool, and [`accuracy_vs_ber`] additionally fans the independent
//! BER operating points out over it — this is what makes the paper's
//! Figure 5/7/8 sweeps tractable. Results are bit-identical for any thread
//! count: each sample's IFM corruption comes from an [`ApproximateMemory`]
//! fork keyed by the sample's *global index*, each BER point builds its own
//! memory from the caller's seed, and per-sample correctness flags land in
//! index-ordered slots. See the README's threading-model section.

use crate::faults::ApproximateMemory;
use crate::session::EvalSession;
use eden_dnn::{FaultHook, Network};
use eden_tensor::{Precision, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How the DNN executes on top of the corrupted stored bits.
///
/// Both backends model the *same* approximate DRAM: weights and IFMs are
/// quantized to the stored representation and corrupted at the same
/// [`eden_dnn::DataSite`]s in the same load order. They differ only in the
/// arithmetic that consumes the corrupted bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InferenceBackend {
    /// Simulated quantization (the seed behavior, bit-for-bit): every
    /// corrupted tensor is dequantized back to f32 and the float layers run
    /// on the dequantized values.
    #[default]
    SimulatedF32,
    /// Native integer execution: dense/conv layers consume the sign-extended
    /// quantized integers directly via exact i32/i64-accumulating GEMM
    /// kernels (see [`eden_dnn::qexec`]), skipping the f32 round-trip. Falls
    /// back to the simulated path for FP32, which has no integer
    /// representation.
    NativeInt,
}

impl fmt::Display for InferenceBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceBackend::SimulatedF32 => f.write_str("simulated-f32"),
            InferenceBackend::NativeInt => f.write_str("native-int"),
        }
    }
}

impl FromStr for InferenceBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "simulated" | "simulated-f32" | "f32" => Ok(InferenceBackend::SimulatedF32),
            "native" | "native-int" | "int" => Ok(InferenceBackend::NativeInt),
            other => Err(format!(
                "unknown inference backend {other:?} (expected \"simulated\" or \"native\")"
            )),
        }
    }
}

/// Returns a copy of `net` whose weights have been loaded through
/// approximate memory (quantized to `precision`, corrupted, corrected,
/// dequantized).
///
/// This is the one-shot API; the batch evaluator amortizes the clone and the
/// quantization across refetches via [`Network::weight_images`].
pub fn corrupted_network(
    net: &Network,
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> Network {
    let mut copy = net.clone();
    copy.corrupt_weights(precision, memory);
    copy
}

/// Runs one forward pass with both weights and IFMs served from approximate
/// memory, returning the output logits.
pub fn forward_with_faults(
    net: &Network,
    input: &Tensor,
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> Tensor {
    forward_with_faults_backend(
        net,
        input,
        precision,
        memory,
        InferenceBackend::SimulatedF32,
    )
}

/// [`forward_with_faults`] on an explicit execution backend.
pub fn forward_with_faults_backend(
    net: &Network,
    input: &Tensor,
    precision: Precision,
    memory: &mut ApproximateMemory,
    backend: InferenceBackend,
) -> Tensor {
    EvalSession::new(net, precision, backend).forward_with_faults(input, memory)
}

/// FP32 has no quantized integer representation, so the native backend
/// executes it on the simulated path.
pub(crate) fn effective_backend(
    backend: InferenceBackend,
    precision: Precision,
) -> InferenceBackend {
    if precision.is_integer() {
        backend
    } else {
        InferenceBackend::SimulatedF32
    }
}

/// Classification accuracy over `samples` when the network runs on
/// approximate memory. Weights are re-loaded (and re-corrupted) once per
/// sample batch of 16 to model periodic re-fetching from DRAM.
///
/// Samples run batch-parallel on the current `eden-par` pool. The weight
/// refetches consume `memory`'s own load streams in sequence (exactly as a
/// sequential evaluation would), while each sample's IFM loads come from
/// `memory.fork(sample index)` — so the returned accuracy and the
/// accumulated [`ApproximateMemory::stats`] are bit-identical for any thread
/// count.
///
/// An **empty** sample slice has no defined accuracy: the function returns
/// [`f32::NAN`] as an explicit sentinel (distinguishable from a genuinely
/// collapsed model's `0.0`); sweep consumers should treat NaN as "nothing
/// evaluated", not as an accuracy.
pub fn evaluate_with_faults(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> f32 {
    evaluate_with_faults_backend(
        net,
        samples,
        precision,
        memory,
        InferenceBackend::SimulatedF32,
    )
}

/// [`evaluate_with_faults`] on an explicit execution backend.
///
/// With [`InferenceBackend::SimulatedF32`] this is bit-for-bit the seed
/// behavior. With [`InferenceBackend::NativeInt`] the same corrupted stored
/// bits feed the exact integer kernels instead of being dequantized, which
/// is substantially faster for the integer precisions and — integer
/// accumulation being associative — equally thread-count invariant.
///
/// Both backends serve weight refetches as sparse corruption overlays over
/// the cached clean bit images ([`Network::weight_images`],
/// [`crate::session::RefetchMode`]): the persistent corrupted copies are
/// patched with only the words each fault draw touches, so the per-refetch
/// cost is O(flips) rather than proportional to the network size. A probe
/// loop should hold an [`EvalSession`] instead of calling this repeatedly
/// (see the [module docs](self)).
pub fn evaluate_with_faults_backend(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    memory: &mut ApproximateMemory,
    backend: InferenceBackend,
) -> f32 {
    EvalSession::new(net, precision, backend).evaluate_with_faults(samples, memory)
}

/// Accuracy of the same network on reliable memory (the baseline the
/// user-specified accuracy target refers to). Returns the [`f32::NAN`]
/// sentinel for an empty sample slice, like [`evaluate_with_faults`].
pub fn evaluate_reliable(net: &Network, samples: &[(Tensor, usize)], precision: Precision) -> f32 {
    evaluate_reliable_backend(net, samples, precision, InferenceBackend::SimulatedF32)
}

/// [`evaluate_reliable`] on an explicit execution backend.
pub fn evaluate_reliable_backend(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    backend: InferenceBackend,
) -> f32 {
    EvalSession::new(net, precision, backend).evaluate_reliable(samples)
}

/// Evaluates accuracy at a sequence of bit error rates using a template
/// error model (the BER sweep that produces the paper's error-tolerance
/// curves, Figure 8).
///
/// The BER points are mutually independent — each builds its own
/// [`ApproximateMemory`] from `seed` — so they fan out over the `eden-par`
/// pool, nesting with the batch parallelism inside [`evaluate_with_faults`].
///
/// An empty `samples` slice yields [`f32::NAN`] at every point (the
/// [`evaluate_with_faults`] sentinel) rather than a fake `0.0` curve.
pub fn accuracy_vs_ber(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    template: &eden_dram::ErrorModel,
    bers: &[f64],
    bounding: Option<crate::bounding::BoundingLogic>,
    seed: u64,
) -> Vec<(f64, f32)> {
    accuracy_vs_ber_backend(
        net,
        samples,
        precision,
        template,
        bers,
        bounding,
        seed,
        InferenceBackend::SimulatedF32,
    )
}

/// [`accuracy_vs_ber`] on an explicit execution backend.
#[allow(clippy::too_many_arguments)]
pub fn accuracy_vs_ber_backend(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    template: &eden_dram::ErrorModel,
    bers: &[f64],
    bounding: Option<crate::bounding::BoundingLogic>,
    seed: u64,
    backend: InferenceBackend,
) -> Vec<(f64, f32)> {
    EvalSession::new(net, precision, backend)
        .accuracy_vs_ber(samples, template, bers, bounding, seed)
}

/// Convenience wrapper: a [`FaultHook`] that applies no corruption, for
/// code paths that need a hook object for reliable memory.
pub fn reliable_hook() -> impl FaultHook {
    eden_dnn::NoFaults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::{BoundingLogic, CorrectionPolicy};
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, Dataset};
    use eden_dram::ErrorModel;

    fn trained_lenet(seed: u64) -> (eden_dnn::Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        });
        trainer.train(&mut net, &dataset);
        (net, dataset)
    }

    #[test]
    fn reliable_evaluation_matches_plain_accuracy() {
        let (net, dataset) = trained_lenet(0);
        let plain = eden_dnn::metrics::accuracy(&net, dataset.test());
        let via_memory = evaluate_reliable(&net, dataset.test(), Precision::Fp32);
        assert!((plain - via_memory).abs() < 1e-6);
    }

    #[test]
    fn low_ber_preserves_accuracy_high_ber_destroys_it() {
        let (net, dataset) = trained_lenet(1);
        let samples = &dataset.test()[..32];
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let curve = accuracy_vs_ber(
            &net,
            samples,
            Precision::Int8,
            &template,
            &[1e-5, 0.4],
            Some(bounding),
            5,
        );
        let baseline = evaluate_reliable(&net, samples, Precision::Int8);
        let chance = 1.0 / dataset.spec().num_classes as f32;
        assert!(
            curve[0].1 >= baseline - 0.1,
            "tiny BER should not hurt accuracy"
        );
        assert!(
            curve[1].1 <= baseline - 0.15 || curve[1].1 <= chance + 0.2,
            "40% BER should destroy accuracy (got {} vs baseline {baseline})",
            curve[1].1
        );
    }

    #[test]
    fn bounding_protects_fp32_from_accuracy_collapse() {
        // The paper's key observation (Section 3.2): without correction, a
        // modest BER collapses FP32 accuracy because of exponent-bit flips;
        // with zeroing correction the DNN tolerates orders of magnitude more.
        let (net, dataset) = trained_lenet(2);
        let samples = &dataset.test()[..32];
        let template = ErrorModel::uniform(0.01, 0.5, 7);
        let model = template.with_ber(1e-3);
        let baseline = evaluate_reliable(&net, samples, Precision::Fp32);

        let mut unprotected = ApproximateMemory::from_model(model, 1);
        let without = evaluate_with_faults(&net, samples, Precision::Fp32, &mut unprotected);

        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let mut protected = ApproximateMemory::from_model(model, 1).with_bounding(bounding);
        let with = evaluate_with_faults(&net, samples, Precision::Fp32, &mut protected);

        assert!(
            with >= without,
            "bounding ({with}) should never hurt vs unprotected ({without})"
        );
        assert!(
            with >= baseline - 0.25,
            "with bounding, 1e-3 BER should retain most accuracy ({with} vs {baseline})"
        );
    }

    #[test]
    fn empty_sample_slice_returns_the_nan_sentinel() {
        let (net, _) = trained_lenet(4);
        let mut memory = ApproximateMemory::reliable(0);
        let acc = evaluate_with_faults(&net, &[], Precision::Int8, &mut memory);
        assert!(
            acc.is_nan(),
            "empty slice must be distinguishable, got {acc}"
        );
        assert!(evaluate_reliable(&net, &[], Precision::Int8).is_nan());
        // The BER sweep propagates the sentinel per point instead of
        // reporting a fake collapsed-accuracy curve.
        let template = ErrorModel::uniform(0.01, 0.5, 1);
        let curve = accuracy_vs_ber(
            &net,
            &[],
            Precision::Int8,
            &template,
            &[1e-4, 1e-2],
            None,
            3,
        );
        assert_eq!(curve.len(), 2);
        assert!(curve.iter().all(|(_, acc)| acc.is_nan()));
    }

    #[test]
    fn native_backend_matches_simulated_accuracy_on_reliable_memory() {
        let (net, dataset) = trained_lenet(5);
        let samples = &dataset.test()[..32];
        for precision in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let sim =
                evaluate_reliable_backend(&net, samples, precision, InferenceBackend::SimulatedF32);
            let native =
                evaluate_reliable_backend(&net, samples, precision, InferenceBackend::NativeInt);
            // Integer accumulation is the more exact of the two paths; on a
            // trained classifier the per-sample argmax agrees.
            assert_eq!(sim, native, "{precision}");
        }
    }

    #[test]
    fn native_backend_on_fp32_falls_back_to_simulated() {
        let (net, dataset) = trained_lenet(6);
        let samples = &dataset.test()[..16];
        let mut a = ApproximateMemory::from_model(ErrorModel::uniform(0.01, 0.5, 2), 7);
        let mut b = a.clone();
        let sim = evaluate_with_faults_backend(
            &net,
            samples,
            Precision::Fp32,
            &mut a,
            InferenceBackend::SimulatedF32,
        );
        let native = evaluate_with_faults_backend(
            &net,
            samples,
            Precision::Fp32,
            &mut b,
            InferenceBackend::NativeInt,
        );
        assert_eq!(sim.to_bits(), native.to_bits());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn native_backend_degrades_under_high_ber_like_simulated() {
        let (net, dataset) = trained_lenet(7);
        let samples = &dataset.test()[..32];
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let curve = accuracy_vs_ber_backend(
            &net,
            samples,
            Precision::Int8,
            &template,
            &[1e-5, 0.4],
            None,
            9,
            InferenceBackend::NativeInt,
        );
        let baseline =
            evaluate_reliable_backend(&net, samples, Precision::Int8, InferenceBackend::NativeInt);
        let chance = 1.0 / dataset.spec().num_classes as f32;
        assert!(curve[0].1 >= baseline - 0.1, "tiny BER should not hurt");
        assert!(
            curve[1].1 <= baseline - 0.15 || curve[1].1 <= chance + 0.2,
            "40% BER should destroy accuracy (got {})",
            curve[1].1
        );
    }

    #[test]
    fn corrupted_network_differs_from_original_at_high_ber() {
        let (net, dataset) = trained_lenet(3);
        let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.05, 0.5, 1), 2);
        let corrupted = corrupted_network(&net, Precision::Int8, &mut memory);
        let x = &dataset.test()[0].0;
        assert_ne!(net.forward(x), corrupted.forward(x));
        assert!(memory.stats().bit_flips > 0);
    }
}
