//! DNN inference on approximate DRAM (Section 3.5).
//!
//! Weights reside permanently in approximate DRAM, so they are corrupted once
//! per inference pass (the bit flips a real device would produce on the loads
//! of that pass); IFMs are corrupted every time they move between layers. The
//! only modification to the inference algorithm itself is the
//! implausible-value correction carried by [`ApproximateMemory`].
//!
//! # Parallel batch execution
//!
//! [`evaluate_with_faults`] runs samples batch-parallel on the current
//! `eden-par` pool, and [`accuracy_vs_ber`] additionally fans the independent
//! BER operating points out over it — this is what makes the paper's
//! Figure 5/7/8 sweeps tractable. Results are bit-identical for any thread
//! count: each sample's IFM corruption comes from an [`ApproximateMemory`]
//! fork keyed by the sample's *global index*, each BER point builds its own
//! memory from the caller's seed, and per-sample correctness flags land in
//! index-ordered slots. See the README's threading-model section.

use crate::faults::ApproximateMemory;
use eden_dnn::{FaultHook, Network};
use eden_tensor::{Precision, Tensor};

/// Samples per weight refetch: the corrupted weight copy is re-loaded from
/// approximate DRAM once per this many samples, modelling periodic
/// re-fetching (the same constant the seed implementation chunked by).
const WEIGHT_REFETCH_PERIOD: usize = 16;

/// Returns a copy of `net` whose weights have been loaded through
/// approximate memory (quantized to `precision`, corrupted, corrected,
/// dequantized).
pub fn corrupted_network(
    net: &Network,
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> Network {
    let mut copy = net.clone();
    copy.corrupt_weights(precision, memory);
    copy
}

/// Runs one forward pass with both weights and IFMs served from approximate
/// memory, returning the output logits.
pub fn forward_with_faults(
    net: &Network,
    input: &Tensor,
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> Tensor {
    let corrupted = corrupted_network(net, precision, memory);
    corrupted.forward_with_ifm_hook(input, precision, memory)
}

/// Classification accuracy over `samples` when the network runs on
/// approximate memory. Weights are re-loaded (and re-corrupted) once per
/// sample batch of 16 to model periodic re-fetching from DRAM.
///
/// Samples run batch-parallel on the current `eden-par` pool. The weight
/// refetches consume `memory`'s own load streams in sequence (exactly as a
/// sequential evaluation would), while each sample's IFM loads come from
/// `memory.fork(sample index)` — so the returned accuracy and the
/// accumulated [`ApproximateMemory::stats`] are bit-identical for any thread
/// count.
pub fn evaluate_with_faults(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    // Pin every site's DRAM placement before forking so all forks agree on
    // addresses without having to communicate.
    memory.preallocate(net, precision);

    // Process the batch in bounded windows so at most 16 corrupted weight
    // copies are resident at once (a window is wide enough to keep every
    // worker busy); the weight refetches inside each window draw
    // sequentially from the parent memory's stream, in sample order, exactly
    // as a fully sequential evaluation would.
    const WINDOW: usize = 16 * WEIGHT_REFETCH_PERIOD;
    let mut correct = 0usize;
    for (w, window) in samples.chunks(WINDOW).enumerate() {
        let corrupted: Vec<Network> = window
            .chunks(WEIGHT_REFETCH_PERIOD)
            .map(|_| corrupted_network(net, precision, memory))
            .collect();

        let base = w * WINDOW;
        let shared: &ApproximateMemory = memory;
        let outcomes = eden_par::par_map(window, |i, (x, label)| {
            // Lane key is the sample's *global* index: invariant under both
            // the window size and the thread count.
            let mut lane = shared.fork((base + i) as u64);
            let net = &corrupted[i / WEIGHT_REFETCH_PERIOD];
            let logits = net.forward_with_ifm_hook(x, precision, &mut lane);
            (logits.argmax() == *label, lane.stats())
        });

        for (ok, stats) in outcomes {
            if ok {
                correct += 1;
            }
            memory.merge_stats(stats);
        }
    }
    correct as f32 / samples.len() as f32
}

/// Accuracy of the same network on reliable memory (the baseline the
/// user-specified accuracy target refers to).
pub fn evaluate_reliable(net: &Network, samples: &[(Tensor, usize)], precision: Precision) -> f32 {
    let mut memory = ApproximateMemory::reliable(0);
    evaluate_with_faults(net, samples, precision, &mut memory)
}

/// Evaluates accuracy at a sequence of bit error rates using a template
/// error model (the BER sweep that produces the paper's error-tolerance
/// curves, Figure 8).
///
/// The BER points are mutually independent — each builds its own
/// [`ApproximateMemory`] from `seed` — so they fan out over the `eden-par`
/// pool, nesting with the batch parallelism inside [`evaluate_with_faults`].
pub fn accuracy_vs_ber(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    template: &eden_dram::ErrorModel,
    bers: &[f64],
    bounding: Option<crate::bounding::BoundingLogic>,
    seed: u64,
) -> Vec<(f64, f32)> {
    eden_par::par_map(bers, |_, &ber| {
        let model = template.with_ber(ber);
        let mut memory = ApproximateMemory::from_model(model, seed);
        if let Some(b) = bounding {
            memory = memory.with_bounding(b);
        }
        (
            ber,
            evaluate_with_faults(net, samples, precision, &mut memory),
        )
    })
}

/// Convenience wrapper: a [`FaultHook`] that applies no corruption, for
/// code paths that need a hook object for reliable memory.
pub fn reliable_hook() -> impl FaultHook {
    eden_dnn::NoFaults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::{BoundingLogic, CorrectionPolicy};
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, Dataset};
    use eden_dram::ErrorModel;

    fn trained_lenet(seed: u64) -> (eden_dnn::Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        });
        trainer.train(&mut net, &dataset);
        (net, dataset)
    }

    #[test]
    fn reliable_evaluation_matches_plain_accuracy() {
        let (net, dataset) = trained_lenet(0);
        let plain = eden_dnn::metrics::accuracy(&net, dataset.test());
        let via_memory = evaluate_reliable(&net, dataset.test(), Precision::Fp32);
        assert!((plain - via_memory).abs() < 1e-6);
    }

    #[test]
    fn low_ber_preserves_accuracy_high_ber_destroys_it() {
        let (net, dataset) = trained_lenet(1);
        let samples = &dataset.test()[..32];
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let curve = accuracy_vs_ber(
            &net,
            samples,
            Precision::Int8,
            &template,
            &[1e-5, 0.4],
            Some(bounding),
            5,
        );
        let baseline = evaluate_reliable(&net, samples, Precision::Int8);
        let chance = 1.0 / dataset.spec().num_classes as f32;
        assert!(
            curve[0].1 >= baseline - 0.1,
            "tiny BER should not hurt accuracy"
        );
        assert!(
            curve[1].1 <= baseline - 0.15 || curve[1].1 <= chance + 0.2,
            "40% BER should destroy accuracy (got {} vs baseline {baseline})",
            curve[1].1
        );
    }

    #[test]
    fn bounding_protects_fp32_from_accuracy_collapse() {
        // The paper's key observation (Section 3.2): without correction, a
        // modest BER collapses FP32 accuracy because of exponent-bit flips;
        // with zeroing correction the DNN tolerates orders of magnitude more.
        let (net, dataset) = trained_lenet(2);
        let samples = &dataset.test()[..32];
        let template = ErrorModel::uniform(0.01, 0.5, 7);
        let model = template.with_ber(1e-3);
        let baseline = evaluate_reliable(&net, samples, Precision::Fp32);

        let mut unprotected = ApproximateMemory::from_model(model, 1);
        let without = evaluate_with_faults(&net, samples, Precision::Fp32, &mut unprotected);

        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let mut protected = ApproximateMemory::from_model(model, 1).with_bounding(bounding);
        let with = evaluate_with_faults(&net, samples, Precision::Fp32, &mut protected);

        assert!(
            with >= without,
            "bounding ({with}) should never hurt vs unprotected ({without})"
        );
        assert!(
            with >= baseline - 0.25,
            "with bounding, 1e-3 BER should retain most accuracy ({with} vs {baseline})"
        );
    }

    #[test]
    fn corrupted_network_differs_from_original_at_high_ber() {
        let (net, dataset) = trained_lenet(3);
        let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.05, 0.5, 1), 2);
        let corrupted = corrupted_network(&net, Precision::Int8, &mut memory);
        let x = &dataset.test()[0].0;
        assert_ne!(net.forward(x), corrupted.forward(x));
        assert!(memory.stats().bit_flips > 0);
    }
}
