//! DNN error-tolerance characterization (Section 3.3).
//!
//! * **Coarse-grained**: find the highest single BER the whole DNN tolerates
//!   while staying within the user's accuracy budget, via a logarithmic-scale
//!   binary search (DNN error-tolerance curves are monotonically
//!   decreasing).
//! * **Fine-grained**: find a per-data-type tolerable BER by iteratively
//!   sweeping over the DNN's weights and IFMs, raising each data type's BER
//!   until accuracy would drop below the target (Figure 11).

use crate::bounding::BoundingLogic;
use crate::faults::ApproximateMemory;
use crate::inference::InferenceBackend;
use crate::session::EvalSession;
use eden_dnn::network::DataTypeInfo;
use eden_dnn::{DataSite, Dataset, Network};
use eden_dram::inject::Injector;
use eden_dram::util::seed_mix;
use eden_dram::ErrorModel;
use eden_tensor::{Precision, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of coarse-grained characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseConfig {
    /// Maximum tolerated accuracy drop relative to the reliable baseline
    /// (the paper's headline setting is 0.01, i.e. "within 1%").
    pub accuracy_drop: f32,
    /// Number of validation samples used per accuracy estimate.
    pub eval_samples: usize,
    /// Lower end of the BER search range.
    pub ber_min: f64,
    /// Upper end of the BER search range.
    pub ber_max: f64,
    /// Binary-search iterations on the logarithmic BER axis.
    pub iterations: usize,
    /// Injection seed.
    pub seed: u64,
    /// Execution backend used for every accuracy evaluation.
    pub backend: InferenceBackend,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        Self {
            accuracy_drop: 0.01,
            eval_samples: 64,
            ber_min: 1e-5,
            ber_max: 0.3,
            iterations: 8,
            seed: 0,
            backend: InferenceBackend::default(),
        }
    }
}

/// Result of coarse-grained characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseCharacterization {
    /// Accuracy of the DNN on reliable memory.
    pub baseline_accuracy: f32,
    /// Minimum acceptable accuracy (`baseline − accuracy_drop`).
    pub accuracy_floor: f32,
    /// The highest BER that keeps accuracy at or above the floor.
    pub max_tolerable_ber: f64,
    /// `(BER, accuracy)` points probed during the search.
    pub probes: Vec<(f64, f32)>,
}

/// Finds the maximum BER the whole DNN tolerates (coarse-grained, Table 3).
///
/// Convenience wrapper that builds a throwaway [`EvalSession`] from
/// `(net, precision, cfg.backend)` and delegates to
/// [`coarse_characterize_session`]. Callers running several
/// characterizations of the same network (e.g. a coarse bootstrap followed
/// by a fine-grained sweep, as Figure 11 does) should construct one session
/// and call the `_session` variants directly to share the cached weight
/// images, pools and weak-cell maps.
pub fn coarse_characterize(
    net: &Network,
    dataset: &dyn Dataset,
    precision: Precision,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &CoarseConfig,
) -> CoarseCharacterization {
    let mut session = EvalSession::new(net, precision, cfg.backend);
    coarse_characterize_session(&mut session, dataset, template, bounding, cfg)
}

/// [`coarse_characterize`] on a caller-provided [`EvalSession`].
///
/// The session's network, precision and backend are authoritative;
/// `cfg.backend` is only read by the non-session wrapper.
pub fn coarse_characterize_session(
    session: &mut EvalSession<'_>,
    dataset: &dyn Dataset,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &CoarseConfig,
) -> CoarseCharacterization {
    let samples = eval_slice(dataset, cfg.eval_samples);
    let baseline = session.evaluate_reliable(samples);
    let floor = baseline - cfg.accuracy_drop;

    let memory_at = |ber: f64| -> ApproximateMemory {
        let mut memory = ApproximateMemory::from_model(template.with_ber(ber), cfg.seed);
        if let Some(b) = bounding {
            memory = memory.with_bounding(b);
        }
        memory
    };

    let mut probes = Vec::new();
    // Quick exits: if even the minimum BER fails, or the maximum passes. The
    // two boundary probes are independent, so evaluate them concurrently —
    // deliberately speculative: when the min-BER probe fails, the max-BER
    // result is discarded, trading one wasted evaluation on that rare path
    // for halved latency on the common one.
    let (mut memory_min, mut memory_max) = (memory_at(cfg.ber_min), memory_at(cfg.ber_max));
    let (acc_min, acc_max) = session.evaluate_pair(samples, &mut memory_min, &mut memory_max);
    probes.push((cfg.ber_min, acc_min));
    if acc_min < floor {
        return CoarseCharacterization {
            baseline_accuracy: baseline,
            accuracy_floor: floor,
            max_tolerable_ber: 0.0,
            probes,
        };
    }
    probes.push((cfg.ber_max, acc_max));
    if acc_max >= floor {
        return CoarseCharacterization {
            baseline_accuracy: baseline,
            accuracy_floor: floor,
            max_tolerable_ber: cfg.ber_max,
            probes,
        };
    }

    // Logarithmic-scale binary search (error-tolerance curves decrease
    // monotonically with BER); sequential probes reuse the session pools.
    let mut lo = cfg.ber_min.ln();
    let mut hi = cfg.ber_max.ln();
    for _ in 0..cfg.iterations {
        let mid = 0.5 * (lo + hi);
        let ber = mid.exp();
        let acc = session.evaluate_with_faults(samples, &mut memory_at(ber));
        probes.push((ber, acc));
        if acc >= floor {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    CoarseCharacterization {
        baseline_accuracy: baseline,
        accuracy_floor: floor,
        max_tolerable_ber: lo.exp(),
        probes,
    }
}

/// Configuration of fine-grained characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineConfig {
    /// Maximum tolerated accuracy drop relative to the reliable baseline.
    pub accuracy_drop: f32,
    /// Validation samples per accuracy estimate (the paper samples 10% of
    /// the validation set during this procedure).
    pub eval_samples: usize,
    /// Starting BER for every data type (bootstrapped from the
    /// coarse-grained result in the paper).
    pub bootstrap_ber: f64,
    /// Multiplicative BER increment per accepted step (the paper uses linear
    /// 0.5-unit steps around the bootstrap value; a multiplicative step
    /// explores the same range in fewer evaluations).
    pub step_factor: f64,
    /// Maximum sweep rounds over the data-type list.
    pub max_rounds: usize,
    /// Injection seed.
    pub seed: u64,
    /// Execution backend used for every accuracy evaluation.
    pub backend: InferenceBackend,
}

impl Default for FineConfig {
    fn default() -> Self {
        Self {
            accuracy_drop: 0.01,
            eval_samples: 32,
            bootstrap_ber: 1e-3,
            step_factor: 1.5,
            max_rounds: 4,
            seed: 0,
            backend: InferenceBackend::default(),
        }
    }
}

/// Per-data-type tolerable BERs (fine-grained, Figure 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineCharacterization {
    /// Accuracy of the DNN on reliable memory.
    pub baseline_accuracy: f32,
    /// Minimum acceptable accuracy.
    pub accuracy_floor: f32,
    /// Each data type with its size and maximum tolerable BER.
    pub tolerances: Vec<(DataTypeInfo, f64)>,
}

impl FineCharacterization {
    /// Tolerable BER of a specific data type, if characterized.
    pub fn tolerance_of(&self, site: &DataSite) -> Option<f64> {
        self.tolerances
            .iter()
            .find(|(info, _)| &info.site == site)
            .map(|(_, ber)| *ber)
    }

    /// The highest per-data-type BER found.
    pub fn max_tolerance(&self) -> f64 {
        self.tolerances.iter().map(|(_, b)| *b).fold(0.0, f64::max)
    }
}

/// Mixes `(master seed, sweep round, site index)` into one probe seed via
/// the workspace's unified [`seed_mix`] helper (chained splitmix64 stages,
/// one per component).
///
/// The original mixing, `seed ^ (round << 8) ^ i`, reserved only 8 bits for
/// the site index: on networks with ≥ 256 data sites the index bled into the
/// round bits and probe seeds collided across rounds (e.g. `(round 0,
/// site 256)` equalled `(round 1, site 0)`), silently correlating the
/// injected error patterns of distinct probes. `seed_mix` gives every
/// component a full mixing stage; the cross-module collision regression
/// test lives next to it in `eden_dram::util`.
fn probe_seed(seed: u64, round: u64, site: u64) -> u64 {
    seed_mix(seed, &[round, site])
}

/// Characterizes the tolerable BER of every weight tensor and IFM
/// individually (Section 3.3, "Fine-Grained Characterization").
///
/// Convenience wrapper over [`fine_characterize_session`]; see
/// [`coarse_characterize`] for when to hold a session instead.
pub fn fine_characterize(
    net: &Network,
    dataset: &dyn Dataset,
    precision: Precision,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &FineConfig,
) -> FineCharacterization {
    let mut session = EvalSession::new(net, precision, cfg.backend);
    fine_characterize_session(&mut session, dataset, template, bounding, cfg)
}

/// [`fine_characterize`] on a caller-provided [`EvalSession`].
///
/// This is the `sites × rounds` probe loop of Figure 11, and the workload
/// the session layer pays off most on. Each probe perturbs exactly **one**
/// site — the stepped site is served at its candidate BER, every other site
/// from reliable memory — which is the paper's "characterize each data type
/// individually" procedure and what makes the tolerances independent
/// per-site measurements rather than functions of the sweep's visiting
/// order. It is also what the session's incremental re-evaluation feeds on:
/// a single-site probe's [`ApproximateMemory::first_dirty_layer`] is the
/// probed site's layer, so the clean prefix of every sample resumes from a
/// checkpointed boundary activation and only the suffix re-executes —
/// O(suffix from the probed site) per probe instead of O(layers). The
/// session's precision and backend are authoritative; `cfg.backend` is only
/// read by the non-session wrapper.
///
/// Within a round, each still-active site's probe is independent, so the
/// probes fan out across the `eden-par` pool via
/// [`EvalSession::evaluate_concurrent`]. Each probe draws its error pattern
/// from its own `probe_seed(seed, round, site)` stream and acceptances are
/// folded in ascending site order after the round's fan-out, so results are
/// bit-identical at any thread count.
pub fn fine_characterize_session(
    session: &mut EvalSession<'_>,
    dataset: &dyn Dataset,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &FineConfig,
) -> FineCharacterization {
    let samples = eval_slice(dataset, cfg.eval_samples);
    let baseline = session.evaluate_reliable(samples);
    let floor = baseline - cfg.accuracy_drop;
    let sites = session.net().data_sites();

    let mut tolerances: Vec<f64> = vec![cfg.bootstrap_ber; sites.len()];
    let mut active: Vec<bool> = vec![true; sites.len()];

    for round in 0..cfg.max_rounds {
        let probes: Vec<usize> = (0..sites.len()).filter(|&i| active[i]).collect();
        if probes.is_empty() {
            break;
        }
        // Resolve the stepped injectors *before* fanning out: `injector_for`
        // caches under `&mut self`, while the fan-out below holds the
        // session by shared reference. Each probe corrupts exactly one site
        // — the probed one at its stepped BER — so the stepped injectors are
        // the whole set the round needs.
        let stepped: Vec<Injector> = probes
            .iter()
            .map(|&i| session.injector_for(template, tolerances[i] * cfg.step_factor))
            .collect();

        let shared: &EvalSession<'_> = session;
        let accs: Vec<f32> = eden_par::par_map(&probes, |p, &i| {
            let mut memory =
                ApproximateMemory::reliable(probe_seed(cfg.seed, round as u64, i as u64));
            memory.assign_site(sites[i].site.clone(), stepped[p].clone());
            if let Some(b) = bounding {
                memory = memory.with_bounding(b);
            }
            shared.evaluate_concurrent(samples, &mut memory)
        });

        for (&i, &acc) in probes.iter().zip(&accs) {
            if acc >= floor {
                tolerances[i] *= cfg.step_factor;
            } else {
                // This data type cannot tolerate a higher error rate; drop it
                // from the sweep list (the paper's procedure).
                active[i] = false;
            }
        }
    }

    FineCharacterization {
        baseline_accuracy: baseline,
        accuracy_floor: floor,
        tolerances: sites.into_iter().zip(tolerances).collect(),
    }
}

fn eval_slice(dataset: &dyn Dataset, n: usize) -> &[(Tensor, usize)] {
    let test = dataset.test();
    &test[..n.min(test.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::CorrectionPolicy;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, DataKind};

    fn trained(seed: u64) -> (Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);
        (net, dataset)
    }

    fn quick_coarse() -> CoarseConfig {
        CoarseConfig {
            eval_samples: 32,
            iterations: 5,
            accuracy_drop: 0.02,
            ..CoarseConfig::default()
        }
    }

    #[test]
    fn coarse_search_finds_a_boundary_ber() {
        let (net, dataset) = trained(0);
        let template = ErrorModel::uniform(0.01, 0.5, 1);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let result = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &quick_coarse(),
        );
        assert!(result.max_tolerable_ber > 0.0);
        assert!(result.max_tolerable_ber <= 0.3);
        assert!(result.probes.len() >= 3);
        // Accuracy at a BER well below the found maximum must meet the floor.
        let safe: Vec<_> = result
            .probes
            .iter()
            .filter(|(b, _)| *b <= result.max_tolerable_ber * 0.5)
            .collect();
        for (_, acc) in safe {
            assert!(*acc >= result.accuracy_floor - 0.05);
        }
    }

    #[test]
    fn coarse_search_respects_tighter_accuracy_budgets() {
        let (net, dataset) = trained(1);
        let template = ErrorModel::uniform(0.01, 0.5, 2);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let loose = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &CoarseConfig {
                accuracy_drop: 0.10,
                ..quick_coarse()
            },
        );
        let tight = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &CoarseConfig {
                accuracy_drop: 0.005,
                ..quick_coarse()
            },
        );
        assert!(
            loose.max_tolerable_ber >= tight.max_tolerable_ber,
            "a looser accuracy budget must tolerate at least as much error"
        );
    }

    #[test]
    fn fine_characterization_covers_every_data_type() {
        let (net, dataset) = trained(2);
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let cfg = FineConfig {
            eval_samples: 24,
            max_rounds: 2,
            bootstrap_ber: 5e-4,
            ..FineConfig::default()
        };
        let fine = fine_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &cfg,
        );
        assert_eq!(fine.tolerances.len(), net.data_sites().len());
        // Every tolerance is at least the bootstrap value.
        for (_, ber) in &fine.tolerances {
            assert!(*ber >= cfg.bootstrap_ber);
        }
        // Weight and IFM entries both exist.
        assert!(fine
            .tolerances
            .iter()
            .any(|(info, _)| info.site.kind == DataKind::Weight));
        assert!(fine
            .tolerances
            .iter()
            .any(|(info, _)| info.site.kind == DataKind::Ifm));
        assert!(fine.max_tolerance() >= cfg.bootstrap_ber);
    }

    #[test]
    fn probe_seeds_do_not_collide_across_rounds() {
        // Regression test for the old `seed ^ (round << 8) ^ i` mixing: with
        // ≥ 256 data sites the site index overflowed into the round bits and
        // `(round 0, site 256)` collided with `(round 1, site 0)`. The
        // splitmix-based mix must keep every (round, site) pair distinct.
        let old_mix = |seed: u64, round: u64, i: u64| seed ^ (round << 8) ^ i;
        assert_eq!(old_mix(7, 0, 256), old_mix(7, 1, 0), "old mixing collided");
        assert_ne!(probe_seed(7, 0, 256), probe_seed(7, 1, 0));

        let mut seen = std::collections::HashSet::new();
        for round in 0..4u64 {
            for site in 0..1024u64 {
                assert!(
                    seen.insert(probe_seed(42, round, site)),
                    "probe seed collision at round {round}, site {site}"
                );
            }
        }
        // Different master seeds decorrelate the whole schedule.
        assert_ne!(probe_seed(1, 0, 0), probe_seed(2, 0, 0));
    }

    #[test]
    fn session_variant_matches_the_one_shot_wrappers() {
        // The wrappers construct a throwaway session, so wrapper == session
        // pins that *reusing* one session across the probe loop (and across
        // coarse + fine) is bit-identical to per-call construction.
        let (net, dataset) = trained(5);
        let template = ErrorModel::uniform(0.01, 0.5, 6);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let coarse_cfg = quick_coarse();
        let fine_cfg = FineConfig {
            eval_samples: 24,
            max_rounds: 2,
            bootstrap_ber: 5e-4,
            ..FineConfig::default()
        };
        let coarse_oneshot = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &coarse_cfg,
        );
        let fine_oneshot = fine_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &fine_cfg,
        );

        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::SimulatedF32);
        let coarse_session = coarse_characterize_session(
            &mut session,
            &dataset,
            &template,
            Some(bounding),
            &coarse_cfg,
        );
        let fine_session =
            fine_characterize_session(&mut session, &dataset, &template, Some(bounding), &fine_cfg);
        assert_eq!(coarse_oneshot, coarse_session);
        assert_eq!(fine_oneshot, fine_session);
    }

    #[test]
    fn fine_tolerances_can_exceed_the_coarse_tolerance() {
        // The paper observes that individual data types tolerate up to ~3x
        // the coarse-grained BER; at minimum, the maximum fine tolerance
        // should not be smaller than the bootstrap.
        let (net, dataset) = trained(3);
        let template = ErrorModel::uniform(0.01, 0.5, 4);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let fine = fine_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &FineConfig {
                eval_samples: 24,
                max_rounds: 3,
                bootstrap_ber: 1e-3,
                ..FineConfig::default()
            },
        );
        assert!(fine.max_tolerance() > 1e-3);
    }
}
