//! DNN error-tolerance characterization (Section 3.3).
//!
//! * **Coarse-grained**: find the highest single BER the whole DNN tolerates
//!   while staying within the user's accuracy budget, via a logarithmic-scale
//!   binary search (DNN error-tolerance curves are monotonically
//!   decreasing).
//! * **Fine-grained**: find a per-data-type tolerable BER by iteratively
//!   sweeping over the DNN's weights and IFMs, raising each data type's BER
//!   until accuracy would drop below the target (Figure 11).

use crate::bounding::BoundingLogic;
use crate::faults::ApproximateMemory;
use crate::inference::{self, InferenceBackend};
use eden_dnn::network::DataTypeInfo;
use eden_dnn::{DataSite, Dataset, Network};
use eden_dram::error_model::Layout;
use eden_dram::inject::Injector;
use eden_dram::ErrorModel;
use eden_tensor::{Precision, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of coarse-grained characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseConfig {
    /// Maximum tolerated accuracy drop relative to the reliable baseline
    /// (the paper's headline setting is 0.01, i.e. "within 1%").
    pub accuracy_drop: f32,
    /// Number of validation samples used per accuracy estimate.
    pub eval_samples: usize,
    /// Lower end of the BER search range.
    pub ber_min: f64,
    /// Upper end of the BER search range.
    pub ber_max: f64,
    /// Binary-search iterations on the logarithmic BER axis.
    pub iterations: usize,
    /// Injection seed.
    pub seed: u64,
    /// Execution backend used for every accuracy evaluation.
    pub backend: InferenceBackend,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        Self {
            accuracy_drop: 0.01,
            eval_samples: 64,
            ber_min: 1e-5,
            ber_max: 0.3,
            iterations: 8,
            seed: 0,
            backend: InferenceBackend::default(),
        }
    }
}

/// Result of coarse-grained characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseCharacterization {
    /// Accuracy of the DNN on reliable memory.
    pub baseline_accuracy: f32,
    /// Minimum acceptable accuracy (`baseline − accuracy_drop`).
    pub accuracy_floor: f32,
    /// The highest BER that keeps accuracy at or above the floor.
    pub max_tolerable_ber: f64,
    /// `(BER, accuracy)` points probed during the search.
    pub probes: Vec<(f64, f32)>,
}

/// Finds the maximum BER the whole DNN tolerates (coarse-grained, Table 3).
pub fn coarse_characterize(
    net: &Network,
    dataset: &dyn Dataset,
    precision: Precision,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &CoarseConfig,
) -> CoarseCharacterization {
    let samples = eval_slice(dataset, cfg.eval_samples);
    let baseline = inference::evaluate_reliable_backend(net, samples, precision, cfg.backend);
    let floor = baseline - cfg.accuracy_drop;

    let accuracy_at = |ber: f64| -> f32 {
        let mut memory = ApproximateMemory::from_model(template.with_ber(ber), cfg.seed);
        if let Some(b) = bounding {
            memory = memory.with_bounding(b);
        }
        inference::evaluate_with_faults_backend(net, samples, precision, &mut memory, cfg.backend)
    };

    let mut probes = Vec::new();
    // Quick exits: if even the minimum BER fails, or the maximum passes. The
    // two boundary probes are independent, so evaluate them concurrently —
    // deliberately speculative: when the min-BER probe fails, the max-BER
    // result is discarded, trading one wasted evaluation on that rare path
    // for halved latency on the common one.
    let (acc_min, acc_max) =
        eden_par::join(|| accuracy_at(cfg.ber_min), || accuracy_at(cfg.ber_max));
    probes.push((cfg.ber_min, acc_min));
    if acc_min < floor {
        return CoarseCharacterization {
            baseline_accuracy: baseline,
            accuracy_floor: floor,
            max_tolerable_ber: 0.0,
            probes,
        };
    }
    probes.push((cfg.ber_max, acc_max));
    if acc_max >= floor {
        return CoarseCharacterization {
            baseline_accuracy: baseline,
            accuracy_floor: floor,
            max_tolerable_ber: cfg.ber_max,
            probes,
        };
    }

    // Logarithmic-scale binary search (error-tolerance curves decrease
    // monotonically with BER).
    let mut lo = cfg.ber_min.ln();
    let mut hi = cfg.ber_max.ln();
    for _ in 0..cfg.iterations {
        let mid = 0.5 * (lo + hi);
        let ber = mid.exp();
        let acc = accuracy_at(ber);
        probes.push((ber, acc));
        if acc >= floor {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    CoarseCharacterization {
        baseline_accuracy: baseline,
        accuracy_floor: floor,
        max_tolerable_ber: lo.exp(),
        probes,
    }
}

/// Configuration of fine-grained characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineConfig {
    /// Maximum tolerated accuracy drop relative to the reliable baseline.
    pub accuracy_drop: f32,
    /// Validation samples per accuracy estimate (the paper samples 10% of
    /// the validation set during this procedure).
    pub eval_samples: usize,
    /// Starting BER for every data type (bootstrapped from the
    /// coarse-grained result in the paper).
    pub bootstrap_ber: f64,
    /// Multiplicative BER increment per accepted step (the paper uses linear
    /// 0.5-unit steps around the bootstrap value; a multiplicative step
    /// explores the same range in fewer evaluations).
    pub step_factor: f64,
    /// Maximum sweep rounds over the data-type list.
    pub max_rounds: usize,
    /// Injection seed.
    pub seed: u64,
    /// Execution backend used for every accuracy evaluation.
    pub backend: InferenceBackend,
}

impl Default for FineConfig {
    fn default() -> Self {
        Self {
            accuracy_drop: 0.01,
            eval_samples: 32,
            bootstrap_ber: 1e-3,
            step_factor: 1.5,
            max_rounds: 4,
            seed: 0,
            backend: InferenceBackend::default(),
        }
    }
}

/// Per-data-type tolerable BERs (fine-grained, Figure 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineCharacterization {
    /// Accuracy of the DNN on reliable memory.
    pub baseline_accuracy: f32,
    /// Minimum acceptable accuracy.
    pub accuracy_floor: f32,
    /// Each data type with its size and maximum tolerable BER.
    pub tolerances: Vec<(DataTypeInfo, f64)>,
}

impl FineCharacterization {
    /// Tolerable BER of a specific data type, if characterized.
    pub fn tolerance_of(&self, site: &DataSite) -> Option<f64> {
        self.tolerances
            .iter()
            .find(|(info, _)| &info.site == site)
            .map(|(_, ber)| *ber)
    }

    /// The highest per-data-type BER found.
    pub fn max_tolerance(&self) -> f64 {
        self.tolerances.iter().map(|(_, b)| *b).fold(0.0, f64::max)
    }
}

/// Characterizes the tolerable BER of every weight tensor and IFM
/// individually (Section 3.3, "Fine-Grained Characterization").
pub fn fine_characterize(
    net: &Network,
    dataset: &dyn Dataset,
    precision: Precision,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    cfg: &FineConfig,
) -> FineCharacterization {
    let samples = eval_slice(dataset, cfg.eval_samples);
    let baseline = inference::evaluate_reliable_backend(net, samples, precision, cfg.backend);
    let floor = baseline - cfg.accuracy_drop;
    let sites = net.data_sites();

    let mut tolerances: Vec<f64> = vec![cfg.bootstrap_ber; sites.len()];
    let mut active: Vec<bool> = vec![true; sites.len()];

    let evaluate = |tolerances: &[f64], seed: u64| -> f32 {
        let mut memory = ApproximateMemory::reliable(seed);
        for (info, &ber) in sites.iter().zip(tolerances) {
            memory.assign_site(
                info.site.clone(),
                Injector::from_model(template.with_ber(ber), Layout::default()),
            );
        }
        if let Some(b) = bounding {
            memory = memory.with_bounding(b);
        }
        inference::evaluate_with_faults_backend(net, samples, precision, &mut memory, cfg.backend)
    };

    for round in 0..cfg.max_rounds {
        if !active.iter().any(|&a| a) {
            break;
        }
        for i in 0..sites.len() {
            if !active[i] {
                continue;
            }
            let mut candidate = tolerances.clone();
            candidate[i] *= cfg.step_factor;
            let acc = evaluate(&candidate, cfg.seed ^ (round as u64) << 8 ^ i as u64);
            if acc >= floor {
                tolerances = candidate;
            } else {
                // This data type cannot tolerate a higher error rate; drop it
                // from the sweep list (the paper's procedure).
                active[i] = false;
            }
        }
    }

    FineCharacterization {
        baseline_accuracy: baseline,
        accuracy_floor: floor,
        tolerances: sites.into_iter().zip(tolerances).collect(),
    }
}

fn eval_slice(dataset: &dyn Dataset, n: usize) -> &[(Tensor, usize)] {
    let test = dataset.test();
    &test[..n.min(test.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::CorrectionPolicy;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::train::{TrainConfig, Trainer};
    use eden_dnn::{zoo, DataKind};

    fn trained(seed: u64) -> (Network, SyntheticVision) {
        let dataset = SyntheticVision::tiny(seed);
        let mut net = zoo::lenet(&dataset.spec(), seed);
        Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);
        (net, dataset)
    }

    fn quick_coarse() -> CoarseConfig {
        CoarseConfig {
            eval_samples: 32,
            iterations: 5,
            accuracy_drop: 0.02,
            ..CoarseConfig::default()
        }
    }

    #[test]
    fn coarse_search_finds_a_boundary_ber() {
        let (net, dataset) = trained(0);
        let template = ErrorModel::uniform(0.01, 0.5, 1);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let result = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &quick_coarse(),
        );
        assert!(result.max_tolerable_ber > 0.0);
        assert!(result.max_tolerable_ber <= 0.3);
        assert!(result.probes.len() >= 3);
        // Accuracy at a BER well below the found maximum must meet the floor.
        let safe: Vec<_> = result
            .probes
            .iter()
            .filter(|(b, _)| *b <= result.max_tolerable_ber * 0.5)
            .collect();
        for (_, acc) in safe {
            assert!(*acc >= result.accuracy_floor - 0.05);
        }
    }

    #[test]
    fn coarse_search_respects_tighter_accuracy_budgets() {
        let (net, dataset) = trained(1);
        let template = ErrorModel::uniform(0.01, 0.5, 2);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let loose = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &CoarseConfig {
                accuracy_drop: 0.10,
                ..quick_coarse()
            },
        );
        let tight = coarse_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &CoarseConfig {
                accuracy_drop: 0.005,
                ..quick_coarse()
            },
        );
        assert!(
            loose.max_tolerable_ber >= tight.max_tolerable_ber,
            "a looser accuracy budget must tolerate at least as much error"
        );
    }

    #[test]
    fn fine_characterization_covers_every_data_type() {
        let (net, dataset) = trained(2);
        let template = ErrorModel::uniform(0.01, 0.5, 3);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let cfg = FineConfig {
            eval_samples: 24,
            max_rounds: 2,
            bootstrap_ber: 5e-4,
            ..FineConfig::default()
        };
        let fine = fine_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &cfg,
        );
        assert_eq!(fine.tolerances.len(), net.data_sites().len());
        // Every tolerance is at least the bootstrap value.
        for (_, ber) in &fine.tolerances {
            assert!(*ber >= cfg.bootstrap_ber);
        }
        // Weight and IFM entries both exist.
        assert!(fine
            .tolerances
            .iter()
            .any(|(info, _)| info.site.kind == DataKind::Weight));
        assert!(fine
            .tolerances
            .iter()
            .any(|(info, _)| info.site.kind == DataKind::Ifm));
        assert!(fine.max_tolerance() >= cfg.bootstrap_ber);
    }

    #[test]
    fn fine_tolerances_can_exceed_the_coarse_tolerance() {
        // The paper observes that individual data types tolerate up to ~3x
        // the coarse-grained BER; at minimum, the maximum fine tolerance
        // should not be smaller than the bootstrap.
        let (net, dataset) = trained(3);
        let template = ErrorModel::uniform(0.01, 0.5, 4);
        let bounding =
            BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
        let fine = fine_characterize(
            &net,
            &dataset,
            Precision::Int8,
            &template,
            Some(bounding),
            &FineConfig {
                eval_samples: 24,
                max_rounds: 3,
                bootstrap_ber: 1e-3,
                ..FineConfig::default()
            },
        );
        assert!(fine.max_tolerance() > 1e-3);
    }
}
