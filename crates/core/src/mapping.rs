//! DNN→DRAM mapping (Section 3.4), at three granularities:
//!
//! * **Coarse-grained** ([`coarse_map`]): pick the single most aggressive
//!   voltage and `tRCD` reduction whose module-level BER stays below the
//!   DNN's maximum tolerable BER (the ΔVDD / ΔtRCD columns of Table 3).
//! * **Fine-grained (Algorithm 1)** ([`fine_map`]): place every DNN data
//!   type into the partition of *one* module with the largest parameter
//!   reduction whose BER it tolerates and which still has space, tracking
//!   per-partition operating points (Figure 12).
//! * **Multi-module** ([`multi_module_map`]): generalize Algorithm 1 across
//!   a whole [`MemorySystem`] — several modules with their own vendors,
//!   geometries and candidate operating points. The result is a
//!   [`PlacementPlan`] whose spans may split one site across partitions
//!   (capacity spill), seeded greedily and then refined by a deterministic
//!   parallel local search (site moves and swaps between modules) scored by
//!   a pluggable per-slot traffic cost — the experiment binaries wire in
//!   `eden-sysim` energy/latency there. [`PlacementPlan::apply_to`] lowers a
//!   plan onto an [`ApproximateMemory`] as per-span device injectors, whose
//!   per-partition overlays the session composes in O(flips).

use crate::characterize::FineCharacterization;
use crate::faults::{ApproximateMemory, PlacedSpan};
use crate::session::EvalSession;
use eden_dnn::network::DataTypeInfo;
use eden_dram::characterize::DramErrorProfile;
use eden_dram::error_model::Layout;
use eden_dram::inject::Injector;
use eden_dram::params::{MAX_TRCD_REDUCTION_NS, MAX_VDD_REDUCTION, NOMINAL_TRCD_NS, NOMINAL_VDD};
use eden_dram::system::MemorySystem;
use eden_dram::vendor::VendorProfile;
use eden_dram::OperatingPoint;
use eden_tensor::{Precision, Tensor};
use serde::{Deserialize, Serialize};

/// Voltage step used when sweeping candidate reductions (volts).
pub const VDD_STEP: f32 = 0.05;
/// `tRCD` step used when sweeping candidate reductions (nanoseconds).
pub const TRCD_STEP: f32 = 0.5;

/// Result of coarse-grained mapping: one operating point for the module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseMapping {
    /// The DNN's maximum tolerable BER (from coarse characterization).
    pub max_tolerable_ber: f64,
    /// Largest voltage reduction whose BER stays below the tolerable BER.
    pub vdd_reduction: f32,
    /// Largest `tRCD` reduction whose BER stays below the tolerable BER.
    pub trcd_reduction_ns: f32,
    /// The combined operating point (voltage reduction applied for energy
    /// experiments, `tRCD` reduction for performance experiments).
    pub operating_point: OperatingPoint,
}

/// Scans the full reduction sweep `[step, limit)` and returns the **largest**
/// reduction whose BER stays within `tolerable` — deliberately *not* stopping
/// at the first failing step: measured (or interpolated) vendor curves can
/// dip back under the budget after a local bump, and an early `break` would
/// under-report the achievable reduction for such non-monotonic curves.
fn largest_passing_reduction(
    step: f32,
    limit: f32,
    tolerable: f64,
    ber_at: impl Fn(f32) -> f64,
) -> f32 {
    let mut best = 0.0f32;
    // Index the grid with integers: accumulating `d += step` drifts off the
    // grid after many f32 additions (0.05 is not exactly representable), so a
    // fine sweep would probe slightly-off reductions and could even gain or
    // lose a final step near `limit`.
    let mut i = 1u32;
    loop {
        let d = step * i as f32;
        if d >= limit {
            break;
        }
        if ber_at(d) <= tolerable {
            best = d;
        }
        i += 1;
    }
    best
}

/// Finds the most aggressive ΔVDD and ΔtRCD a DNN tolerates on a vendor's
/// DRAM (Table 3). Each reduction is chosen independently, as in the paper's
/// energy (voltage) and performance (latency) evaluations; each sweep scans
/// its full range so non-monotonic dips in the vendor curve cannot hide a
/// deeper passing operating point.
pub fn coarse_map(max_tolerable_ber: f64, vendor: &VendorProfile) -> CoarseMapping {
    let vdd_reduction =
        largest_passing_reduction(VDD_STEP, NOMINAL_VDD - 0.5, max_tolerable_ber, |dv| {
            vendor.ber_voltage(dv)
        });
    let trcd_reduction =
        largest_passing_reduction(TRCD_STEP, NOMINAL_TRCD_NS - 1.0, max_tolerable_ber, |dt| {
            vendor.ber_trcd(dt)
        });
    CoarseMapping {
        max_tolerable_ber,
        vdd_reduction,
        trcd_reduction_ns: trcd_reduction,
        operating_point: OperatingPoint::with_reductions(vdd_reduction, trcd_reduction),
    }
}

/// One data type placed into one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The data type.
    pub data: DataTypeInfo,
    /// Tolerable BER of the data type.
    pub tolerable_ber: f64,
    /// Index of the partition it was placed in.
    pub partition_index: usize,
    /// Index (into the profile's operating points) the partition runs at.
    pub op_index: usize,
}

/// Result of fine-grained mapping (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineMapping {
    /// Successful placements.
    pub assignments: Vec<Assignment>,
    /// Data types that did not fit in any suitable partition; they must be
    /// stored in a DRAM module operating at nominal parameters.
    pub unmapped: Vec<DataTypeInfo>,
    /// Chosen operating-point index per partition (`None` = unused).
    pub partition_ops: Vec<Option<usize>>,
}

impl FineMapping {
    /// Fraction of mapped bytes placed in partitions running below nominal
    /// parameters.
    pub fn mapped_fraction(&self, precision: Precision) -> f64 {
        let mapped: u64 = self
            .assignments
            .iter()
            .map(|a| a.data.bytes(precision))
            .sum();
        let unmapped: u64 = self.unmapped.iter().map(|d| d.bytes(precision)).sum();
        if mapped + unmapped == 0 {
            return 0.0;
        }
        mapped as f64 / (mapped + unmapped) as f64
    }
}

/// Benefit score of an operating point: how much its parameters are reduced
/// relative to the most aggressive reductions EDEN considers. Algorithm 1
/// picks the partition/operating point with the highest benefit that still
/// meets the data type's BER requirement.
fn benefit(op: &OperatingPoint) -> f64 {
    (op.vdd_reduction() / MAX_VDD_REDUCTION) as f64
        + (op.trcd_reduction_ns() / MAX_TRCD_REDUCTION_NS) as f64
}

/// Fine-grained DNN→DRAM mapping (Algorithm 1 of the paper).
///
/// Data types are processed from least to most error tolerant, so the
/// operating point of each partition is constrained by the strictest data
/// assigned to it.
pub fn fine_map(
    characterization: &FineCharacterization,
    profile: &DramErrorProfile,
    precision: Precision,
) -> FineMapping {
    let mut sorted: Vec<(DataTypeInfo, f64)> = characterization.tolerances.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut remaining_bytes: Vec<u64> = profile
        .partitions
        .iter()
        .map(|p| p.capacity_bytes)
        .collect();
    let mut partition_ops: Vec<Option<usize>> = vec![None; profile.partition_count()];
    let mut assignments = Vec::new();
    let mut unmapped = Vec::new();

    for (data, tolerable_ber) in sorted {
        let size = data.bytes(precision);
        let mut best: Option<(usize, usize, f64)> = None; // (partition, op, benefit)
        for p_idx in 0..profile.partition_count() {
            if remaining_bytes[p_idx] < size {
                continue;
            }
            // The candidate operating point for this partition: either the
            // one already imposed by stricter data, or the most beneficial
            // point this data type tolerates.
            let candidate_op = match partition_ops[p_idx] {
                Some(existing) => {
                    if profile.ber(p_idx, existing) <= tolerable_ber {
                        Some(existing)
                    } else {
                        None
                    }
                }
                None => {
                    let mut best_op: Option<(usize, f64)> = None;
                    for (o_idx, op) in profile.operating_points.iter().enumerate() {
                        if profile.ber(p_idx, o_idx) <= tolerable_ber {
                            let b = benefit(op);
                            if best_op.map(|(_, bb)| b > bb).unwrap_or(true) {
                                best_op = Some((o_idx, b));
                            }
                        }
                    }
                    best_op.map(|(o, _)| o)
                }
            };
            if let Some(o_idx) = candidate_op {
                let b = benefit(&profile.operating_points[o_idx]);
                if best.map(|(_, _, bb)| b > bb).unwrap_or(true) {
                    best = Some((p_idx, o_idx, b));
                }
            }
        }
        match best {
            Some((p_idx, o_idx, _)) => {
                remaining_bytes[p_idx] -= size;
                partition_ops[p_idx] = Some(o_idx);
                assignments.push(Assignment {
                    data,
                    tolerable_ber,
                    partition_index: p_idx,
                    op_index: o_idx,
                });
            }
            None => unmapped.push(data),
        }
    }

    FineMapping {
        assignments,
        unmapped,
        partition_ops,
    }
}

/// One span of a [`PlacementPlan`]: `values` stored values of a site,
/// starting at within-site value index `start_value`, resident in partition
/// `partition` of module `module` at row offset `base_row`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpan {
    /// Index of the module within the memory system.
    pub module: usize,
    /// Index of the partition within the module.
    pub partition: usize,
    /// Row offset of the span within its partition (rows are allocated
    /// consecutively per partition, in plan order).
    pub base_row: usize,
    /// First value index of the span within the site's stored image.
    pub start_value: usize,
    /// Number of stored values the span covers.
    pub values: usize,
}

/// The full placement of one data site: its measured tolerance plus the
/// spans tiling its values across the system's partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePlacement {
    /// The data type.
    pub data: DataTypeInfo,
    /// Tolerable BER of the data type.
    pub tolerable_ber: f64,
    /// Spans covering `[0, data.elements)` in order, without gaps.
    pub spans: Vec<PlanSpan>,
}

/// The productionized multi-module fine mapping: every mapped site is
/// assigned spans over `(module, partition)` slots, and every used slot runs
/// at one chosen operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Mapped sites, in the search's strict-to-tolerant processing order.
    pub placements: Vec<SitePlacement>,
    /// Sites that fit nowhere; they stay in nominal (error-free) memory.
    pub unmapped: Vec<DataTypeInfo>,
    /// Chosen operating-point index per module, per partition (`None` =
    /// partition unused).
    pub partition_ops: Vec<Vec<Option<usize>>>,
}

/// Per-slot traffic summary a plan cost model scores: bytes resident in one
/// `(module, partition)` slot plus the reductions of its operating point.
/// The experiment binaries translate these into `eden-sysim` mixed
/// energy/latency; [`benefit_traffic_score`] is the simulator-free default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotTraffic {
    /// Bytes of DNN data resident in the slot.
    pub bytes: u64,
    /// Voltage reduction of the slot's operating point (volts).
    pub vdd_reduction: f32,
    /// `tRCD` reduction of the slot's operating point (nanoseconds).
    pub trcd_reduction_ns: f32,
}

/// Scores a traffic distribution without a system simulator: the
/// bytes-weighted mean of the normalized operating-point benefit. Higher is
/// better; 0 means everything sits at nominal.
pub fn benefit_traffic_score(shares: &[SlotTraffic]) -> f64 {
    let total: u64 = shares.iter().map(|s| s.bytes).sum();
    if total == 0 {
        return 0.0;
    }
    shares
        .iter()
        .map(|s| {
            let b = (s.vdd_reduction / MAX_VDD_REDUCTION) as f64
                + (s.trcd_reduction_ns / MAX_TRCD_REDUCTION_NS) as f64;
            b * s.bytes as f64 / total as f64
        })
        .sum()
}

/// Tuning knobs of [`multi_module_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiModuleConfig {
    /// Local-search rounds after the greedy seed (0 = greedy only). Each
    /// round scores every single-site move and pairwise swap in parallel and
    /// applies the best strict improvement; the search stops early once no
    /// candidate improves the score.
    pub max_rounds: usize,
}

impl Default for MultiModuleConfig {
    fn default() -> Self {
        Self { max_rounds: 8 }
    }
}

impl PlacementPlan {
    /// Fraction of the DNN's bytes placed in reduced-parameter partitions.
    pub fn mapped_fraction(&self, precision: Precision) -> f64 {
        let mapped: u64 = self
            .placements
            .iter()
            .map(|p| p.data.bytes(precision))
            .sum();
        let unmapped: u64 = self.unmapped.iter().map(|d| d.bytes(precision)).sum();
        if mapped + unmapped == 0 {
            return 0.0;
        }
        mapped as f64 / (mapped + unmapped) as f64
    }

    /// The plan's per-slot traffic, one entry per *used* slot in module-major
    /// order — the input to a plan cost model.
    pub fn traffic_shares(&self, system: &MemorySystem, precision: Precision) -> Vec<SlotTraffic> {
        let mut bytes: Vec<Vec<u64>> = system
            .modules()
            .iter()
            .map(|m| vec![0u64; m.partition_count()])
            .collect();
        for placement in &self.placements {
            for span in &placement.spans {
                bytes[span.module][span.partition] +=
                    (span.values as u64 * precision.bits() as u64).div_ceil(8);
            }
        }
        let mut shares = Vec::new();
        for (m, p) in system.slots() {
            let Some(op_idx) = self.partition_ops[m][p] else {
                continue;
            };
            let op = system.module(m).operating_points()[op_idx];
            shares.push(SlotTraffic {
                bytes: bytes[m][p],
                vdd_reduction: op.vdd_reduction(),
                trcd_reduction_ns: op.trcd_reduction_ns(),
            });
        }
        shares
    }

    /// Lowers the plan onto a memory: every mapped site becomes a span
    /// placement whose spans read from their module's simulated device at
    /// their partition's chosen operating point. Unmapped sites are left
    /// untouched — apply plans to a reliable (default-error-free) memory so
    /// they stay at nominal parameters, as the plan semantics require.
    pub fn apply_to(&self, memory: &mut ApproximateMemory, system: &MemorySystem) {
        for placement in &self.placements {
            let spans: Vec<PlacedSpan> = placement
                .spans
                .iter()
                .map(|ps| {
                    let module = system.module(ps.module);
                    let op_idx = self.partition_ops[ps.module][ps.partition]
                        .expect("plan span in a partition with no operating point");
                    PlacedSpan {
                        injector: Injector::from_device(
                            *module.device(),
                            module.partitions()[ps.partition],
                            module.operating_points()[op_idx],
                        ),
                        start_value: ps.start_value,
                        values: ps.values,
                        layout: Layout::new(module.device().geometry().row_bits(), ps.base_row),
                    }
                })
                .collect();
            memory.assign_site_spans(placement.data.site.clone(), spans);
        }
    }

    /// First network layer a lowering of this plan could corrupt — the
    /// plan-level mirror of [`ApproximateMemory::first_dirty_layer`], equal
    /// to it on any reliable memory the plan was
    /// [`apply_to`](PlacementPlan::apply_to)'d, without having to lower the
    /// plan first.
    ///
    /// A placement is dirty iff any of its spans runs at an operating point
    /// whose device injector is not provably clean. Note that vendor BER
    /// curves keep a small nonzero error floor even at nominal parameters,
    /// so device-backed spans are conservatively dirty unless their curve
    /// reports exactly zero — correctness over resume reach. Unmapped sites
    /// live in nominal (error-free) memory and never dirty a layer. Returns
    /// `num_layers` when every span is clean — the whole forward pass is
    /// checkpoint-resumable.
    pub fn first_dirty_layer(&self, system: &MemorySystem, num_layers: usize) -> usize {
        let mut first = num_layers;
        for placement in &self.placements {
            if placement.data.site.layer_index >= first {
                continue;
            }
            let dirty = placement.spans.iter().any(|ps| {
                let module = system.module(ps.module);
                let op_idx = self.partition_ops[ps.module][ps.partition]
                    .expect("plan span in a partition with no operating point");
                !Injector::from_device(
                    *module.device(),
                    module.partitions()[ps.partition],
                    module.operating_points()[op_idx],
                )
                .is_provably_clean()
            });
            if dirty {
                first = placement.data.site.layer_index;
            }
        }
        first
    }

    /// Classification accuracy of the session's network with this plan's
    /// data served from the system's reduced-parameter partitions: lowers
    /// the plan onto a reliable memory seeded with `seed` ([`apply_to`](
    /// `PlacementPlan::apply_to`)) and evaluates through
    /// [`EvalSession::evaluate_concurrent`].
    ///
    /// This is the scoring probe a plan search runs many times per plan
    /// candidate, and it inherits the session's incremental re-evaluation:
    /// plans whose dirty placements start deep in the network resume every
    /// sample from a checkpointed boundary activation and re-execute only
    /// the suffix, bit-identical to the full forward pass.
    pub fn accuracy(
        &self,
        session: &EvalSession<'_>,
        system: &MemorySystem,
        samples: &[(Tensor, usize)],
        seed: u64,
    ) -> f32 {
        let mut memory = ApproximateMemory::reliable(seed);
        self.apply_to(&mut memory, system);
        session.evaluate_concurrent(samples, &mut memory)
    }
}

/// The fixed slot table of one search: per `(module, partition)`, the row
/// capacity and row geometry placement math needs.
struct SlotInfo {
    module: usize,
    partition: usize,
    cap_rows: u64,
    row_bits: u64,
}

impl SlotInfo {
    fn rows_for(&self, values: usize, bits: u32) -> u64 {
        (values as u64 * bits as u64).div_ceil(self.row_bits).max(1)
    }

    fn values_fitting(&self, free_rows: u64, bits: u32) -> usize {
        (free_rows * self.row_bits / bits as u64) as usize
    }
}

/// Search state: per sorted-site index, the `(slot, values)` pieces the site
/// occupies (`None` = unmapped). Everything else — used rows, per-slot
/// operating points, traffic — is derived.
#[derive(Clone)]
struct SearchState {
    pieces: Vec<Option<Vec<(usize, usize)>>>,
}

/// Derived view of a feasible state.
struct DerivedState {
    /// Chosen operating-point index per slot (`None` = unused).
    ops: Vec<Option<usize>>,
}

/// The most beneficial operating point of `slot` whose BER every resident
/// tolerates (`min_tol`), or `None` if the module offers no such point.
fn slot_op(system: &MemorySystem, slot: &SlotInfo, min_tol: f64) -> Option<usize> {
    let module = system.module(slot.module);
    let mut best: Option<(usize, f64)> = None;
    for (o_idx, op) in module.operating_points().iter().enumerate() {
        if module.ber(slot.partition, o_idx) <= min_tol {
            let b = benefit(op);
            if best.map(|(_, bb)| b > bb).unwrap_or(true) {
                best = Some((o_idx, b));
            }
        }
    }
    best.map(|(o, _)| o)
}

/// Recomputes capacity usage and per-slot operating points of a state;
/// `None` if any slot overflows or hosts data no operating point satisfies.
fn derive_state(
    state: &SearchState,
    sorted: &[(DataTypeInfo, f64)],
    system: &MemorySystem,
    slots: &[SlotInfo],
    bits: u32,
) -> Option<DerivedState> {
    let mut used_rows = vec![0u64; slots.len()];
    let mut min_tol = vec![f64::INFINITY; slots.len()];
    for (i, pieces) in state.pieces.iter().enumerate() {
        let Some(pieces) = pieces else { continue };
        for &(s, values) in pieces {
            used_rows[s] += slots[s].rows_for(values, bits);
            min_tol[s] = min_tol[s].min(sorted[i].1);
        }
    }
    let mut ops = vec![None; slots.len()];
    for (s, slot) in slots.iter().enumerate() {
        if used_rows[s] > slot.cap_rows {
            return None;
        }
        if min_tol[s].is_finite() {
            ops[s] = Some(slot_op(system, slot, min_tol[s])?);
        }
    }
    Some(DerivedState { ops })
}

/// Scores a feasible state with the caller's cost model.
fn score_state(
    state: &SearchState,
    derived: &DerivedState,
    system: &MemorySystem,
    slots: &[SlotInfo],
    bits: u32,
    score: &(dyn Fn(&[SlotTraffic]) -> f64 + Sync),
) -> f64 {
    let mut bytes = vec![0u64; slots.len()];
    for pieces in state.pieces.iter().flatten() {
        for &(s, values) in pieces {
            bytes[s] += (values as u64 * bits as u64).div_ceil(8);
        }
    }
    let shares: Vec<SlotTraffic> = slots
        .iter()
        .enumerate()
        .filter_map(|(s, slot)| {
            let op_idx = derived.ops[s]?;
            let op = system.module(slot.module).operating_points()[op_idx];
            Some(SlotTraffic {
                bytes: bytes[s],
                vdd_reduction: op.vdd_reduction(),
                trcd_reduction_ns: op.trcd_reduction_ns(),
            })
        })
        .collect();
    score(&shares)
}

/// A local-search candidate: move one site to another slot, or swap the
/// slots of two sites. Only whole single-piece sites move — split sites are
/// pinned where capacity forced them.
#[derive(Clone, Copy)]
enum Candidate {
    Move { site: usize, to: usize },
    Swap { a: usize, b: usize },
}

/// Multi-module fine-grained mapping: Algorithm 1 generalized across a
/// [`MemorySystem`], with capacity spill and a deterministic parallel local
/// search.
///
/// The greedy seed processes data types from least to most tolerant (as
/// [`fine_map`] does) over every `(module, partition)` slot of the system,
/// splitting a site across several slots when no single partition has room.
/// `config.max_rounds` rounds of local search then move/swap whole sites
/// between slots, keeping any strict improvement of `score` (per-slot
/// operating points are re-derived from the residents' tolerances after
/// every candidate move, so BER feasibility is a hard constraint
/// throughout). Candidates are enumerated and applied in a fixed order and
/// scored via [`eden_par::par_map`], so the result is a pure function of
/// the inputs — never of thread count.
pub fn multi_module_map(
    characterization: &FineCharacterization,
    system: &MemorySystem,
    precision: Precision,
    config: &MultiModuleConfig,
    score: &(dyn Fn(&[SlotTraffic]) -> f64 + Sync),
) -> PlacementPlan {
    let bits = precision.bits();
    let mut sorted: Vec<(DataTypeInfo, f64)> = characterization.tolerances.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let slots: Vec<SlotInfo> = system
        .slots()
        .map(|(m, p)| {
            let module = system.module(m);
            let row_bits = module.device().geometry().row_bits() as u64;
            SlotInfo {
                module: m,
                partition: p,
                cap_rows: module.partitions()[p].capacity_bytes * 8 / row_bits,
                row_bits,
            }
        })
        .collect();

    // --- Greedy seed -----------------------------------------------------
    let mut state = SearchState {
        pieces: vec![None; sorted.len()],
    };
    let mut used_rows = vec![0u64; slots.len()];
    let mut min_tol = vec![f64::INFINITY; slots.len()];
    for (i, &(ref data, tol)) in sorted.iter().enumerate() {
        // Rank slots by the benefit of the operating point they would run at
        // with this site (and its stricter predecessors) resident.
        let mut ranked: Vec<(usize, f64)> = slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| {
                let op = slot_op(system, slot, min_tol[s].min(tol))?;
                Some((
                    s,
                    benefit(&system.module(slot.module).operating_points()[op]),
                ))
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        // Fill across ranked slots, spilling to the next when one runs out
        // of rows.
        let mut remaining = data.elements;
        let mut pieces: Vec<(usize, usize)> = Vec::new();
        for &(s, _) in &ranked {
            if remaining == 0 {
                break;
            }
            let free = slots[s].cap_rows - used_rows[s];
            let take = remaining.min(slots[s].values_fitting(free, bits));
            if take == 0 {
                continue;
            }
            pieces.push((s, take));
            used_rows[s] += slots[s].rows_for(take, bits);
            remaining -= take;
        }
        if remaining > 0 {
            // Roll the partial fill back; the site stays in nominal memory.
            for &(s, take) in &pieces {
                used_rows[s] -= slots[s].rows_for(take, bits);
            }
            continue;
        }
        for &(s, _) in &pieces {
            min_tol[s] = min_tol[s].min(tol);
        }
        state.pieces[i] = Some(pieces);
    }

    // --- Local search ----------------------------------------------------
    let derived =
        derive_state(&state, &sorted, system, &slots, bits).expect("greedy seed must be feasible");
    let mut best_score = score_state(&state, &derived, system, &slots, bits, score);
    for _ in 0..config.max_rounds {
        let mut candidates: Vec<Candidate> = Vec::new();
        let single_slot: Vec<Option<usize>> = state
            .pieces
            .iter()
            .map(|p| match p.as_deref() {
                Some([(s, _)]) => Some(*s),
                _ => None,
            })
            .collect();
        for (i, &cur) in single_slot.iter().enumerate() {
            let Some(cur) = cur else { continue };
            for s in 0..slots.len() {
                if s != cur {
                    candidates.push(Candidate::Move { site: i, to: s });
                }
            }
            for (j, &other) in single_slot.iter().enumerate().skip(i + 1) {
                if other.is_some_and(|o| o != cur) {
                    candidates.push(Candidate::Swap { a: i, b: j });
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        let scores = eden_par::par_map(&candidates, |_, cand| {
            let mut trial = state.clone();
            match *cand {
                Candidate::Move { site, to } => {
                    let values = sorted[site].0.elements;
                    trial.pieces[site] = Some(vec![(to, values)]);
                }
                Candidate::Swap { a, b } => {
                    let (sa, sb) = (single_slot[a].unwrap(), single_slot[b].unwrap());
                    trial.pieces[a] = Some(vec![(sb, sorted[a].0.elements)]);
                    trial.pieces[b] = Some(vec![(sa, sorted[b].0.elements)]);
                }
            }
            derive_state(&trial, &sorted, system, &slots, bits)
                .map(|d| score_state(&trial, &d, system, &slots, bits, score))
        });
        // Keep the best strict improvement; ties break towards the earliest
        // candidate, so the accepted move is order-independent.
        let mut accepted: Option<(usize, f64)> = None;
        for (idx, s) in scores.iter().enumerate() {
            let Some(s) = s else { continue };
            if *s > best_score + 1e-12 && accepted.map(|(_, bs)| *s > bs).unwrap_or(true) {
                accepted = Some((idx, *s));
            }
        }
        let Some((idx, new_score)) = accepted else {
            break;
        };
        match candidates[idx] {
            Candidate::Move { site, to } => {
                state.pieces[site] = Some(vec![(to, sorted[site].0.elements)]);
            }
            Candidate::Swap { a, b } => {
                let (sa, sb) = (single_slot[a].unwrap(), single_slot[b].unwrap());
                state.pieces[a] = Some(vec![(sb, sorted[a].0.elements)]);
                state.pieces[b] = Some(vec![(sa, sorted[b].0.elements)]);
            }
        }
        best_score = new_score;
    }

    // --- Materialize the plan -------------------------------------------
    let derived = derive_state(&state, &sorted, system, &slots, bits)
        .expect("accepted states are feasible by construction");
    let mut row_cursor = vec![0u64; slots.len()];
    let mut placements = Vec::new();
    let mut unmapped = Vec::new();
    for (i, pieces) in state.pieces.iter().enumerate() {
        let (data, tol) = &sorted[i];
        let Some(pieces) = pieces else {
            unmapped.push(data.clone());
            continue;
        };
        let mut start_value = 0usize;
        let spans = pieces
            .iter()
            .map(|&(s, values)| {
                let span = PlanSpan {
                    module: slots[s].module,
                    partition: slots[s].partition,
                    base_row: row_cursor[s] as usize,
                    start_value,
                    values,
                };
                row_cursor[s] += slots[s].rows_for(values, bits);
                start_value += values;
                span
            })
            .collect();
        placements.push(SitePlacement {
            data: data.clone(),
            tolerable_ber: *tol,
            spans,
        });
    }
    let mut partition_ops: Vec<Vec<Option<usize>>> = system
        .modules()
        .iter()
        .map(|m| vec![None; m.partition_count()])
        .collect();
    for (s, slot) in slots.iter().enumerate() {
        partition_ops[slot.module][slot.partition] = derived.ops[s];
    }
    PlacementPlan {
        placements,
        unmapped,
        partition_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::{DataKind, DataSite};
    use eden_dram::characterize::CharacterizeConfig;
    use eden_dram::geometry::{partitions, DramGeometry, Partition, PartitionGranularity};
    use eden_dram::{ApproxDramDevice, DramModule, Vendor};

    #[test]
    fn coarse_map_reproduces_table3_correspondence() {
        let vendor = Vendor::A.profile();
        // 0.5% BER → −0.10 V / −1.0 ns (SqueezeNet row of Table 3).
        let squeeze = coarse_map(0.005, &vendor);
        assert!(
            (squeeze.vdd_reduction - 0.10).abs() < 0.051,
            "{:?}",
            squeeze
        );
        assert!(
            (squeeze.trcd_reduction_ns - 1.0).abs() < 0.51,
            "{:?}",
            squeeze
        );
        // 4% BER → about −0.30 V / −5.5 ns (ResNet row).
        let resnet = coarse_map(0.04, &vendor);
        assert!((resnet.vdd_reduction - 0.30).abs() < 0.051, "{:?}", resnet);
        assert!(
            (resnet.trcd_reduction_ns - 5.5).abs() < 0.51,
            "{:?}",
            resnet
        );
        // 5% BER → about −0.35 V / −6.0 ns (VGG/YOLO rows).
        let vgg = coarse_map(0.05, &vendor);
        assert!((vgg.vdd_reduction - 0.35).abs() < 0.051, "{:?}", vgg);
        assert!((vgg.trcd_reduction_ns - 6.0).abs() < 0.51, "{:?}", vgg);
    }

    #[test]
    fn higher_tolerance_never_reduces_the_reductions() {
        let vendor = Vendor::A.profile();
        let mut prev = coarse_map(0.001, &vendor);
        for ber in [0.005, 0.01, 0.02, 0.04, 0.08] {
            let cur = coarse_map(ber, &vendor);
            assert!(cur.vdd_reduction >= prev.vdd_reduction);
            assert!(cur.trcd_reduction_ns >= prev.trcd_reduction_ns);
            prev = cur;
        }
    }

    #[test]
    fn dipped_curve_recovers_the_deeper_passing_reduction() {
        // A synthetic measured curve with a local bump at 0.10 V that dips
        // back under the budget at 0.15 V before failing for good: the sweep
        // must report 0.15, not stop at 0.05 (the pre-fix behavior).
        let dipped = |dv: f32| -> f64 {
            match (dv * 100.0).round() as i32 {
                5 => 1e-6,
                10 => 2e-2, // bump above the 5e-3 budget
                15 => 4e-3, // dips back under
                _ => 8e-2,  // fails for good beyond
            }
        };
        let best = largest_passing_reduction(0.05, 0.60, 5e-3, dipped);
        assert!((best - 0.15).abs() < 1e-6, "got {best}");
        // A tolerance below every point maps to no reduction at all.
        assert_eq!(largest_passing_reduction(0.05, 0.60, 1e-9, dipped), 0.0);
        // Monotone curves are unaffected: the largest passing step wins.
        let monotone = |dv: f32| (dv as f64) * 0.1;
        let best = largest_passing_reduction(0.05, 0.60, 0.021, monotone);
        assert!((best - 0.20).abs() < 1e-6, "got {best}");
    }

    #[test]
    fn fine_step_sweep_probes_exact_grid_multiples() {
        // A fine sweep (1 mV steps) must probe exact grid multiples and
        // report the deepest one. The former `d += step` accumulation
        // drifted off the grid after hundreds of f32 additions, probing
        // slightly-off reductions and returning an accumulated sum instead
        // of `step * i`.
        use std::cell::RefCell;
        let step = 1e-3f32;
        let probes = RefCell::new(Vec::new());
        let best = largest_passing_reduction(step, 0.35, 1.0, |d| {
            probes.borrow_mut().push(d);
            0.0
        });
        let probes = probes.into_inner();
        assert_eq!(probes.len(), 349);
        for (i, d) in probes.iter().enumerate() {
            assert_eq!(d.to_bits(), (step * (i + 1) as f32).to_bits());
        }
        assert_eq!(best.to_bits(), (step * 349.0).to_bits());
    }

    #[test]
    fn zero_tolerance_maps_to_nominal_parameters() {
        let m = coarse_map(0.0, &Vendor::A.profile());
        assert_eq!(m.vdd_reduction, 0.0);
        assert_eq!(m.trcd_reduction_ns, 0.0);
        assert!(m.operating_point.is_nominal());
    }

    fn synthetic_characterization() -> FineCharacterization {
        // Three data types with increasing tolerance.
        let mk = |i: usize, kind, elements, ber| {
            (
                DataTypeInfo {
                    site: DataSite::new(i, format!("layer{i}"), kind),
                    elements,
                },
                ber,
            )
        };
        FineCharacterization {
            baseline_accuracy: 0.9,
            accuracy_floor: 0.89,
            tolerances: vec![
                mk(0, DataKind::Weight, 4096, 1e-4),
                mk(1, DataKind::Ifm, 2048, 5e-3),
                mk(2, DataKind::Weight, 1024, 5e-2),
            ],
        }
    }

    fn device_profile() -> DramErrorProfile {
        let device = ApproxDramDevice::new(Vendor::A, 3);
        let parts = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank);
        let ops = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.10),
            OperatingPoint::with_vdd_reduction(0.25),
            OperatingPoint::with_vdd_reduction(0.35),
        ];
        DramErrorProfile::characterize(
            &device,
            &parts[..4],
            &ops,
            &CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 256,
                reads_per_row: 2,
                seed: 1,
            },
        )
    }

    #[test]
    fn fine_mapping_places_every_data_type() {
        let mapping = fine_map(
            &synthetic_characterization(),
            &device_profile(),
            Precision::Int8,
        );
        assert_eq!(mapping.assignments.len(), 3);
        assert!(mapping.unmapped.is_empty());
        assert!(mapping.mapped_fraction(Precision::Int8) > 0.999);
    }

    #[test]
    fn tolerant_data_lands_in_more_aggressive_partitions() {
        let profile = device_profile();
        let mapping = fine_map(&synthetic_characterization(), &profile, Precision::Int8);
        let op_reduction = |a: &Assignment| profile.operating_points[a.op_index].vdd_reduction();
        let strict = mapping
            .assignments
            .iter()
            .find(|a| a.tolerable_ber == 1e-4)
            .unwrap();
        let tolerant = mapping
            .assignments
            .iter()
            .find(|a| a.tolerable_ber == 5e-2)
            .unwrap();
        assert!(
            op_reduction(tolerant) >= op_reduction(strict),
            "more tolerant data should run at least as aggressively"
        );
        // Every assignment respects its BER budget.
        for a in &mapping.assignments {
            assert!(profile.ber(a.partition_index, a.op_index) <= a.tolerable_ber);
        }
    }

    /// `n` artificial partitions of `capacity_bytes` each, one subarray per
    /// partition so characterization probes distinct base rows.
    fn small_partitions(n: usize, capacity_bytes: u64) -> Vec<Partition> {
        (0..n)
            .map(|i| Partition {
                index: i,
                bank: i,
                first_subarray: 0,
                subarrays: 1,
                capacity_bytes,
            })
            .collect()
    }

    /// Two modules (vendors A and B) with two small partitions each: module
    /// 0 offers voltage reductions, module 1 `tRCD` reductions.
    fn tiny_system(capacity_bytes: u64) -> MemorySystem {
        let cfg = CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 128,
            reads_per_row: 1,
            seed: 7,
        };
        let ops_a = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.10),
            OperatingPoint::with_vdd_reduction(0.30),
        ];
        let ops_b = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_trcd_reduction(2.0),
            OperatingPoint::with_trcd_reduction(5.0),
        ];
        MemorySystem::new(vec![
            DramModule::characterize(
                ApproxDramDevice::new(Vendor::A, 21),
                &small_partitions(2, capacity_bytes),
                &ops_a,
                &cfg,
            ),
            DramModule::characterize(
                ApproxDramDevice::new(Vendor::B, 22),
                &small_partitions(2, capacity_bytes),
                &ops_b,
                &cfg,
            ),
        ])
    }

    #[test]
    fn multi_module_plan_covers_every_site_within_ber_budgets() {
        let system = tiny_system(8192);
        let plan = multi_module_map(
            &synthetic_characterization(),
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );
        assert_eq!(plan.placements.len(), 3);
        assert!(plan.unmapped.is_empty());
        assert!(plan.mapped_fraction(Precision::Int8) > 0.999);
        for placement in &plan.placements {
            // Spans tile the site's values contiguously from 0.
            let mut next = 0usize;
            for span in &placement.spans {
                assert_eq!(span.start_value, next);
                assert!(span.values > 0);
                next += span.values;
                // Every span respects its partition's BER at the chosen op.
                let op = plan.partition_ops[span.module][span.partition].unwrap();
                assert!(
                    system.module(span.module).ber(span.partition, op) <= placement.tolerable_ber
                );
            }
            assert_eq!(next, placement.data.elements);
        }
    }

    #[test]
    fn multi_module_search_is_deterministic() {
        let system = tiny_system(8192);
        let plan = |rounds| {
            multi_module_map(
                &synthetic_characterization(),
                &system,
                Precision::Int8,
                &MultiModuleConfig { max_rounds: rounds },
                &benefit_traffic_score,
            )
        };
        assert_eq!(plan(8), plan(8));
        // The local search never scores worse than the greedy seed.
        let greedy = plan(0);
        let searched = plan(8);
        let score =
            |p: &PlacementPlan| benefit_traffic_score(&p.traffic_shares(&system, Precision::Int8));
        assert!(score(&searched) >= score(&greedy) - 1e-12);
    }

    #[test]
    fn capacity_pressure_splits_sites_across_partitions() {
        // Each partition holds 2048 bytes = 2048 Int8 values, so the
        // 4096-element site cannot live in one partition: the plan must
        // split it into multiple spans, possibly across modules.
        let system = tiny_system(2048);
        let plan = multi_module_map(
            &synthetic_characterization(),
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );
        assert!(plan.unmapped.is_empty());
        let big = plan
            .placements
            .iter()
            .find(|p| p.data.elements == 4096)
            .unwrap();
        assert!(
            big.spans.len() >= 2,
            "expected a split, got {:?}",
            big.spans
        );
        let distinct: std::collections::HashSet<(usize, usize)> =
            big.spans.iter().map(|s| (s.module, s.partition)).collect();
        assert_eq!(distinct.len(), big.spans.len(), "spans share a partition");
    }

    #[test]
    fn plan_first_dirty_layer_matches_the_lowered_memory() {
        let system = tiny_system(8192);
        let plan = multi_module_map(
            &synthetic_characterization(),
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );
        // The plan-level prediction must agree with the memory-level query
        // after lowering, at every depth.
        let mut memory = ApproximateMemory::reliable(0);
        plan.apply_to(&mut memory, &system);
        for depth in [0, 1, 2, 3, 8] {
            assert_eq!(
                plan.first_dirty_layer(&system, depth),
                memory.first_dirty_layer(depth),
                "plan and lowered memory disagree at depth {depth}"
            );
        }
    }

    #[test]
    fn nominal_device_spans_are_conservatively_dirty() {
        // Vendor curves keep a ~1e-9 error floor even at nominal parameters,
        // so a device-backed span is never *provably* clean: an all-nominal
        // plan must still report its lowest mapped layer as dirty, and agree
        // with the lowered memory about it.
        let system = tiny_system(8192);
        let mut plan = multi_module_map(
            &synthetic_characterization(),
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );
        for module_ops in &mut plan.partition_ops {
            for op in module_ops.iter_mut().filter(|op| op.is_some()) {
                *op = Some(0); // index 0 is nominal in `tiny_system`
            }
        }
        assert_eq!(plan.first_dirty_layer(&system, 8), 0);
        let mut memory = ApproximateMemory::reliable(0);
        plan.apply_to(&mut memory, &system);
        assert_eq!(memory.first_dirty_layer(8), 0);
    }

    #[test]
    fn plan_accuracy_matches_manual_lowering_bit_for_bit() {
        use eden_dnn::data::SyntheticVision;
        use eden_dnn::train::{TrainConfig, Trainer};
        use eden_dnn::{zoo, Dataset};

        let dataset = SyntheticVision::tiny(3);
        let mut net = zoo::lenet(&dataset.spec(), 3);
        Trainer::new(TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        })
        .train(&mut net, &dataset);

        // Characterize the real network's sites so the plan's layer indices
        // line up with the network the session evaluates.
        let tolerances: Vec<(DataTypeInfo, f64)> = net
            .data_sites()
            .into_iter()
            .map(|info| (info, 5e-3))
            .collect();
        let characterization = FineCharacterization {
            baseline_accuracy: 0.9,
            accuracy_floor: 0.89,
            tolerances,
        };
        let system = tiny_system(1 << 20);
        let plan = multi_module_map(
            &characterization,
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );

        let session = crate::session::EvalSession::new(
            &net,
            Precision::Int8,
            crate::inference::InferenceBackend::SimulatedF32,
        );
        let samples = &dataset.test()[..8];
        let via_helper = plan.accuracy(&session, &system, samples, 11);
        let mut memory = ApproximateMemory::reliable(11);
        plan.apply_to(&mut memory, &system);
        let manual = session.evaluate_concurrent(samples, &mut memory);
        assert_eq!(via_helper.to_bits(), manual.to_bits());
    }

    #[test]
    fn oversubscribed_system_leaves_leftovers_unmapped() {
        // Total capacity 4 × 512 bytes cannot hold 7168 bytes of data: the
        // most tolerant sites keep their placements (strict data is placed
        // first and benefits most from protection), the rest spill to
        // nominal memory.
        let system = tiny_system(512);
        let plan = multi_module_map(
            &synthetic_characterization(),
            &system,
            Precision::Int8,
            &MultiModuleConfig::default(),
            &benefit_traffic_score,
        );
        assert!(!plan.unmapped.is_empty());
        let placed: usize = plan
            .placements
            .iter()
            .flat_map(|p| p.spans.iter())
            .map(|s| s.values)
            .sum();
        assert!(placed <= 4 * 512, "placed {placed} values in 2048 bytes");
    }

    #[test]
    fn intolerant_data_is_left_unmapped_when_no_partition_qualifies() {
        // A characterization whose only data type tolerates essentially no
        // errors cannot be mapped to any reduced-parameter partition unless
        // the profile includes the nominal point — remove it to force the
        // unmapped path.
        let mut profile = device_profile();
        profile.operating_points.remove(0);
        for row in &mut profile.ber {
            row.remove(0);
        }
        let characterization = FineCharacterization {
            baseline_accuracy: 0.9,
            accuracy_floor: 0.89,
            tolerances: vec![(
                DataTypeInfo {
                    site: DataSite::new(0, "fragile", DataKind::Weight),
                    elements: 128,
                },
                1e-12,
            )],
        };
        let mapping = fine_map(&characterization, &profile, Precision::Int8);
        assert_eq!(mapping.assignments.len(), 0);
        assert_eq!(mapping.unmapped.len(), 1);
    }
}
