//! DNN→DRAM mapping (Section 3.4).
//!
//! * **Coarse-grained**: pick the single most aggressive voltage and `tRCD`
//!   reduction whose module-level BER stays below the DNN's maximum
//!   tolerable BER (the ΔVDD / ΔtRCD columns of Table 3).
//! * **Fine-grained (Algorithm 1)**: place every DNN data type into the DRAM
//!   partition with the largest parameter reduction whose BER it tolerates
//!   and which still has space, tracking per-partition operating points
//!   (Figure 12).

use crate::characterize::FineCharacterization;
use eden_dnn::network::DataTypeInfo;
use eden_dram::characterize::DramErrorProfile;
use eden_dram::params::{NOMINAL_TRCD_NS, NOMINAL_VDD};
use eden_dram::vendor::VendorProfile;
use eden_dram::OperatingPoint;
use eden_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Voltage step used when sweeping candidate reductions (volts).
pub const VDD_STEP: f32 = 0.05;
/// `tRCD` step used when sweeping candidate reductions (nanoseconds).
pub const TRCD_STEP: f32 = 0.5;

/// Result of coarse-grained mapping: one operating point for the module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseMapping {
    /// The DNN's maximum tolerable BER (from coarse characterization).
    pub max_tolerable_ber: f64,
    /// Largest voltage reduction whose BER stays below the tolerable BER.
    pub vdd_reduction: f32,
    /// Largest `tRCD` reduction whose BER stays below the tolerable BER.
    pub trcd_reduction_ns: f32,
    /// The combined operating point (voltage reduction applied for energy
    /// experiments, `tRCD` reduction for performance experiments).
    pub operating_point: OperatingPoint,
}

/// Scans the full reduction sweep `[step, limit)` and returns the **largest**
/// reduction whose BER stays within `tolerable` — deliberately *not* stopping
/// at the first failing step: measured (or interpolated) vendor curves can
/// dip back under the budget after a local bump, and an early `break` would
/// under-report the achievable reduction for such non-monotonic curves.
fn largest_passing_reduction(
    step: f32,
    limit: f32,
    tolerable: f64,
    ber_at: impl Fn(f32) -> f64,
) -> f32 {
    let mut best = 0.0f32;
    let mut d = step;
    while d < limit {
        if ber_at(d) <= tolerable {
            best = d;
        }
        d += step;
    }
    best
}

/// Finds the most aggressive ΔVDD and ΔtRCD a DNN tolerates on a vendor's
/// DRAM (Table 3). Each reduction is chosen independently, as in the paper's
/// energy (voltage) and performance (latency) evaluations; each sweep scans
/// its full range so non-monotonic dips in the vendor curve cannot hide a
/// deeper passing operating point.
pub fn coarse_map(max_tolerable_ber: f64, vendor: &VendorProfile) -> CoarseMapping {
    let vdd_reduction =
        largest_passing_reduction(VDD_STEP, NOMINAL_VDD - 0.5, max_tolerable_ber, |dv| {
            vendor.ber_voltage(dv)
        });
    let trcd_reduction =
        largest_passing_reduction(TRCD_STEP, NOMINAL_TRCD_NS - 1.0, max_tolerable_ber, |dt| {
            vendor.ber_trcd(dt)
        });
    CoarseMapping {
        max_tolerable_ber,
        vdd_reduction,
        trcd_reduction_ns: trcd_reduction,
        operating_point: OperatingPoint::with_reductions(vdd_reduction, trcd_reduction),
    }
}

/// One data type placed into one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The data type.
    pub data: DataTypeInfo,
    /// Tolerable BER of the data type.
    pub tolerable_ber: f64,
    /// Index of the partition it was placed in.
    pub partition_index: usize,
    /// Index (into the profile's operating points) the partition runs at.
    pub op_index: usize,
}

/// Result of fine-grained mapping (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineMapping {
    /// Successful placements.
    pub assignments: Vec<Assignment>,
    /// Data types that did not fit in any suitable partition; they must be
    /// stored in a DRAM module operating at nominal parameters.
    pub unmapped: Vec<DataTypeInfo>,
    /// Chosen operating-point index per partition (`None` = unused).
    pub partition_ops: Vec<Option<usize>>,
}

impl FineMapping {
    /// Fraction of mapped bytes placed in partitions running below nominal
    /// parameters.
    pub fn mapped_fraction(&self, precision: Precision) -> f64 {
        let mapped: u64 = self
            .assignments
            .iter()
            .map(|a| a.data.bytes(precision))
            .sum();
        let unmapped: u64 = self.unmapped.iter().map(|d| d.bytes(precision)).sum();
        if mapped + unmapped == 0 {
            return 0.0;
        }
        mapped as f64 / (mapped + unmapped) as f64
    }
}

/// Benefit score of an operating point: how much its parameters are reduced
/// relative to the most aggressive reductions EDEN considers. Algorithm 1
/// picks the partition/operating point with the highest benefit that still
/// meets the data type's BER requirement.
fn benefit(op: &OperatingPoint) -> f64 {
    (op.vdd_reduction() / 0.35) as f64 + (op.trcd_reduction_ns() / 6.0) as f64
}

/// Fine-grained DNN→DRAM mapping (Algorithm 1 of the paper).
///
/// Data types are processed from least to most error tolerant, so the
/// operating point of each partition is constrained by the strictest data
/// assigned to it.
pub fn fine_map(
    characterization: &FineCharacterization,
    profile: &DramErrorProfile,
    precision: Precision,
) -> FineMapping {
    let mut sorted: Vec<(DataTypeInfo, f64)> = characterization.tolerances.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut remaining_bytes: Vec<u64> = profile
        .partitions
        .iter()
        .map(|p| p.capacity_bytes)
        .collect();
    let mut partition_ops: Vec<Option<usize>> = vec![None; profile.partition_count()];
    let mut assignments = Vec::new();
    let mut unmapped = Vec::new();

    for (data, tolerable_ber) in sorted {
        let size = data.bytes(precision);
        let mut best: Option<(usize, usize, f64)> = None; // (partition, op, benefit)
        for (p_idx, partition) in profile.partitions.iter().enumerate() {
            if remaining_bytes[p_idx] < size {
                continue;
            }
            // The candidate operating point for this partition: either the
            // one already imposed by stricter data, or the most beneficial
            // point this data type tolerates.
            let candidate_op = match partition_ops[p_idx] {
                Some(existing) => {
                    if profile.ber(p_idx, existing) <= tolerable_ber {
                        Some(existing)
                    } else {
                        None
                    }
                }
                None => {
                    let mut best_op: Option<(usize, f64)> = None;
                    for (o_idx, op) in profile.operating_points.iter().enumerate() {
                        if profile.ber(p_idx, o_idx) <= tolerable_ber {
                            let b = benefit(op);
                            if best_op.map(|(_, bb)| b > bb).unwrap_or(true) {
                                best_op = Some((o_idx, b));
                            }
                        }
                    }
                    best_op.map(|(o, _)| o)
                }
            };
            let _ = partition;
            if let Some(o_idx) = candidate_op {
                let b = benefit(&profile.operating_points[o_idx]);
                if best.map(|(_, _, bb)| b > bb).unwrap_or(true) {
                    best = Some((p_idx, o_idx, b));
                }
            }
        }
        match best {
            Some((p_idx, o_idx, _)) => {
                remaining_bytes[p_idx] -= size;
                partition_ops[p_idx] = Some(o_idx);
                assignments.push(Assignment {
                    data,
                    tolerable_ber,
                    partition_index: p_idx,
                    op_index: o_idx,
                });
            }
            None => unmapped.push(data),
        }
    }

    FineMapping {
        assignments,
        unmapped,
        partition_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::{DataKind, DataSite};
    use eden_dram::characterize::CharacterizeConfig;
    use eden_dram::geometry::{partitions, DramGeometry, PartitionGranularity};
    use eden_dram::{ApproxDramDevice, Vendor};

    #[test]
    fn coarse_map_reproduces_table3_correspondence() {
        let vendor = Vendor::A.profile();
        // 0.5% BER → −0.10 V / −1.0 ns (SqueezeNet row of Table 3).
        let squeeze = coarse_map(0.005, &vendor);
        assert!(
            (squeeze.vdd_reduction - 0.10).abs() < 0.051,
            "{:?}",
            squeeze
        );
        assert!(
            (squeeze.trcd_reduction_ns - 1.0).abs() < 0.51,
            "{:?}",
            squeeze
        );
        // 4% BER → about −0.30 V / −5.5 ns (ResNet row).
        let resnet = coarse_map(0.04, &vendor);
        assert!((resnet.vdd_reduction - 0.30).abs() < 0.051, "{:?}", resnet);
        assert!(
            (resnet.trcd_reduction_ns - 5.5).abs() < 0.51,
            "{:?}",
            resnet
        );
        // 5% BER → about −0.35 V / −6.0 ns (VGG/YOLO rows).
        let vgg = coarse_map(0.05, &vendor);
        assert!((vgg.vdd_reduction - 0.35).abs() < 0.051, "{:?}", vgg);
        assert!((vgg.trcd_reduction_ns - 6.0).abs() < 0.51, "{:?}", vgg);
    }

    #[test]
    fn higher_tolerance_never_reduces_the_reductions() {
        let vendor = Vendor::A.profile();
        let mut prev = coarse_map(0.001, &vendor);
        for ber in [0.005, 0.01, 0.02, 0.04, 0.08] {
            let cur = coarse_map(ber, &vendor);
            assert!(cur.vdd_reduction >= prev.vdd_reduction);
            assert!(cur.trcd_reduction_ns >= prev.trcd_reduction_ns);
            prev = cur;
        }
    }

    #[test]
    fn dipped_curve_recovers_the_deeper_passing_reduction() {
        // A synthetic measured curve with a local bump at 0.10 V that dips
        // back under the budget at 0.15 V before failing for good: the sweep
        // must report 0.15, not stop at 0.05 (the pre-fix behavior).
        let dipped = |dv: f32| -> f64 {
            match (dv * 100.0).round() as i32 {
                5 => 1e-6,
                10 => 2e-2, // bump above the 5e-3 budget
                15 => 4e-3, // dips back under
                _ => 8e-2,  // fails for good beyond
            }
        };
        let best = largest_passing_reduction(0.05, 0.60, 5e-3, dipped);
        assert!((best - 0.15).abs() < 1e-6, "got {best}");
        // A tolerance below every point maps to no reduction at all.
        assert_eq!(largest_passing_reduction(0.05, 0.60, 1e-9, dipped), 0.0);
        // Monotone curves are unaffected: the largest passing step wins.
        let monotone = |dv: f32| (dv as f64) * 0.1;
        let best = largest_passing_reduction(0.05, 0.60, 0.021, monotone);
        assert!((best - 0.20).abs() < 1e-6, "got {best}");
    }

    #[test]
    fn zero_tolerance_maps_to_nominal_parameters() {
        let m = coarse_map(0.0, &Vendor::A.profile());
        assert_eq!(m.vdd_reduction, 0.0);
        assert_eq!(m.trcd_reduction_ns, 0.0);
        assert!(m.operating_point.is_nominal());
    }

    fn synthetic_characterization() -> FineCharacterization {
        // Three data types with increasing tolerance.
        let mk = |i: usize, kind, elements, ber| {
            (
                DataTypeInfo {
                    site: DataSite::new(i, format!("layer{i}"), kind),
                    elements,
                },
                ber,
            )
        };
        FineCharacterization {
            baseline_accuracy: 0.9,
            accuracy_floor: 0.89,
            tolerances: vec![
                mk(0, DataKind::Weight, 4096, 1e-4),
                mk(1, DataKind::Ifm, 2048, 5e-3),
                mk(2, DataKind::Weight, 1024, 5e-2),
            ],
        }
    }

    fn device_profile() -> DramErrorProfile {
        let device = ApproxDramDevice::new(Vendor::A, 3);
        let parts = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank);
        let ops = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.10),
            OperatingPoint::with_vdd_reduction(0.25),
            OperatingPoint::with_vdd_reduction(0.35),
        ];
        DramErrorProfile::characterize(
            &device,
            &parts[..4],
            &ops,
            &CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 256,
                reads_per_row: 2,
                seed: 1,
            },
        )
    }

    #[test]
    fn fine_mapping_places_every_data_type() {
        let mapping = fine_map(
            &synthetic_characterization(),
            &device_profile(),
            Precision::Int8,
        );
        assert_eq!(mapping.assignments.len(), 3);
        assert!(mapping.unmapped.is_empty());
        assert!(mapping.mapped_fraction(Precision::Int8) > 0.999);
    }

    #[test]
    fn tolerant_data_lands_in_more_aggressive_partitions() {
        let profile = device_profile();
        let mapping = fine_map(&synthetic_characterization(), &profile, Precision::Int8);
        let op_reduction = |a: &Assignment| profile.operating_points[a.op_index].vdd_reduction();
        let strict = mapping
            .assignments
            .iter()
            .find(|a| a.tolerable_ber == 1e-4)
            .unwrap();
        let tolerant = mapping
            .assignments
            .iter()
            .find(|a| a.tolerable_ber == 5e-2)
            .unwrap();
        assert!(
            op_reduction(tolerant) >= op_reduction(strict),
            "more tolerant data should run at least as aggressively"
        );
        // Every assignment respects its BER budget.
        for a in &mapping.assignments {
            assert!(profile.ber(a.partition_index, a.op_index) <= a.tolerable_ber);
        }
    }

    #[test]
    fn intolerant_data_is_left_unmapped_when_no_partition_qualifies() {
        // A characterization whose only data type tolerates essentially no
        // errors cannot be mapped to any reduced-parameter partition unless
        // the profile includes the nominal point — remove it to force the
        // unmapped path.
        let mut profile = device_profile();
        profile.operating_points.remove(0);
        for row in &mut profile.ber {
            row.remove(0);
        }
        let characterization = FineCharacterization {
            baseline_accuracy: 0.9,
            accuracy_floor: 0.89,
            tolerances: vec![(
                DataTypeInfo {
                    site: DataSite::new(0, "fragile", DataKind::Weight),
                    elements: 128,
                },
                1e-12,
            )],
        };
        let mapping = fine_map(&characterization, &profile, Precision::Int8);
        assert_eq!(mapping.assignments.len(), 0);
        assert_eq!(mapping.unmapped.len(), 1);
    }
}
