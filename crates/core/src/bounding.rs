//! Implausible-value correction ("bounding logic", Sections 3.2 and 5).
//!
//! A single bit error in the exponent of a floating-point value turns a small
//! weight into an enormous one and collapses DNN accuracy. EDEN compares
//! every value loaded from approximate DRAM against thresholds learned from
//! the baseline DNN and *zeroes* out-of-range values (zeroing outperforms
//! saturating, Section 3.2). The paper implements this as one cycle of simple
//! comparator logic in the memory controller (Section 5).

use eden_dnn::{DataSite, Network};
use eden_tensor::{Precision, QuantTensor, Tensor};
use serde::{Deserialize, Serialize};

/// What to do with a value that falls outside the plausible range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectionPolicy {
    /// Replace the value with zero (the paper's chosen policy).
    Zero,
    /// Clamp the value to the nearest threshold (evaluated and rejected by
    /// the paper; kept for the ablation experiment).
    Saturate,
}

/// Thresholds and policy used to correct implausible values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingLogic {
    /// Lower plausibility bound.
    pub lower: f32,
    /// Upper plausibility bound.
    pub upper: f32,
    /// Correction policy.
    pub policy: CorrectionPolicy,
    /// Added latency of the hardware comparator in memory-controller cycles
    /// (Section 5 reports a 1-cycle cost).
    pub latency_cycles: u32,
}

impl BoundingLogic {
    /// Creates bounding logic with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn new(lower: f32, upper: f32, policy: CorrectionPolicy) -> Self {
        assert!(
            lower <= upper,
            "invalid bounding thresholds [{lower}, {upper}]"
        );
        Self {
            lower,
            upper,
            policy,
            latency_cycles: 1,
        }
    }

    /// Derives thresholds from the weight ranges of a trained baseline
    /// network, expanded by a safety `margin` factor (the paper computes the
    /// thresholds during baseline training; e.g. most SqueezeNet1.1 weights
    /// lie within `[-5, 5]`).
    ///
    /// Activations can be larger than weights; when validation data is
    /// available, prefer [`BoundingLogic::calibrated`], which also observes
    /// the feature-map ranges. This constructor uses a conservative extra
    /// factor to cover activations it cannot observe.
    pub fn from_network(net: &Network, margin: f32, policy: CorrectionPolicy) -> Self {
        let bound = (Self::weight_abs_max(net) * margin).max(1.0) * 32.0;
        Self::new(-bound, bound, policy)
    }

    /// Derives thresholds from both the weight ranges of the baseline network
    /// and the feature-map ranges observed while evaluating `samples` on
    /// reliable memory — the paper's "thresholds computed during training of
    /// the baseline DNN" (Section 3.2).
    pub fn calibrated(
        net: &Network,
        samples: &[(Tensor, usize)],
        margin: f32,
        policy: CorrectionPolicy,
    ) -> Self {
        let mut max_abs = Self::weight_abs_max(net);
        for (x, _) in samples {
            let mut recorder = |_site: &DataSite, q: &mut QuantTensor| {
                max_abs = max_abs.max(q.dequantize().abs_max());
            };
            let output = net.forward_with_ifm_hook(x, Precision::Fp32, &mut recorder);
            max_abs = max_abs.max(output.abs_max());
        }
        let bound = (max_abs * margin).max(1.0) * 2.0;
        Self::new(-bound, bound, policy)
    }

    fn weight_abs_max(net: &Network) -> f32 {
        let mut max_abs = 0.0f32;
        net.visit_params_ref(&mut |_, t| {
            max_abs = max_abs.max(t.abs_max());
        });
        max_abs
    }

    /// Corrects implausible values in a loaded tensor; returns how many
    /// values were corrected.
    pub fn correct(&self, tensor: &mut QuantTensor) -> usize {
        let mut corrected = 0;
        for i in 0..tensor.len() {
            let v = tensor.value(i);
            if v.is_nan() || v < self.lower || v > self.upper {
                let replacement = match self.policy {
                    CorrectionPolicy::Zero => 0.0,
                    CorrectionPolicy::Saturate => {
                        if v.is_nan() {
                            0.0
                        } else if v < self.lower {
                            self.lower
                        } else {
                            self.upper
                        }
                    }
                };
                tensor.set_value(i, replacement);
                corrected += 1;
            }
        }
        corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::{zoo, Dataset};
    use eden_tensor::{Precision, Tensor};

    #[test]
    fn zeroing_removes_implausible_values() {
        let logic = BoundingLogic::new(-10.0, 10.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![1.0, -3.0, 1e12, f32::NAN, -2e9], &[5]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        let corrected = logic.correct(&mut q);
        assert_eq!(corrected, 3);
        let d = q.dequantize();
        assert_eq!(d.data()[0], 1.0);
        assert_eq!(d.data()[2], 0.0);
        assert_eq!(d.data()[3], 0.0);
        assert_eq!(d.data()[4], 0.0);
    }

    #[test]
    fn saturating_clamps_to_thresholds() {
        let logic = BoundingLogic::new(-2.0, 2.0, CorrectionPolicy::Saturate);
        let t = Tensor::from_vec(vec![5.0, -7.0, 0.5], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        logic.correct(&mut q);
        let d = q.dequantize();
        assert_eq!(d.data(), &[2.0, -2.0, 0.5]);
    }

    #[test]
    fn in_range_values_are_untouched() {
        let logic = BoundingLogic::new(-100.0, 100.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![1.0, -50.0, 99.9], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        assert_eq!(logic.correct(&mut q), 0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn network_derived_thresholds_cover_its_own_weights() {
        let dataset = SyntheticVision::tiny(0);
        let net = zoo::lenet(&dataset.spec(), 1);
        let logic = BoundingLogic::from_network(&net, 1.5, CorrectionPolicy::Zero);
        // No weight of the network itself should be "implausible".
        let mut corrected = 0;
        net.visit_params_ref(&mut |_, t| {
            let mut q = QuantTensor::quantize(t, Precision::Fp32);
            corrected += logic.correct(&mut q);
        });
        assert_eq!(corrected, 0);
        assert_eq!(logic.latency_cycles, 1);
    }

    #[test]
    fn exponent_flip_is_caught_by_bounding() {
        let logic = BoundingLogic::new(-8.0, 8.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![0.75], &[1]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        q.flip_bit(0, 30); // exponent MSB → enormous value
        assert!(q.value(0).abs() > 1e30);
        logic.correct(&mut q);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_are_rejected() {
        BoundingLogic::new(5.0, -5.0, CorrectionPolicy::Zero);
    }
}
