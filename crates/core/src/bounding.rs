//! Implausible-value correction ("bounding logic", Sections 3.2 and 5).
//!
//! A single bit error in the exponent of a floating-point value turns a small
//! weight into an enormous one and collapses DNN accuracy. EDEN compares
//! every value loaded from approximate DRAM against thresholds learned from
//! the baseline DNN and *zeroes* out-of-range values (zeroing outperforms
//! saturating, Section 3.2). The paper implements this as one cycle of simple
//! comparator logic in the memory controller (Section 5).

use eden_dnn::{DataSite, Network};
use eden_tensor::{CorruptionOverlay, Precision, QuantTensor, Tensor};
use serde::{Deserialize, Serialize};

/// What to do with a value that falls outside the plausible range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrectionPolicy {
    /// Replace the value with zero (the paper's chosen policy).
    Zero,
    /// Clamp the value to the nearest threshold (evaluated and rejected by
    /// the paper; kept for the ablation experiment).
    Saturate,
}

/// Thresholds and policy used to correct implausible values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingLogic {
    /// Lower plausibility bound.
    pub lower: f32,
    /// Upper plausibility bound.
    pub upper: f32,
    /// Correction policy.
    pub policy: CorrectionPolicy,
    /// Added latency of the hardware comparator in memory-controller cycles
    /// (Section 5 reports a 1-cycle cost).
    pub latency_cycles: u32,
}

impl BoundingLogic {
    /// Creates bounding logic with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn new(lower: f32, upper: f32, policy: CorrectionPolicy) -> Self {
        assert!(
            lower <= upper,
            "invalid bounding thresholds [{lower}, {upper}]"
        );
        Self {
            lower,
            upper,
            policy,
            latency_cycles: 1,
        }
    }

    /// Derives thresholds from the weight ranges of a trained baseline
    /// network, expanded by a safety `margin` factor (the paper computes the
    /// thresholds during baseline training; e.g. most SqueezeNet1.1 weights
    /// lie within `[-5, 5]`).
    ///
    /// Activations can be larger than weights; when validation data is
    /// available, prefer [`BoundingLogic::calibrated`], which also observes
    /// the feature-map ranges. This constructor uses a conservative extra
    /// factor to cover activations it cannot observe.
    pub fn from_network(net: &Network, margin: f32, policy: CorrectionPolicy) -> Self {
        let bound = (Self::weight_abs_max(net) * margin).max(1.0) * 32.0;
        Self::new(-bound, bound, policy)
    }

    /// Derives thresholds from both the weight ranges of the baseline network
    /// and the feature-map ranges observed while evaluating `samples` on
    /// reliable memory — the paper's "thresholds computed during training of
    /// the baseline DNN" (Section 3.2).
    pub fn calibrated(
        net: &Network,
        samples: &[(Tensor, usize)],
        margin: f32,
        policy: CorrectionPolicy,
    ) -> Self {
        let mut max_abs = Self::weight_abs_max(net);
        for (x, _) in samples {
            let mut recorder = |_site: &DataSite, q: &mut QuantTensor| {
                max_abs = max_abs.max(q.dequantize().abs_max());
            };
            let output = net.forward_with_ifm_hook(x, Precision::Fp32, &mut recorder);
            max_abs = max_abs.max(output.abs_max());
        }
        let bound = (max_abs * margin).max(1.0) * 2.0;
        Self::new(-bound, bound, policy)
    }

    fn weight_abs_max(net: &Network) -> f32 {
        let mut max_abs = 0.0f32;
        net.visit_params_ref(&mut |_, t| {
            max_abs = max_abs.max(t.abs_max());
        });
        max_abs
    }

    /// Whether a loaded value falls outside the plausible range (NaN is
    /// always implausible).
    fn implausible(&self, v: f32) -> bool {
        v.is_nan() || v < self.lower || v > self.upper
    }

    /// Whether **every representable value** of `tensor`'s quantization grid
    /// lies inside the plausible range — in which case *no* stored word of
    /// this tensor, corrupted or not, can ever need correction, and
    /// [`BoundingLogic::correct`] is provably a no-op that callers may skip.
    ///
    /// True only for integer precisions: every bit pattern of a `b`-bit word
    /// sign-extends to some `q ∈ [q_min, q_max]`, `value = q × scale` is
    /// monotone in `q` for the non-negative finite scale (f32 multiplication
    /// rounds monotonically and `q` is exactly representable), so checking
    /// the two grid endpoints bounds every cell, and an integer dequantized
    /// value can never be NaN. FP32 cells can hold any bit pattern,
    /// including NaN and huge exponents, and always need the full scan.
    ///
    /// This is what makes bounding O(1) per load on the quantized serving
    /// paths: the calibrated thresholds are derived to cover the baseline
    /// ranges, so in the common case the endpoint check short-circuits the
    /// whole O(values) scan.
    pub fn covers_grid(&self, tensor: &QuantTensor) -> bool {
        let (Some(q_min), Some(q_max)) = (tensor.precision().q_min(), tensor.precision().q_max())
        else {
            return false;
        };
        let scale = tensor.scale();
        scale.is_finite()
            && scale >= 0.0
            && !self.implausible(q_min as f32 * scale)
            && !self.implausible(q_max as f32 * scale)
    }

    /// The value an implausible `v` is replaced with under the policy.
    fn replacement(&self, v: f32) -> f32 {
        match self.policy {
            CorrectionPolicy::Zero => 0.0,
            CorrectionPolicy::Saturate => {
                if v.is_nan() {
                    0.0
                } else if v < self.lower {
                    self.lower
                } else {
                    self.upper
                }
            }
        }
    }

    /// Corrects implausible values in a loaded tensor; returns how many
    /// values were corrected.
    pub fn correct(&self, tensor: &mut QuantTensor) -> usize {
        let mut corrected = 0;
        for i in 0..tensor.len() {
            let v = tensor.value(i);
            if self.implausible(v) {
                tensor.set_value(i, self.replacement(v));
                corrected += 1;
            }
        }
        corrected
    }

    /// The corrections this logic applies to an **uncorrupted** stored image:
    /// one `(word index, xor mask)` per value of `clean` that is implausible
    /// as stored (the mask may be zero when the replacement re-quantizes to
    /// the same bits — the value still counts as corrected).
    ///
    /// A clean image never changes between fault draws, so the sparse-overlay
    /// refetch path computes this once per `(image, bounding)` pair and folds
    /// it into every per-draw overlay ([`BoundingLogic::fold_overlay`]),
    /// instead of re-scanning the whole tensor on every load as
    /// [`BoundingLogic::correct`] does.
    pub fn clean_corrections(&self, clean: &QuantTensor) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..clean.len() {
            let v = clean.value(i);
            if self.implausible(v) {
                let fixed = clean.word_from_value(self.replacement(v));
                out.push((i as u32, clean.stored_bits(i) ^ fixed));
            }
        }
        out
    }

    /// Folds this bounding logic into a raw injection overlay over `clean`,
    /// producing the overlay of the *corrected* corrupted image — exactly
    /// what [`BoundingLogic::correct`] would leave after the same injection,
    /// in O(flips + clean corrections) instead of O(values):
    ///
    /// * every flipped word is re-evaluated on its corrupted value (a flip
    ///   can make a value implausible, or make a clean-implausible value
    ///   plausible again);
    /// * every *unflipped* clean-implausible word (from
    ///   [`BoundingLogic::clean_corrections`] of the same image) keeps its
    ///   precomputed correction.
    ///
    /// The returned overlay carries the injection's flip count unchanged and
    /// the correction count the full scan would have reported.
    pub fn fold_overlay(
        &self,
        clean: &QuantTensor,
        overlay: CorruptionOverlay,
        clean_corrections: &[(u32, u32)],
    ) -> CorruptionOverlay {
        let flips = overlay.bit_flips();
        let mut corrections = 0u64;
        let mut deltas: Vec<(u32, u32)> =
            Vec::with_capacity(overlay.len() + clean_corrections.len());
        let mut cc = clean_corrections.iter().peekable();
        for &(w, m) in overlay.deltas() {
            // Unflipped clean-implausible words before this flip keep their
            // precomputed correction.
            while let Some(&&(cw, cm)) = cc.peek() {
                if cw >= w {
                    break;
                }
                corrections += 1;
                deltas.push((cw, cm));
                cc.next();
            }
            // A clean correction on the flipped word itself is superseded by
            // the re-evaluation below.
            if cc.peek().is_some_and(|&&(cw, _)| cw == w) {
                cc.next();
            }
            let corrupted = clean.stored_bits(w as usize) ^ m;
            let v = clean.word_value(corrupted);
            if self.implausible(v) {
                corrections += 1;
                let fixed = clean.word_from_value(self.replacement(v));
                deltas.push((w, clean.stored_bits(w as usize) ^ fixed));
            } else {
                deltas.push((w, m));
            }
        }
        for &(cw, cm) in cc {
            corrections += 1;
            deltas.push((cw, cm));
        }
        CorruptionOverlay::new(
            clean.len(),
            clean.bits_per_value(),
            deltas,
            flips,
            corrections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_dnn::data::SyntheticVision;
    use eden_dnn::{zoo, Dataset};
    use eden_tensor::{Precision, Tensor};

    #[test]
    fn zeroing_removes_implausible_values() {
        let logic = BoundingLogic::new(-10.0, 10.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![1.0, -3.0, 1e12, f32::NAN, -2e9], &[5]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        let corrected = logic.correct(&mut q);
        assert_eq!(corrected, 3);
        let d = q.dequantize();
        assert_eq!(d.data()[0], 1.0);
        assert_eq!(d.data()[2], 0.0);
        assert_eq!(d.data()[3], 0.0);
        assert_eq!(d.data()[4], 0.0);
    }

    #[test]
    fn saturating_clamps_to_thresholds() {
        let logic = BoundingLogic::new(-2.0, 2.0, CorrectionPolicy::Saturate);
        let t = Tensor::from_vec(vec![5.0, -7.0, 0.5], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        logic.correct(&mut q);
        let d = q.dequantize();
        assert_eq!(d.data(), &[2.0, -2.0, 0.5]);
    }

    #[test]
    fn in_range_values_are_untouched() {
        let logic = BoundingLogic::new(-100.0, 100.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![1.0, -50.0, 99.9], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        assert_eq!(logic.correct(&mut q), 0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn network_derived_thresholds_cover_its_own_weights() {
        let dataset = SyntheticVision::tiny(0);
        let net = zoo::lenet(&dataset.spec(), 1);
        let logic = BoundingLogic::from_network(&net, 1.5, CorrectionPolicy::Zero);
        // No weight of the network itself should be "implausible".
        let mut corrected = 0;
        net.visit_params_ref(&mut |_, t| {
            let mut q = QuantTensor::quantize(t, Precision::Fp32);
            corrected += logic.correct(&mut q);
        });
        assert_eq!(corrected, 0);
        assert_eq!(logic.latency_cycles, 1);
    }

    #[test]
    fn exponent_flip_is_caught_by_bounding() {
        let logic = BoundingLogic::new(-8.0, 8.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![0.75], &[1]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        q.flip_bit(0, 30); // exponent MSB → enormous value
        assert!(q.value(0).abs() > 1e30);
        logic.correct(&mut q);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_are_rejected() {
        BoundingLogic::new(5.0, -5.0, CorrectionPolicy::Zero);
    }

    #[test]
    fn covers_grid_is_exact_for_every_stored_word() {
        // When covers_grid claims the whole grid is plausible, no bit
        // pattern whatsoever may be correctable — verified exhaustively for
        // int8. When it does not, the scan must stay.
        let t = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0], &[4]);
        let q = QuantTensor::quantize(&t, Precision::Int8);
        let covering = BoundingLogic::new(-3.0, 3.0, CorrectionPolicy::Zero);
        assert!(covering.covers_grid(&q));
        for word in 0..=255u32 {
            let mut probe = q.clone();
            probe.stored_mut()[0] = word;
            assert_eq!(
                covering.correct(&mut probe),
                0,
                "word {word:#x} must be plausible under a covering grid"
            );
        }
        // Tight thresholds do not cover the grid (an MSB flip escapes).
        let tight = BoundingLogic::new(-1.0, 1.0, CorrectionPolicy::Zero);
        assert!(!tight.covers_grid(&q));
        // FP32 never qualifies: any bit pattern (NaN, huge exponents) fits.
        let f = QuantTensor::quantize(&t, Precision::Fp32);
        assert!(!covering.covers_grid(&f));
    }

    #[test]
    fn fold_overlay_matches_full_scan_correction() {
        // The sparse fold must reproduce inject-then-correct exactly: same
        // final bits, same correction count — including clean-implausible
        // values that a flip makes plausible again, and plausible values a
        // flip pushes out of range.
        use eden_dram::error_model::Layout;
        use eden_dram::ErrorModel;

        // Data with deliberate outliers so the clean image itself needs
        // corrections.
        let mut data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        data[10] = 1e12;
        data[100] = -4e9;
        data[4000] = f32::NAN;
        let t = Tensor::from_vec(data, &[4096]);
        for policy in [CorrectionPolicy::Zero, CorrectionPolicy::Saturate] {
            let logic = BoundingLogic::new(-2.0, 2.0, policy);
            for precision in [Precision::Fp32, Precision::Int8] {
                let clean = QuantTensor::quantize(&t, precision);
                let model = ErrorModel::uniform(0.01, 0.8, 3);
                let layout = Layout::default();
                let map = model.weak_map(clean.len(), clean.bits_per_value(), &layout);

                let mut reference = clean.clone();
                model.inject_seeded_mapped(&mut reference, 55, &map);
                let scan_corrections = logic.correct(&mut reference);

                let raw = model.overlay_seeded_mapped(&clean, 55, &map);
                let folded = logic.fold_overlay(&clean, raw, &logic.clean_corrections(&clean));
                assert_eq!(folded.corrections(), scan_corrections as u64, "{policy:?}");
                let mut patched = clean.clone();
                folded.apply(&mut patched);
                assert_eq!(patched, reference, "{policy:?} {precision}");
            }
        }
    }

    #[test]
    fn clean_corrections_enumerate_exactly_the_implausible_values() {
        let logic = BoundingLogic::new(-1.0, 1.0, CorrectionPolicy::Zero);
        let t = Tensor::from_vec(vec![0.5, 3.0, -0.25, -7.0, 0.0], &[5]);
        let clean = QuantTensor::quantize(&t, Precision::Fp32);
        let corrections = logic.clean_corrections(&clean);
        assert_eq!(
            corrections.iter().map(|&(w, _)| w).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // Applying the correction masks equals running the full scan.
        let mut scanned = clean.clone();
        assert_eq!(logic.correct(&mut scanned), 2);
        let mut patched = clean.clone();
        for &(w, m) in &corrections {
            patched.stored_mut()[w as usize] ^= m;
        }
        assert_eq!(patched, scanned);
    }
}
