//! Loss functions.

use eden_tensor::{ops, Tensor};

/// Softmax cross-entropy loss for a single sample.
///
/// Returns `(loss, gradient_wrt_logits)`.
pub fn cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    ops::softmax_cross_entropy(logits, label)
}

/// Mean softmax cross-entropy loss over a batch of `(logits, label)` pairs.
///
/// Returns the mean loss and the per-sample logit gradients scaled by `1/n`.
pub fn batch_cross_entropy(batch: &[(Tensor, usize)]) -> (f32, Vec<Tensor>) {
    assert!(!batch.is_empty(), "empty batch");
    let n = batch.len() as f32;
    let mut total = 0.0;
    let mut grads = Vec::with_capacity(batch.len());
    for (logits, label) in batch {
        let (l, g) = ops::softmax_cross_entropy(logits, *label);
        total += l;
        grads.push(g.scale(1.0 / n));
    }
    (total / n, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_prediction_has_low_loss() {
        let confident = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[3]);
        let (low, _) = cross_entropy(&confident, 0);
        let (high, _) = cross_entropy(&confident, 1);
        assert!(low < 0.01);
        assert!(high > 5.0);
    }

    #[test]
    fn batch_loss_is_mean_of_sample_losses() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let (la, _) = cross_entropy(&a, 0);
        let (lb, _) = cross_entropy(&b, 0);
        let (batch, grads) = batch_cross_entropy(&[(a, 0), (b, 0)]);
        assert!((batch - (la + lb) / 2.0).abs() < 1e-6);
        assert_eq!(grads.len(), 2);
    }

    #[test]
    fn gradient_points_away_from_wrong_class() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let (_, g) = cross_entropy(&logits, 0);
        // Gradient of the true class is negative (its logit should increase).
        assert!(g.data()[0] < 0.0);
        assert!(g.data()[1] > 0.0);
    }
}
