//! Stochastic gradient descent optimizers.

use crate::network::Network;
use eden_tensor::Tensor;

/// SGD with momentum and optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            learning_rate,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Applies one update step using the gradients currently accumulated in
    /// the network, then leaves the gradients untouched (call
    /// [`Network::zero_grads`] before the next accumulation).
    pub fn step(&mut self, net: &mut Network) {
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let mut idx = 0;
        let velocities = &mut self.velocities;
        net.visit_params(&mut |p| {
            if velocities.len() <= idx {
                velocities.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocities[idx];
            assert_eq!(v.shape(), p.value.shape(), "optimizer state shape mismatch");
            for i in 0..p.value.len() {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let vel = momentum * v.data()[i] - lr * g;
                v.data_mut()[i] = vel;
                p.value.data_mut()[i] += vel;
            }
            idx += 1;
        });
    }

    /// Clears momentum state (e.g. when switching networks).
    pub fn reset(&mut self) {
        self.velocities.clear();
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new(0.05, 0.9, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use eden_tensor::init::seeded_rng;

    fn one_param_net() -> Network {
        let mut rng = seeded_rng(0);
        let mut net = Network::new("n", &[2]);
        net.push(Dense::new("fc", 2, 1, &mut rng));
        net
    }

    #[test]
    fn step_moves_weights_against_gradient() {
        let mut net = one_param_net();
        let mut before = Vec::new();
        net.visit_params_ref(&mut |_, t| before.push(t.clone()));
        // Set all gradients to +1: weights must decrease.
        net.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 1.0;
            }
        });
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut net);
        let mut after = Vec::new();
        net.visit_params_ref(&mut |_, t| after.push(t.clone()));
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((x - y - 0.1).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let mut plain_net = one_param_net();
        let mut momentum_net = plain_net.clone();
        let set_grad = |net: &mut Network| {
            net.visit_params(&mut |p| {
                for g in p.grad.data_mut() {
                    *g = 1.0;
                }
            })
        };
        let mut plain = Sgd::new(0.1, 0.0, 0.0);
        let mut with_mom = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..3 {
            set_grad(&mut plain_net);
            plain.step(&mut plain_net);
            set_grad(&mut momentum_net);
            with_mom.step(&mut momentum_net);
        }
        let mut plain_sum = 0.0;
        plain_net.visit_params_ref(&mut |_, t| plain_sum += t.sum());
        let mut mom_sum = 0.0;
        momentum_net.visit_params_ref(&mut |_, t| mom_sum += t.sum());
        assert!(mom_sum < plain_sum, "momentum should have moved farther");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = one_param_net();
        let mut before = 0.0;
        net.visit_params_ref(&mut |n, t| {
            if n == "weight" {
                before = t.sq_norm();
            }
        });
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.step(&mut net); // grads are zero, only decay acts
        let mut after = 0.0;
        net.visit_params_ref(&mut |n, t| {
            if n == "weight" {
                after = t.sq_norm();
            }
        });
        assert!(after < before);
    }
}
