//! Deterministic synthetic datasets.
//!
//! The paper evaluates on CIFAR-10, ILSVRC2012 and MS-COCO. Those datasets
//! are not available to this reproduction, so we generate synthetic
//! classification problems with controllable difficulty: each class has a
//! smooth random prototype image, and samples are noisy observations of their
//! class prototype. The tasks are learnable (baseline accuracy well above
//! chance) and degrade under bit errors the same way real tasks do, which is
//! the property EDEN's evaluation depends on (see `DESIGN.md`).

use eden_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape and label-space description of a vision dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl DatasetSpec {
    /// The per-sample input shape in CHW layout.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![self.channels, self.height, self.width]
    }
}

/// A labelled-image dataset with a train and a test split.
/// A labelled dataset. `Send + Sync` so evaluation and characterization can
/// share one dataset across the worker threads of the parallel engine.
pub trait Dataset: Send + Sync {
    /// Shape and label-space description.
    fn spec(&self) -> DatasetSpec;
    /// Training split.
    fn train(&self) -> &[(Tensor, usize)];
    /// Held-out test/validation split.
    fn test(&self) -> &[(Tensor, usize)];
    /// A human-readable name (e.g. the paper dataset it stands in for).
    fn name(&self) -> &str;
}

/// A synthetic vision classification dataset.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    name: String,
    spec: DatasetSpec,
    train: Vec<(Tensor, usize)>,
    test: Vec<(Tensor, usize)>,
}

/// Configuration for synthetic dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset shape and class count.
    pub spec: DatasetSpec,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of test samples.
    pub test_samples: usize,
    /// Standard deviation of the per-sample noise added to class prototypes.
    /// Larger values make the task harder.
    pub noise: f32,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl SyntheticVision {
    /// Generates a dataset from a configuration.
    pub fn generate(name: impl Into<String>, cfg: SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let prototypes: Vec<Tensor> = (0..cfg.spec.num_classes)
            .map(|_| Self::prototype(&cfg.spec, &mut rng))
            .collect();
        let make_split = |n: usize, rng: &mut StdRng| {
            (0..n)
                .map(|i| {
                    let label = i % cfg.spec.num_classes;
                    let mut sample = prototypes[label].clone();
                    for v in sample.data_mut() {
                        *v += gaussian(rng) * cfg.noise;
                    }
                    (sample, label)
                })
                .collect::<Vec<_>>()
        };
        let train = make_split(cfg.train_samples, &mut rng);
        let test = make_split(cfg.test_samples, &mut rng);
        Self {
            name: name.into(),
            spec: cfg.spec,
            train,
            test,
        }
    }

    /// A smooth per-class prototype: a sum of a few random 2-D sinusoids per
    /// channel, normalized to roughly unit scale.
    fn prototype(spec: &DatasetSpec, rng: &mut StdRng) -> Tensor {
        let (c, h, w) = (spec.channels, spec.height, spec.width);
        let mut data = vec![0.0f32; c * h * w];
        for ch in 0..c {
            let waves: Vec<(f32, f32, f32, f32)> = (0..4)
                .map(|_| {
                    (
                        rng.gen_range(0.5..3.0),
                        rng.gen_range(0.5..3.0),
                        rng.gen_range(0.0..std::f32::consts::TAU),
                        rng.gen_range(0.4..1.0),
                    )
                })
                .collect();
            for y in 0..h {
                for x in 0..w {
                    let mut v = 0.0;
                    for &(fy, fx, phase, amp) in &waves {
                        v += amp
                            * ((fy * y as f32 / h as f32 + fx * x as f32 / w as f32)
                                * std::f32::consts::TAU
                                + phase)
                                .sin();
                    }
                    data[ch * h * w + y * w + x] = v / 2.0;
                }
            }
        }
        Tensor::from_vec(data, &[c, h, w])
    }

    /// The default "CIFAR-10 stand-in": 3×16×16 images, 8 classes,
    /// 384 train / 192 test samples.
    pub fn small(seed: u64) -> Self {
        Self::generate(
            "cifar10-syn",
            SyntheticConfig {
                spec: DatasetSpec {
                    channels: 3,
                    height: 16,
                    width: 16,
                    num_classes: 8,
                },
                train_samples: 384,
                test_samples: 192,
                noise: 0.45,
                seed,
            },
        )
    }

    /// A tiny dataset for unit tests: 3×8×8 images, 4 classes.
    pub fn tiny(seed: u64) -> Self {
        Self::generate(
            "tiny-syn",
            SyntheticConfig {
                spec: DatasetSpec {
                    channels: 3,
                    height: 8,
                    width: 8,
                    num_classes: 4,
                },
                train_samples: 96,
                test_samples: 48,
                noise: 0.35,
                seed,
            },
        )
    }

    /// The "ILSVRC2012 stand-in": same resolution as [`SyntheticVision::small`]
    /// but with more classes, used by the larger zoo models.
    pub fn imagenet_like(seed: u64) -> Self {
        Self::generate(
            "ilsvrc-syn",
            SyntheticConfig {
                spec: DatasetSpec {
                    channels: 3,
                    height: 16,
                    width: 16,
                    num_classes: 12,
                },
                train_samples: 480,
                test_samples: 240,
                noise: 0.5,
                seed,
            },
        )
    }

    /// The "MS-COCO stand-in" used by the YOLO-family models; its accuracy is
    /// reported under the paper's mAP label.
    pub fn detection_like(seed: u64) -> Self {
        Self::generate(
            "mscoco-syn",
            SyntheticConfig {
                spec: DatasetSpec {
                    channels: 3,
                    height: 16,
                    width: 16,
                    num_classes: 10,
                },
                train_samples: 400,
                test_samples: 200,
                noise: 0.55,
                seed,
            },
        )
    }
}

impl Dataset for SyntheticVision {
    fn spec(&self) -> DatasetSpec {
        self.spec
    }

    fn train(&self) -> &[(Tensor, usize)] {
        &self.train
    }

    fn test(&self) -> &[(Tensor, usize)] {
        &self.test
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Standard normal sample via the Box-Muller transform.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticVision::tiny(5);
        let b = SyntheticVision::tiny(5);
        assert_eq!(a.train()[0].0, b.train()[0].0);
        assert_eq!(a.test()[3].0, b.test()[3].0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticVision::tiny(1);
        let b = SyntheticVision::tiny(2);
        assert_ne!(a.train()[0].0, b.train()[0].0);
    }

    #[test]
    fn splits_have_requested_sizes_and_shapes() {
        let d = SyntheticVision::small(0);
        assert_eq!(d.train().len(), 384);
        assert_eq!(d.test().len(), 192);
        assert_eq!(d.train()[0].0.shape(), &[3, 16, 16]);
        assert_eq!(d.spec().input_shape(), vec![3, 16, 16]);
    }

    #[test]
    fn all_classes_are_represented() {
        let d = SyntheticVision::tiny(7);
        let mut seen = vec![false; d.spec().num_classes];
        for (_, label) in d.train() {
            seen[*label] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn class_prototypes_are_separable() {
        // Samples of the same class should be closer to each other than to
        // samples of other classes (on average), otherwise nothing can learn.
        let d = SyntheticVision::tiny(3);
        let train = d.train();
        let dist = |a: &Tensor, b: &Tensor| a.sub(b).sq_norm();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..30 {
            for j in (i + 1)..30 {
                let dd = dist(&train[i].0, &train[j].0);
                if train[i].1 == train[j].1 {
                    same.push(dd);
                } else {
                    diff.push(dd);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&same) < mean(&diff));
    }

    #[test]
    fn labels_are_within_range() {
        let d = SyntheticVision::detection_like(9);
        for (_, l) in d.train().iter().chain(d.test()) {
            assert!(*l < d.spec().num_classes);
        }
    }
}
