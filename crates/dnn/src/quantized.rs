//! Post-training quantization of whole networks.
//!
//! The paper quantizes every model to int4, int8, int16 and FP32 with
//! symmetric linear quantization (Section 6.1, Table 2) and measures baseline
//! accuracy per precision. This module applies that quantization to the
//! weights of a trained [`Network`] and computes per-precision memory
//! footprints (used for Table 1-style reporting and for DRAM mapping).

use crate::network::Network;
use eden_tensor::{Precision, QuantTensor};

/// Returns a copy of the network whose weights have been round-tripped
/// through the given precision (quantize → dequantize), i.e. a post-training
/// quantized model evaluated in the usual simulated-quantization fashion.
pub fn quantize_network(net: &Network, precision: Precision) -> Network {
    let mut out = net.clone();
    out.visit_params(&mut |p| {
        let q = QuantTensor::quantize(p.value, precision);
        *p.value = q.dequantize();
    });
    out
}

/// Memory footprint summary of a model at a precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelFootprint {
    /// Bytes of all weights.
    pub weight_bytes: u64,
    /// Bytes of all IFMs produced while evaluating one input.
    pub ifm_bytes: u64,
}

impl ModelFootprint {
    /// Total of weights and IFMs, the "IFM+Weight Size" column of Table 1.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.ifm_bytes
    }
}

/// Computes the memory footprint of a network at a precision.
pub fn footprint(net: &Network, precision: Precision) -> ModelFootprint {
    ModelFootprint {
        weight_bytes: net.weight_bytes(precision),
        ifm_bytes: net.ifm_bytes(precision),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;
    use crate::layers::{Conv2d, Dense, Flatten, Relu};
    use crate::metrics;
    use crate::train::{TrainConfig, Trainer};
    use crate::Dataset;
    use eden_tensor::init::seeded_rng;

    fn small_conv_net(d: &SyntheticVision) -> Network {
        let spec = d.spec();
        let mut rng = seeded_rng(0);
        let mut net = Network::new("cnn", &spec.input_shape());
        net.push(Conv2d::new("conv", spec.channels, 6, 3, 1, 1, &mut rng))
            .push(Relu::new("relu"))
            .push(Flatten::new("flatten"))
            .push(Dense::new(
                "fc",
                6 * spec.height * spec.width,
                spec.num_classes,
                &mut rng,
            ));
        net
    }

    #[test]
    fn fp32_quantization_does_not_change_outputs() {
        let d = SyntheticVision::tiny(0);
        let net = small_conv_net(&d);
        let q = quantize_network(&net, Precision::Fp32);
        let x = &d.test()[0].0;
        assert_eq!(net.forward(x), q.forward(x));
    }

    #[test]
    fn int16_quantization_keeps_accuracy_int4_may_collapse() {
        let d = SyntheticVision::tiny(1);
        let mut net = small_conv_net(&d);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        });
        trainer.train(&mut net, &d);
        let base = metrics::test_accuracy(&net, &d);
        let a16 = metrics::test_accuracy(&quantize_network(&net, Precision::Int16), &d);
        let a4 = metrics::test_accuracy(&quantize_network(&net, Precision::Int4), &d);
        assert!(
            a16 >= base - 0.1,
            "int16 accuracy {a16} dropped far below {base}"
        );
        // int4 is allowed to be worse (Table 2 shows collapse for some nets),
        // but it must still be a valid accuracy.
        assert!((0.0..=1.0).contains(&a4));
    }

    #[test]
    fn footprint_scales_linearly_with_precision() {
        let d = SyntheticVision::tiny(2);
        let net = small_conv_net(&d);
        let f32_fp = footprint(&net, Precision::Fp32);
        let int8_fp = footprint(&net, Precision::Int8);
        assert_eq!(f32_fp.weight_bytes, 4 * int8_fp.weight_bytes);
        assert_eq!(f32_fp.ifm_bytes, 4 * int8_fp.ifm_bytes);
        assert!(f32_fp.total_bytes() > 0);
    }
}
