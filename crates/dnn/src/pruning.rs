//! Magnitude-based weight pruning (Section 2.1 / Section 3.3 of the paper).
//!
//! The paper studies whether sparsification improves DRAM-error tolerance and
//! finds that it does not (Section 3.3, "Effect of Pruning"). This module
//! provides global magnitude pruning so the reproduction can run the same
//! ablation.

use crate::network::Network;

/// Prunes the smallest-magnitude fraction `sparsity` of all weight values in
/// the network (globally across layers), setting them to zero.
///
/// Bias and normalization parameters are left untouched, matching the common
/// practice the paper follows.
///
/// # Panics
///
/// Panics if `sparsity` is not within `[0, 1]`.
pub fn magnitude_prune(net: &mut Network, sparsity: f32) {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity must be in [0,1], got {sparsity}"
    );
    if sparsity == 0.0 {
        return;
    }
    // Collect the magnitudes of every prunable weight value.
    let mut magnitudes = Vec::new();
    net.visit_params_ref(&mut |name, t| {
        if name == "weight" {
            magnitudes.extend(t.data().iter().map(|v| v.abs()));
        }
    });
    if magnitudes.is_empty() {
        return;
    }
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff_idx = ((magnitudes.len() as f32 * sparsity) as usize).min(magnitudes.len() - 1);
    let threshold = magnitudes[cutoff_idx];

    net.visit_params(&mut |p| {
        if p.name == "weight" {
            for v in p.value.data_mut() {
                if v.abs() <= threshold {
                    *v = 0.0;
                }
            }
        }
    });
}

/// Fraction of weight values that are exactly zero (over `weight` tensors).
pub fn weight_sparsity(net: &Network) -> f32 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    net.visit_params_ref(&mut |name, t| {
        if name == "weight" {
            zeros += t.data().iter().filter(|&&v| v == 0.0).count();
            total += t.len();
        }
    });
    if total == 0 {
        0.0
    } else {
        zeros as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use eden_tensor::init::seeded_rng;

    fn net() -> Network {
        let mut rng = seeded_rng(0);
        let mut net = Network::new("n", &[1, 4, 4]);
        net.push(Flatten::new("flatten"))
            .push(Dense::new("fc1", 16, 32, &mut rng))
            .push(Relu::new("relu"))
            .push(Dense::new("fc2", 32, 4, &mut rng));
        net
    }

    #[test]
    fn pruning_reaches_requested_sparsity() {
        for target in [0.1f32, 0.5, 0.9] {
            let mut n = net();
            magnitude_prune(&mut n, target);
            let s = weight_sparsity(&n);
            assert!(
                (s - target).abs() < 0.05,
                "sparsity {s} far from target {target}"
            );
        }
    }

    #[test]
    fn zero_sparsity_is_a_noop() {
        let mut n = net();
        let before: Vec<f32> = {
            let mut v = Vec::new();
            n.visit_params_ref(&mut |_, t| v.extend_from_slice(t.data()));
            v
        };
        magnitude_prune(&mut n, 0.0);
        let mut after = Vec::new();
        n.visit_params_ref(&mut |_, t| after.extend_from_slice(t.data()));
        assert_eq!(before, after);
    }

    #[test]
    fn pruning_removes_smallest_magnitudes_first() {
        let mut n = net();
        magnitude_prune(&mut n, 0.5);
        // Every surviving weight must have magnitude >= every pruned weight
        // had (trivially true since pruned ones are zero, so check survivors
        // are non-trivial).
        let mut survivors = Vec::new();
        n.visit_params_ref(&mut |name, t| {
            if name == "weight" {
                survivors.extend(t.data().iter().filter(|&&v| v != 0.0).map(|v| v.abs()));
            }
        });
        assert!(!survivors.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_sparsity_rejected() {
        magnitude_prune(&mut net(), 1.5);
    }
}
