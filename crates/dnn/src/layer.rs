//! The [`Layer`] trait implemented by all network building blocks.

use crate::qexec::{QuantLayerParams, QuantScratch};
use eden_tensor::{QuantTensor, Tensor};

/// A named, mutable view of a layer parameter and its accumulated gradient.
pub struct ParamEntry<'a> {
    /// Parameter name, unique within the layer (e.g. `"weight"`, `"bias"`).
    pub name: &'a str,
    /// The parameter tensor.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by the most recent backward pass(es).
    pub grad: &'a mut Tensor,
}

/// A neural-network layer.
///
/// Layers operate on single samples in `[channels, height, width]` layout for
/// spatial layers or `[features]` for dense layers; batching is handled by the
/// trainer. Each layer supports:
///
/// * a **pure forward pass** ([`Layer::forward`]) used for inference,
/// * a **training forward pass** ([`Layer::forward_train`]) that caches the
///   intermediates needed by [`Layer::backward`], and
/// * a **backward pass** that accumulates parameter gradients and returns the
///   gradient with respect to the layer input.
///
/// Layers are `Send + Sync`: the batch-parallel inference engine shares one
/// `&Network` across worker threads, each running independent pure forward
/// passes.
pub trait Layer: LayerClone + Send + Sync {
    /// Human-readable layer name (unique within a network, e.g. `"conv1"`).
    fn name(&self) -> &str;

    /// Pure inference forward pass.
    fn forward(&self, input: &Tensor) -> Tensor;

    /// Training forward pass; caches intermediates for [`Layer::backward`].
    fn forward_train(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass. Consumes the cached intermediates of the most recent
    /// [`Layer::forward_train`] call, accumulates parameter gradients and
    /// returns the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding
    /// [`Layer::forward_train`].
    fn backward(&mut self, d_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (and its gradient) of this layer.
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>));

    /// Visits every trainable parameter immutably.
    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor));

    /// Resets all accumulated gradients to zero.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        });
    }

    /// Output shape for a given input shape. Used to pre-compute data-type
    /// sizes for DNN→DRAM mapping without running inference.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |_, t| n += t.len());
        n
    }

    /// Whether this layer implements [`Layer::quant_forward`]. Layers that
    /// return `true` must have exactly a `weight` and a `bias` parameter (in
    /// visit order) and must return `Some` from `quant_forward`.
    fn supports_quant_forward(&self) -> bool {
        false
    }

    /// Native quantized forward pass: consumes the (corrupted) quantized
    /// input activations and the layer's corrupted quantized parameters, and
    /// produces the f32 layer output via exact integer accumulation — without
    /// dequantizing the inputs. Layers without a native implementation return
    /// `None`, and the executor falls back to `dequantize` + [`Layer::forward`].
    fn quant_forward(
        &self,
        input: &QuantTensor,
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Tensor> {
        let _ = (input, params, scratch);
        None
    }

    /// Batched pure forward pass over a group of same-shape samples:
    /// im2col/pack once per sample into a single rhs, then **one** GEMM whose
    /// B matrix holds the whole batch of activation columns
    /// (weight-stationary dataflow — the layer's weights stream through the
    /// cache once per batch instead of once per sample).
    ///
    /// Implementations must be **bit-identical** to calling
    /// [`Layer::forward`] on each input independently: the f32 GEMM keeps
    /// each output element's k-ascending accumulation chain, which packing
    /// extra columns never reorders. The default returns `None` and the
    /// executor falls back to per-sample [`Layer::forward`] calls.
    fn forward_batch(&self, inputs: &[&Tensor]) -> Option<Vec<Tensor>> {
        let _ = inputs;
        None
    }

    /// Batched [`Layer::quant_forward`]: one integer GEMM over a packed
    /// multi-sample patch matrix, with each sample's own quantization scale
    /// applied in the per-column epilogue. Must be bit-identical to the
    /// per-sample form (integer accumulation is exact, and the f32 epilogue
    /// is element-wise); the default returns `None` and the executor falls
    /// back to per-sample calls.
    fn quant_forward_batch(
        &self,
        inputs: &[&QuantTensor],
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Vec<Tensor>> {
        let _ = (inputs, params, scratch);
        None
    }

    /// Quantized-domain forward for parameterless layers whose f32 forward
    /// **commutes exactly with dequantization** — order-preserving maps
    /// (ReLU, max pooling: dequantization is monotone, so integer and float
    /// comparisons select the same values) and pure reshapes (flatten).
    /// Consumes the corrupted quantized input and produces the f32 output
    /// directly, bit-identical to `self.forward(&input.dequantize())` in a
    /// single pass. Layers without such an implementation return `None`.
    fn quant_forward_activation(&self, input: &QuantTensor) -> Option<Tensor> {
        let _ = input;
        None
    }

    /// Approximate number of multiply-accumulate operations needed to
    /// evaluate this layer on one sample with the given input shape. Used by
    /// the system-level simulators to estimate compute time.
    ///
    /// The default (one MAC per parameter) is correct for dense layers and a
    /// lower bound for everything else; convolutional layers override it.
    fn macs(&self, _input_shape: &[usize]) -> u64 {
        self.param_count() as u64
    }
}

/// Object-safe cloning support for boxed layers.
pub trait LayerClone {
    /// Clones the layer into a new box.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl<T> LayerClone for T
where
    T: 'static + Layer + Clone,
{
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
