//! Accuracy metrics.

use crate::data::Dataset;
use crate::network::Network;
use eden_tensor::Tensor;

/// Classification accuracy of a network over a set of labelled samples.
pub fn accuracy(net: &Network, samples: &[(Tensor, usize)]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(x, label)| net.predict(x) == *label)
        .count();
    correct as f32 / samples.len() as f32
}

/// Test-set accuracy of a network over a dataset.
pub fn test_accuracy(net: &Network, dataset: &dyn Dataset) -> f32 {
    accuracy(net, dataset.test())
}

/// Top-k accuracy (the true label is among the k highest logits).
pub fn top_k_accuracy(net: &Network, samples: &[(Tensor, usize)], k: usize) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(x, label)| {
            let logits = net.forward(x);
            let mut indexed: Vec<(usize, f32)> =
                logits.data().iter().copied().enumerate().collect();
            indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            indexed.iter().take(k).any(|(i, _)| i == label)
        })
        .count();
    correct as f32 / samples.len() as f32
}

/// Accuracy of a fixed set of predicted labels against ground truth.
pub fn prediction_accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;
    use crate::layers::{Dense, Flatten};
    use eden_tensor::init::seeded_rng;

    fn linear_net(d: &SyntheticVision) -> Network {
        let spec = d.spec();
        let mut rng = seeded_rng(0);
        let mut net = Network::new("lin", &spec.input_shape());
        net.push(Flatten::new("flatten")).push(Dense::new(
            "fc",
            spec.channels * spec.height * spec.width,
            spec.num_classes,
            &mut rng,
        ));
        net
    }

    #[test]
    fn accuracy_is_in_unit_interval() {
        let d = SyntheticVision::tiny(0);
        let net = linear_net(&d);
        let a = test_accuracy(&net, &d);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn top_k_grows_with_k() {
        let d = SyntheticVision::tiny(1);
        let net = linear_net(&d);
        let t1 = top_k_accuracy(&net, d.test(), 1);
        let t4 = top_k_accuracy(&net, d.test(), d.spec().num_classes);
        assert!(t4 >= t1);
        assert_eq!(t4, 1.0);
    }

    #[test]
    fn prediction_accuracy_counts_matches() {
        assert_eq!(prediction_accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(prediction_accuracy(&[], &[]), 0.0);
    }
}
