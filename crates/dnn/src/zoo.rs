//! The model zoo: scaled-down, architecturally faithful versions of the
//! networks evaluated in the paper (Table 1), plus their paper-reported
//! metadata for paper-vs-measured reporting.

use crate::data::{DatasetSpec, SyntheticVision};
use crate::layers::{
    ChannelNorm, Conv2d, Dense, DenseBlock, DepthwiseSeparable, Fire, Flatten, GlobalAvgPool,
    MaxPool2d, Relu, Residual,
};
use crate::network::Network;
use eden_tensor::init::seeded_rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a zoo model (one per network in the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// ResNet101 stand-in (residual blocks), CIFAR-10-like dataset.
    ResNet,
    /// MobileNetV2 stand-in (depthwise-separable blocks), CIFAR-10-like.
    MobileNet,
    /// VGG-16 stand-in (plain conv stacks + large FC), ILSVRC-like.
    Vgg16,
    /// DenseNet201 stand-in (densely connected blocks), ILSVRC-like.
    DenseNet,
    /// SqueezeNet1.1 stand-in (fire modules), ILSVRC-like.
    SqueezeNet,
    /// AlexNet stand-in (conv + large FC), CIFAR-10-like.
    AlexNet,
    /// YOLO stand-in, MS-COCO-like dataset, mAP metric.
    Yolo,
    /// YOLO-Tiny stand-in, MS-COCO-like dataset, mAP metric.
    YoloTiny,
    /// LeNet, CIFAR-10-like dataset (used for the real-device experiments).
    LeNet,
}

impl ModelId {
    /// All models in paper order (Table 1).
    pub fn all() -> [ModelId; 9] {
        [
            ModelId::ResNet,
            ModelId::MobileNet,
            ModelId::Vgg16,
            ModelId::DenseNet,
            ModelId::SqueezeNet,
            ModelId::AlexNet,
            ModelId::Yolo,
            ModelId::YoloTiny,
            ModelId::LeNet,
        ]
    }

    /// The models used in the system-level evaluation (Figures 13 and 14).
    pub fn system_eval() -> [ModelId; 6] {
        [
            ModelId::YoloTiny,
            ModelId::Yolo,
            ModelId::ResNet,
            ModelId::Vgg16,
            ModelId::SqueezeNet,
            ModelId::DenseNet,
        ]
    }
}

impl ModelId {
    /// Canonical lowercase key of this model — the stable wire name used by
    /// the evaluation service protocol and CLI flags.
    pub fn key(self) -> &'static str {
        match self {
            ModelId::ResNet => "resnet",
            ModelId::MobileNet => "mobilenet",
            ModelId::Vgg16 => "vgg16",
            ModelId::DenseNet => "densenet",
            ModelId::SqueezeNet => "squeezenet",
            ModelId::AlexNet => "alexnet",
            ModelId::Yolo => "yolo",
            ModelId::YoloTiny => "yolo-tiny",
            ModelId::LeNet => "lenet",
        }
    }
}

impl std::str::FromStr for ModelId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        ModelId::all()
            .into_iter()
            .find(|id| id.key() == lower)
            .ok_or_else(|| {
                let keys: Vec<&str> = ModelId::all().iter().map(|id| id.key()).collect();
                format!("unknown model {s:?} (expected one of: {})", keys.join(", "))
            })
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().display_name)
    }
}

/// Paper-reported values for one model, used for paper-vs-measured reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRecord {
    /// "Model Size" column of Table 1, in MB (FP32).
    pub model_size_mb: f32,
    /// "IFM+Weight Size" column of Table 1, in MB (FP32).
    pub ifm_weight_size_mb: f32,
    /// Table 2 baseline accuracy (fraction, not percent) per precision
    /// `[int4, int8, int16, fp32]`; `None` where the paper reports none.
    pub baseline_accuracy: [Option<f32>; 4],
    /// Table 3 FP32 row: (max tolerable BER, ΔVDD in volts, ΔtRCD in ns).
    pub coarse_fp32: Option<(f32, f32, f32)>,
    /// Table 3 int8 row: (max tolerable BER, ΔVDD in volts, ΔtRCD in ns).
    pub coarse_int8: Option<(f32, f32, f32)>,
}

/// Static description of a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Which model this is.
    pub id: ModelId,
    /// Display name matching the paper.
    pub display_name: &'static str,
    /// Name of the dataset the paper uses.
    pub paper_dataset: &'static str,
    /// Accuracy metric name ("accuracy" or "mAP").
    pub metric: &'static str,
    /// Paper-reported numbers.
    pub paper: PaperRecord,
}

impl ModelId {
    /// Static specification (paper metadata) for this model.
    pub fn spec(self) -> ModelSpec {
        match self {
            ModelId::ResNet => ModelSpec {
                id: self,
                display_name: "ResNet101",
                paper_dataset: "CIFAR10",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 163.0,
                    ifm_weight_size_mb: 100.0,
                    baseline_accuracy: [Some(0.8911), Some(0.9314), Some(0.9311), Some(0.9420)],
                    coarse_fp32: Some((0.04, 0.30, 5.5)),
                    coarse_int8: Some((0.04, 0.30, 5.5)),
                },
            },
            ModelId::MobileNet => ModelSpec {
                id: self,
                display_name: "MobileNetV2",
                paper_dataset: "CIFAR10",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 22.7,
                    ifm_weight_size_mb: 68.5,
                    baseline_accuracy: [Some(0.5100), Some(0.7044), Some(0.7046), Some(0.7835)],
                    coarse_fp32: Some((0.01, 0.25, 1.0)),
                    coarse_int8: Some((0.005, 0.10, 1.0)),
                },
            },
            ModelId::Vgg16 => ModelSpec {
                id: self,
                display_name: "VGG-16",
                paper_dataset: "ILSVRC2012",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 528.0,
                    ifm_weight_size_mb: 218.0,
                    baseline_accuracy: [Some(0.5905), Some(0.7048), Some(0.7053), Some(0.7159)],
                    coarse_fp32: Some((0.05, 0.35, 6.0)),
                    coarse_int8: Some((0.05, 0.35, 6.0)),
                },
            },
            ModelId::DenseNet => ModelSpec {
                id: self,
                display_name: "DenseNet201",
                paper_dataset: "ILSVRC2012",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 76.0,
                    ifm_weight_size_mb: 439.0,
                    baseline_accuracy: [Some(0.0031), Some(0.7460), Some(0.7482), Some(0.7690)],
                    coarse_fp32: Some((0.015, 0.25, 2.0)),
                    coarse_int8: Some((0.015, 0.25, 2.0)),
                },
            },
            ModelId::SqueezeNet => ModelSpec {
                id: self,
                display_name: "SqueezeNet1.1",
                paper_dataset: "ILSVRC2012",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 4.8,
                    ifm_weight_size_mb: 53.8,
                    baseline_accuracy: [Some(0.0807), Some(0.5707), Some(0.5739), Some(0.5818)],
                    coarse_fp32: Some((0.005, 0.10, 1.0)),
                    coarse_int8: Some((0.005, 0.10, 1.0)),
                },
            },
            ModelId::AlexNet => ModelSpec {
                id: self,
                display_name: "AlexNet",
                paper_dataset: "CIFAR10",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 233.0,
                    ifm_weight_size_mb: 208.0,
                    baseline_accuracy: [Some(0.8313), Some(0.8604), Some(0.8721), Some(0.8913)],
                    coarse_fp32: Some((0.03, 0.30, 4.5)),
                    coarse_int8: Some((0.03, 0.30, 4.5)),
                },
            },
            ModelId::Yolo => ModelSpec {
                id: self,
                display_name: "YOLO",
                paper_dataset: "MSCOCO",
                metric: "mAP",
                paper: PaperRecord {
                    model_size_mb: 237.0,
                    ifm_weight_size_mb: 360.0,
                    baseline_accuracy: [None, Some(0.4460), None, Some(0.5530)],
                    coarse_fp32: Some((0.05, 0.35, 6.0)),
                    coarse_int8: Some((0.04, 0.30, 5.5)),
                },
            },
            ModelId::YoloTiny => ModelSpec {
                id: self,
                display_name: "YOLO-Tiny",
                paper_dataset: "MSCOCO",
                metric: "mAP",
                paper: PaperRecord {
                    model_size_mb: 33.8,
                    ifm_weight_size_mb: 51.3,
                    baseline_accuracy: [None, Some(0.1410), None, Some(0.2370)],
                    coarse_fp32: Some((0.035, 0.30, 5.0)),
                    coarse_int8: Some((0.03, 0.30, 4.5)),
                },
            },
            ModelId::LeNet => ModelSpec {
                id: self,
                display_name: "LeNet",
                paper_dataset: "CIFAR10",
                metric: "accuracy",
                paper: PaperRecord {
                    model_size_mb: 1.65,
                    ifm_weight_size_mb: 2.30,
                    baseline_accuracy: [None, Some(0.6130), None, Some(0.6740)],
                    coarse_fp32: None,
                    coarse_int8: None,
                },
            },
        }
    }

    /// Generates the synthetic dataset this model is evaluated on.
    pub fn dataset(self, seed: u64) -> SyntheticVision {
        match self {
            ModelId::Vgg16 | ModelId::DenseNet | ModelId::SqueezeNet => {
                SyntheticVision::imagenet_like(seed)
            }
            ModelId::Yolo | ModelId::YoloTiny => SyntheticVision::detection_like(seed),
            _ => SyntheticVision::small(seed),
        }
    }

    /// Builds the (untrained) network for this model on a dataset spec.
    pub fn build(self, spec: &DatasetSpec, seed: u64) -> Network {
        match self {
            ModelId::ResNet => resnet_mini(spec, seed),
            ModelId::MobileNet => mobilenet_mini(spec, seed),
            ModelId::Vgg16 => vgg_mini(spec, seed),
            ModelId::DenseNet => densenet_mini(spec, seed),
            ModelId::SqueezeNet => squeezenet_mini(spec, seed),
            ModelId::AlexNet => alexnet_mini(spec, seed),
            ModelId::Yolo => yolo_mini(spec, seed),
            ModelId::YoloTiny => yolo_tiny_mini(spec, seed),
            ModelId::LeNet => lenet(spec, seed),
        }
    }
}

/// LeNet: two convolutions with pooling followed by two dense layers. Used
/// for the real-device experiments (Figures 7 and 9).
pub fn lenet(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("lenet", &spec.input_shape());
    let (h, w) = (spec.height, spec.width);
    net.push(Conv2d::new("conv1", spec.channels, 6, 5, 1, 2, &mut rng))
        .push(Relu::new("relu1"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2", 6, 16, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Flatten::new("flatten"))
        .push(Dense::new("fc1", 16 * (h / 4) * (w / 4), 32, &mut rng))
        .push(Relu::new("relu3"))
        .push(Dense::new("fc2", 32, spec.num_classes, &mut rng));
    net
}

/// AlexNet stand-in: three convolutions with pooling and two dense layers.
pub fn alexnet_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("alexnet", &spec.input_shape());
    let (h, w) = (spec.height, spec.width);
    net.push(Conv2d::new("conv1", spec.channels, 12, 3, 1, 1, &mut rng))
        .push(Relu::new("relu1"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2", 12, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Conv2d::new("conv3", 24, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu3"))
        .push(Flatten::new("flatten"))
        .push(Dense::new("fc1", 24 * (h / 4) * (w / 4), 64, &mut rng))
        .push(Relu::new("relu4"))
        .push(Dense::new("fc2", 64, spec.num_classes, &mut rng));
    net
}

/// VGG-16 stand-in: stacked 3×3 convolutions and the zoo's largest dense
/// classifier (preserving VGG's "largest model" role in Table 1).
pub fn vgg_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("vgg16", &spec.input_shape());
    let (h, w) = (spec.height, spec.width);
    net.push(Conv2d::new("conv1_1", spec.channels, 12, 3, 1, 1, &mut rng))
        .push(Relu::new("relu1_1"))
        .push(Conv2d::new("conv1_2", 12, 12, 3, 1, 1, &mut rng))
        .push(Relu::new("relu1_2"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2_1", 12, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2_1"))
        .push(Conv2d::new("conv2_2", 24, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2_2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Conv2d::new("conv3_1", 24, 32, 3, 1, 1, &mut rng))
        .push(Relu::new("relu3_1"))
        .push(Flatten::new("flatten"))
        .push(Dense::new("fc1", 32 * (h / 4) * (w / 4), 160, &mut rng))
        .push(Relu::new("relu_fc1"))
        .push(Dense::new("fc2", 160, spec.num_classes, &mut rng));
    net
}

/// ResNet101 stand-in: an initial convolution followed by four residual
/// blocks and a global-average-pooled classifier.
pub fn resnet_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("resnet101", &spec.input_shape());
    net.push(Conv2d::new("stem", spec.channels, 12, 3, 1, 1, &mut rng))
        .push(ChannelNorm::new("stem_norm", 12))
        .push(Relu::new("stem_relu"))
        .push(Residual::new("res1", 12, 12, 1, &mut rng))
        .push(Residual::new("res2", 12, 24, 2, &mut rng))
        .push(Residual::new("res3", 24, 24, 1, &mut rng))
        .push(Residual::new("res4", 24, 32, 2, &mut rng))
        .push(GlobalAvgPool::new("gap"))
        .push(Dense::new("fc", 32, spec.num_classes, &mut rng));
    net
}

/// MobileNetV2 stand-in: depthwise-separable blocks.
pub fn mobilenet_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("mobilenetv2", &spec.input_shape());
    net.push(Conv2d::new("stem", spec.channels, 12, 3, 2, 1, &mut rng))
        .push(ChannelNorm::new("stem_norm", 12))
        .push(Relu::new("stem_relu"))
        .push(DepthwiseSeparable::new("ds1", 12, 24, 1, &mut rng))
        .push(DepthwiseSeparable::new("ds2", 24, 32, 2, &mut rng))
        .push(DepthwiseSeparable::new("ds3", 32, 32, 1, &mut rng))
        .push(GlobalAvgPool::new("gap"))
        .push(Dense::new("fc", 32, spec.num_classes, &mut rng));
    net
}

/// SqueezeNet1.1 stand-in: fire modules and the zoo's smallest weight
/// footprint.
pub fn squeezenet_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("squeezenet1.1", &spec.input_shape());
    net.push(Conv2d::new("stem", spec.channels, 8, 3, 2, 1, &mut rng))
        .push(Relu::new("stem_relu"))
        .push(Fire::new("fire1", 8, 4, 8, &mut rng))
        .push(Fire::new("fire2", 16, 4, 8, &mut rng))
        .push(MaxPool2d::new("pool", 2, 2))
        .push(Fire::new("fire3", 16, 6, 12, &mut rng))
        .push(GlobalAvgPool::new("gap"))
        .push(Dense::new("fc", 24, spec.num_classes, &mut rng));
    net
}

/// DenseNet201 stand-in: densely connected blocks with channel concatenation.
pub fn densenet_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("densenet201", &spec.input_shape());
    net.push(Conv2d::new("stem", spec.channels, 12, 3, 1, 1, &mut rng))
        .push(Relu::new("stem_relu"))
        .push(DenseBlock::new("dense1", 12, 8, &mut rng))
        .push(DenseBlock::new("dense2", 20, 8, &mut rng))
        .push(MaxPool2d::new("pool", 2, 2))
        .push(DenseBlock::new("dense3", 28, 8, &mut rng))
        .push(DenseBlock::new("dense4", 36, 8, &mut rng))
        .push(GlobalAvgPool::new("gap"))
        .push(Dense::new("fc", 44, spec.num_classes, &mut rng));
    net
}

/// YOLO stand-in: the deeper of the two detection models.
pub fn yolo_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("yolo", &spec.input_shape());
    let (h, w) = (spec.height, spec.width);
    net.push(Conv2d::new("conv1", spec.channels, 16, 3, 1, 1, &mut rng))
        .push(Relu::new("relu1"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2", 16, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Conv2d::new("conv3", 24, 32, 3, 1, 1, &mut rng))
        .push(Relu::new("relu3"))
        .push(Conv2d::new("conv4", 32, 32, 3, 1, 1, &mut rng))
        .push(Relu::new("relu4"))
        .push(Flatten::new("flatten"))
        .push(Dense::new("fc1", 32 * (h / 4) * (w / 4), 96, &mut rng))
        .push(Relu::new("relu5"))
        .push(Dense::new("fc2", 96, spec.num_classes, &mut rng));
    net
}

/// YOLO-Tiny stand-in: a shallower detection model.
pub fn yolo_tiny_mini(spec: &DatasetSpec, seed: u64) -> Network {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new("yolo-tiny", &spec.input_shape());
    let (h, w) = (spec.height, spec.width);
    net.push(Conv2d::new("conv1", spec.channels, 12, 3, 1, 1, &mut rng))
        .push(Relu::new("relu1"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2", 12, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Conv2d::new("conv3", 24, 24, 3, 1, 1, &mut rng))
        .push(Relu::new("relu3"))
        .push(Flatten::new("flatten"))
        .push(Dense::new(
            "fc",
            24 * (h / 4) * (w / 4),
            spec.num_classes,
            &mut rng,
        ));
    net
}

/// A trained zoo model plus the synthetic dataset it was trained on, shared
/// behind `Arc`s so any number of evaluation sessions (and the serving
/// layer's shards) reference one copy of the weights and samples.
#[derive(Clone)]
pub struct ZooEntry {
    /// The trained network.
    pub net: std::sync::Arc<Network>,
    /// The dataset the network was trained (and is evaluated) on.
    pub dataset: std::sync::Arc<SyntheticVision>,
}

/// A thread-safe, lazily-populated zoo of *trained* models.
///
/// Construction is deterministic: every entry is trained with the zoo's
/// fixed `(epochs, seed)` configuration, so two zoos with the same
/// configuration — e.g. the one inside a long-running evaluation service and
/// the one a correctness test builds locally — produce bit-identical
/// networks. Entries are trained once, on first request; concurrent
/// requests for the *same* model block until its training finishes, while
/// different models train independently.
pub struct ModelZoo {
    epochs: usize,
    seed: u64,
    entries: std::sync::Mutex<
        std::collections::HashMap<ModelId, std::sync::Arc<std::sync::OnceLock<ZooEntry>>>,
    >,
    builds: std::sync::atomic::AtomicU64,
}

impl ModelZoo {
    /// Creates an empty zoo; every model requested from it is trained for
    /// `epochs` epochs from `seed`.
    pub fn new(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            seed,
            entries: std::sync::Mutex::new(std::collections::HashMap::new()),
            builds: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The zoo's training configuration, `(epochs, seed)`.
    pub fn config(&self) -> (usize, u64) {
        (self.epochs, self.seed)
    }

    /// Number of models trained so far (a cache-miss counter: requests that
    /// found their model already resident do not increment it).
    pub fn models_built(&self) -> u64 {
        self.builds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The trained entry for `id`, training it on first request.
    pub fn get(&self, id: ModelId) -> ZooEntry {
        let slot = {
            let mut entries = self.entries.lock().unwrap();
            entries.entry(id).or_default().clone()
        };
        // Training runs outside the map lock so distinct models never
        // serialize on each other; `OnceLock` serializes same-model racers.
        slot.get_or_init(|| {
            use crate::data::Dataset as _;
            self.builds
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dataset = id.dataset(self.seed);
            let mut net = id.build(&dataset.spec(), self.seed);
            crate::train::Trainer::new(crate::train::TrainConfig {
                epochs: self.epochs,
                seed: self.seed,
                ..crate::train::TrainConfig::default()
            })
            .train(&mut net, &dataset);
            ZooEntry {
                net: std::sync::Arc::new(net),
                dataset: std::sync::Arc::new(dataset),
            }
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use eden_tensor::Tensor;

    #[test]
    fn every_zoo_model_builds_and_runs_forward() {
        for id in ModelId::all() {
            let dataset = id.dataset(0);
            let spec = dataset.spec();
            let net = id.build(&spec, 1);
            let x = Tensor::zeros(&spec.input_shape());
            let y = net.forward(&x);
            assert_eq!(
                y.shape(),
                &[spec.num_classes],
                "{id}: output shape mismatch"
            );
            assert!(net.param_count() > 0, "{id}: no parameters");
        }
    }

    #[test]
    fn every_zoo_model_supports_backward() {
        for id in ModelId::all() {
            let dataset = id.dataset(0);
            let spec = dataset.spec();
            let mut net = id.build(&spec, 1);
            let (x, label) = &dataset.train()[0];
            let logits = net.forward_train(x);
            let (_, d) = crate::loss::cross_entropy(&logits, *label);
            let d_in = net.backward(&d);
            assert_eq!(d_in.shape(), spec.input_shape().as_slice(), "{id}");
        }
    }

    #[test]
    fn data_flow_shapes_are_consistent_with_forward() {
        for id in [ModelId::ResNet, ModelId::SqueezeNet, ModelId::DenseNet] {
            let dataset = id.dataset(0);
            let spec = dataset.spec();
            let net = id.build(&spec, 2);
            let x = Tensor::zeros(&spec.input_shape());
            let mut cur = x.clone();
            for (layer, expected) in net.layers().iter().zip(net.data_flow_shapes()) {
                cur = layer.forward(&cur);
                assert_eq!(cur.shape(), expected.as_slice(), "{id}/{}", layer.name());
            }
        }
    }

    #[test]
    fn model_size_ordering_roughly_matches_paper() {
        // VGG must be the largest-weight model and SqueezeNet/LeNet the
        // smallest, preserving the Table 1 ordering that matters for the
        // paper's "larger DNNs are more error resilient" observation.
        let params = |id: ModelId| {
            let d = id.dataset(0);
            id.build(&d.spec(), 0).param_count()
        };
        let vgg = params(ModelId::Vgg16);
        for id in ModelId::all() {
            assert!(params(id) <= vgg, "{id} larger than VGG");
        }
        assert!(params(ModelId::SqueezeNet) < params(ModelId::ResNet));
        assert!(params(ModelId::LeNet) < params(ModelId::AlexNet));
    }

    #[test]
    fn paper_metadata_is_complete() {
        for id in ModelId::all() {
            let spec = id.spec();
            assert!(spec.paper.model_size_mb > 0.0);
            assert!(spec.paper.ifm_weight_size_mb > 0.0);
            assert!(!spec.display_name.is_empty());
        }
        assert_eq!(ModelId::Yolo.spec().metric, "mAP");
        assert_eq!(ModelId::ResNet.spec().metric, "accuracy");
    }

    #[test]
    fn dataset_assignment_matches_paper() {
        assert_eq!(ModelId::Vgg16.dataset(0).name(), "ilsvrc-syn");
        assert_eq!(ModelId::Yolo.dataset(0).name(), "mscoco-syn");
        assert_eq!(ModelId::ResNet.dataset(0).name(), "cifar10-syn");
    }

    #[test]
    fn model_keys_round_trip_through_from_str() {
        for id in ModelId::all() {
            assert_eq!(id.key().parse::<ModelId>(), Ok(id), "{id}");
        }
        assert_eq!("LeNet".parse::<ModelId>(), Ok(ModelId::LeNet));
        let err = "lnet".parse::<ModelId>().unwrap_err();
        assert!(err.contains("unknown model"), "{err}");
        assert!(err.contains("lenet"), "error must list valid keys: {err}");
    }

    #[test]
    fn model_zoo_trains_once_and_shares_entries() {
        let zoo = ModelZoo::new(1, 7);
        let a = zoo.get(ModelId::LeNet);
        let b = zoo.get(ModelId::LeNet);
        assert!(std::sync::Arc::ptr_eq(&a.net, &b.net));
        assert!(std::sync::Arc::ptr_eq(&a.dataset, &b.dataset));
        assert_eq!(zoo.models_built(), 1);
        // Deterministic: a second zoo with the same configuration trains a
        // bit-identical network.
        let other = ModelZoo::new(1, 7).get(ModelId::LeNet);
        let weights = |net: &Network| {
            let mut v = Vec::new();
            for layer in net.layers() {
                layer.visit_params_ref(&mut |_, t| v.extend(t.data().iter().map(|x| x.to_bits())));
            }
            v
        };
        assert_eq!(weights(&a.net), weights(&other.net));
    }
}
