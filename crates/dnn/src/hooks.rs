//! Fault-injection hooks.
//!
//! EDEN corrupts the DNN data types that live in approximate DRAM: layer
//! weights and input feature maps (IFMs). A [`FaultHook`] is invoked whenever
//! such a data type is "loaded from memory" during inference or retraining,
//! and may flip bits of its stored representation. The EDEN framework
//! (`eden-core`) implements hooks backed by DRAM error models and by the
//! simulated approximate DRAM device.

use eden_tensor::QuantTensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of DNN data type being loaded from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Layer weights (and biases).
    Weight,
    /// Input feature map of a layer.
    Ifm,
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataKind::Weight => f.write_str("weight"),
            DataKind::Ifm => f.write_str("ifm"),
        }
    }
}

/// Identifies one DNN data type: a (layer, kind) pair.
///
/// This is the granularity at which the paper's fine-grained characterization
/// assigns tolerable bit error rates (Section 3.3) and at which Algorithm 1
/// maps data to DRAM partitions (Section 3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataSite {
    /// Index of the layer within the network.
    pub layer_index: usize,
    /// Name of the layer.
    pub layer_name: String,
    /// Whether this is the layer's weights or its IFM.
    pub kind: DataKind,
}

impl DataSite {
    /// Creates a data site.
    pub fn new(layer_index: usize, layer_name: impl Into<String>, kind: DataKind) -> Self {
        Self {
            layer_index,
            layer_name: layer_name.into(),
            kind,
        }
    }
}

impl fmt::Display for DataSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}[{}]", self.layer_index, self.layer_name, self.kind)
    }
}

/// A hook invoked on every load of a DNN data type from (approximate) memory.
pub trait FaultHook {
    /// Corrupts (or leaves untouched) the stored representation of a data
    /// type that was just loaded from memory.
    fn corrupt(&mut self, site: &DataSite, tensor: &mut QuantTensor);
}

/// A hook that never injects faults (reliable DRAM).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn corrupt(&mut self, _site: &DataSite, _tensor: &mut QuantTensor) {}
}

impl<F> FaultHook for F
where
    F: FnMut(&DataSite, &mut QuantTensor),
{
    fn corrupt(&mut self, site: &DataSite, tensor: &mut QuantTensor) {
        self(site, tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::{Precision, Tensor};

    #[test]
    fn no_faults_leaves_tensor_unchanged() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        let before = q.clone();
        NoFaults.corrupt(&DataSite::new(0, "conv", DataKind::Weight), &mut q);
        assert_eq!(q, before);
    }

    #[test]
    fn closures_are_hooks() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        let mut hook = |_site: &DataSite, tensor: &mut QuantTensor| tensor.flip_bit(0, 0);
        hook.corrupt(&DataSite::new(1, "fc", DataKind::Ifm), &mut q);
        assert_eq!(
            q.bit_differences(&QuantTensor::quantize(&t, Precision::Int8)),
            1
        );
    }

    #[test]
    fn data_site_display_is_informative() {
        let s = DataSite::new(3, "conv2", DataKind::Weight);
        assert_eq!(s.to_string(), "3/conv2[weight]");
    }
}
