//! Sequential networks of layers.
//!
//! # Serving weights from approximate DRAM
//!
//! Weight corruption has two production forms, both driven by the cached
//! clean bit images of [`Network::weight_images`]:
//!
//! * **Image reload** ([`Network::load_corrupted_weights`]): per refetch,
//!   clone each clean image, corrupt it through a [`FaultHook`], dequantize
//!   into the parameter buffers — O(total weights) per refetch. This is the
//!   reference implementation the sparse path is pinned against.
//! * **Sparse overlays** ([`Network::apply_overlay`] /
//!   [`Network::revert_overlay`]): hold the parameters at the dequantized
//!   clean baseline ([`Network::load_clean_weights`]) and patch only the
//!   words a [`CorruptionOverlay`] touches — O(flips) per refetch, and
//!   `apply ∘ revert` restores the baseline exactly, so one persistent
//!   corrupted copy serves any number of fault draws without full reloads.
//!
//! Both forms produce bit-identical parameters for the same fault draw; the
//! workspace `overlay_equivalence` suite pins this.

use crate::hooks::{DataKind, DataSite, FaultHook};
use crate::layer::{Layer, ParamEntry};
use eden_tensor::{CorruptionOverlay, Precision, QuantTensor, Tensor};
use serde::{Deserialize, Serialize};

/// Description of one DNN data type (a layer's weights or IFM) and its size.
///
/// Used by the EDEN framework to enumerate mappable data and compute DRAM
/// footprints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataTypeInfo {
    /// Which data type this is.
    pub site: DataSite,
    /// Number of scalar elements.
    pub elements: usize,
}

impl DataTypeInfo {
    /// Size in bytes at a given precision, rounded **up** to whole bytes: an
    /// int4 tensor with an odd element count still occupies its final
    /// half-filled byte, and DRAM capacity checks must reserve it.
    pub fn bytes(&self, precision: Precision) -> u64 {
        (self.elements as u64 * precision.bits() as u64).div_ceil(8)
    }
}

/// The clean quantized bit image of one layer parameter, captured once per
/// evaluation (see [`Network::weight_images`]) so each weight refetch
/// corrupts a copy of the stored bits instead of cloning and re-quantizing
/// the whole network.
#[derive(Debug, Clone)]
pub struct WeightImage {
    /// The weight data site the parameter belongs to (one per layer — a
    /// layer's weight and bias share the site, as in
    /// [`Network::corrupt_weights`]).
    pub site: DataSite,
    /// Index of the owning layer.
    pub layer_index: usize,
    /// Parameter name within the layer (e.g. `"weight"`, `"bias"`).
    pub param_name: String,
    /// The clean quantized stored representation.
    pub clean: QuantTensor,
}

/// A feed-forward network: an ordered sequence of layers applied to a single
/// sample.
#[derive(Clone)]
pub struct Network {
    name: String,
    input_shape: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network for inputs of the given shape.
    pub fn new(name: impl Into<String>, input_shape: &[usize]) -> Self {
        Self {
            name: name.into(),
            input_shape: input_shape.to_vec(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected input shape (per sample).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Pure inference forward pass.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Training forward pass (caches intermediates in each layer).
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_train(&x);
        }
        x
    }

    /// Backward pass through all layers; returns the gradient with respect to
    /// the network input.
    pub fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Zeros all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Visits every parameter of every layer (training order).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits every parameter immutably.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }

    /// Visits every parameter with the index of its owning layer (same order
    /// as [`Network::visit_params`]).
    pub fn visit_params_layers(&mut self, f: &mut dyn FnMut(usize, ParamEntry<'_>)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params(&mut |p| f(i, p));
        }
    }

    /// Collects all accumulated gradients in visit order.
    pub fn collect_grads(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.grad.clone()));
        out
    }

    /// Overwrites all accumulated gradients from a vector in visit order
    /// (e.g. gradients computed on a corrupted copy of the network).
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the parameter structure.
    pub fn set_grads(&mut self, grads: &[Tensor]) {
        let mut i = 0;
        self.visit_params(&mut |p| {
            assert!(i < grads.len(), "not enough gradient tensors");
            assert_eq!(p.grad.shape(), grads[i].shape(), "gradient shape mismatch");
            *p.grad = grads[i].clone();
            i += 1;
        });
        assert_eq!(i, grads.len(), "too many gradient tensors");
    }

    /// Predicted class for a single sample (argmax of the output logits).
    pub fn predict(&self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// The output logits dimension (class count), derived from shapes.
    pub fn output_classes(&self) -> usize {
        self.data_flow_shapes()
            .last()
            .map(|s| s.iter().product())
            .unwrap_or(0)
    }

    /// The shape of every layer's output (last entry is the network output).
    pub fn data_flow_shapes(&self) -> Vec<Vec<usize>> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = self.input_shape.clone();
        for layer in &self.layers {
            cur = layer.output_shape(&cur);
            shapes.push(cur.clone());
        }
        shapes
    }

    /// Enumerates every mappable DNN data type: one weight entry per layer
    /// with parameters, plus one IFM entry per layer (the layer's input).
    pub fn data_sites(&self) -> Vec<DataTypeInfo> {
        let mut out = Vec::new();
        let mut cur_shape = self.input_shape.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            // IFM: the input of this layer.
            out.push(DataTypeInfo {
                site: DataSite::new(i, layer.name(), DataKind::Ifm),
                elements: cur_shape.iter().product(),
            });
            // Weights, if any.
            let params = layer.param_count();
            if params > 0 {
                out.push(DataTypeInfo {
                    site: DataSite::new(i, layer.name(), DataKind::Weight),
                    elements: params,
                });
            }
            cur_shape = layer.output_shape(&cur_shape);
        }
        out
    }

    /// Approximate multiply-accumulate count for one inference.
    pub fn total_macs(&self) -> u64 {
        let mut total = 0;
        let mut cur = self.input_shape.clone();
        for layer in &self.layers {
            total += layer.macs(&cur);
            cur = layer.output_shape(&cur);
        }
        total
    }

    /// Total bytes of all weights at a precision, rounding each parameter
    /// tensor **up** to whole bytes (tensors are stored at byte granularity,
    /// so an int4 tensor with an odd element count pads its last byte —
    /// truncating `bits/8` under-reported Table 1 footprints and DRAM
    /// capacity requirements for such models).
    pub fn weight_bytes(&self, precision: Precision) -> u64 {
        let bits = precision.bits() as u64;
        let mut total = 0u64;
        self.visit_params_ref(&mut |_, t| total += (t.len() as u64 * bits).div_ceil(8));
        total
    }

    /// Total bytes of all IFMs (per inference of one sample) at a precision,
    /// rounding each IFM tensor up to whole bytes like
    /// [`Network::weight_bytes`].
    pub fn ifm_bytes(&self, precision: Precision) -> u64 {
        let bits = precision.bits() as u64;
        let mut total = 0u64;
        let mut cur: Vec<usize> = self.input_shape.clone();
        for layer in &self.layers {
            total += (cur.iter().product::<usize>() as u64 * bits).div_ceil(8);
            cur = layer.output_shape(&cur);
        }
        total
    }

    /// Corrupts all layer weights in place by round-tripping them through the
    /// stored representation at `precision` and applying `hook` — modelling
    /// weights that reside in approximate DRAM.
    pub fn corrupt_weights(&mut self, precision: Precision, hook: &mut dyn FaultHook) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let site = DataSite::new(i, layer.name(), DataKind::Weight);
            layer.visit_params(&mut |p| {
                let mut q = QuantTensor::quantize(p.value, precision);
                hook.corrupt(&site, &mut q);
                *p.value = q.dequantize();
            });
        }
    }

    /// Captures the clean quantized bit image of every layer parameter, in
    /// the exact order [`Network::corrupt_weights`] visits them.
    ///
    /// Computed once per evaluation, the images let each weight refetch
    /// corrupt a *copy* of the stored bits
    /// ([`Network::load_corrupted_weights`]) instead of re-cloning and
    /// re-quantizing the network — quantization is deterministic, so the
    /// corrupted results are bit-identical to the clone-based path.
    pub fn weight_images(&self, precision: Precision) -> Vec<WeightImage> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let site = DataSite::new(i, layer.name(), DataKind::Weight);
            layer.visit_params_ref(&mut |name, t| {
                out.push(WeightImage {
                    site: site.clone(),
                    layer_index: i,
                    param_name: name.to_string(),
                    clean: QuantTensor::quantize(t, precision),
                });
            });
        }
        out
    }

    /// Overwrites this network's parameters with freshly corrupted copies of
    /// the cached clean bit images: per parameter, clone the stored bits,
    /// apply `hook`, dequantize into the existing parameter buffer. Consumes
    /// `hook` load streams in exactly the same order (and with exactly the
    /// same tensors) as [`Network::corrupt_weights`] on a clean copy.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not match this network's parameter structure.
    pub fn load_corrupted_weights(&mut self, images: &[WeightImage], hook: &mut dyn FaultHook) {
        let mut cursor = 0usize;
        self.visit_params_layers(&mut |layer_index, p| {
            let img = images.get(cursor).expect("missing weight image");
            cursor += 1;
            debug_assert_eq!(img.layer_index, layer_index, "weight image order");
            debug_assert_eq!(img.param_name, p.name, "weight image order");
            let mut q = img.clean.clone();
            hook.corrupt(&img.site, &mut q);
            q.dequantize_into(p.value.data_mut());
        });
        assert_eq!(cursor, images.len(), "unconsumed weight images");
    }

    /// Overwrites this network's parameters with the **dequantized clean**
    /// bit images — the baseline state of the sparse-overlay refetch path.
    /// Equivalent to [`Network::load_corrupted_weights`] with a no-op hook,
    /// without consuming any load streams.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not match this network's parameter structure.
    pub fn load_clean_weights(&mut self, images: &[WeightImage]) {
        let mut cursor = 0usize;
        self.visit_params_layers(&mut |layer_index, p| {
            let img = images.get(cursor).expect("missing weight image");
            cursor += 1;
            debug_assert_eq!(img.layer_index, layer_index, "weight image order");
            debug_assert_eq!(img.param_name, p.name, "weight image order");
            img.clean.dequantize_into(p.value.data_mut());
        });
        assert_eq!(cursor, images.len(), "unconsumed weight images");
    }

    /// Patches this network's parameters with one [`CorruptionOverlay`] per
    /// weight image: only the words each overlay touches are re-dequantized
    /// (from `clean bits ^ mask`), so the cost is O(flips) instead of
    /// O(total weights).
    ///
    /// The parameters must currently hold the dequantized clean images —
    /// either via [`Network::load_clean_weights`] or after
    /// [`Network::revert_overlay`] of the previously applied overlays. The
    /// result is then bit-identical to [`Network::load_corrupted_weights`]
    /// with a hook producing the same corruption.
    ///
    /// # Panics
    ///
    /// Panics if `images`/`overlays` do not match the parameter structure.
    pub fn apply_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        self.patch_overlay(images, overlays, true);
    }

    /// Undoes [`Network::apply_overlay`]: restores every touched word to its
    /// dequantized clean value, leaving the parameters back at the
    /// [`Network::load_clean_weights`] baseline in O(flips).
    ///
    /// # Panics
    ///
    /// Panics if `images`/`overlays` do not match the parameter structure.
    pub fn revert_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        self.patch_overlay(images, overlays, false);
    }

    fn patch_overlay(
        &mut self,
        images: &[WeightImage],
        overlays: &[CorruptionOverlay],
        apply: bool,
    ) {
        assert_eq!(images.len(), overlays.len(), "one overlay per image");
        let mut cursor = 0usize;
        self.visit_params_layers(&mut |layer_index, p| {
            let (img, overlay) = (&images[cursor], &overlays[cursor]);
            cursor += 1;
            debug_assert_eq!(img.layer_index, layer_index, "weight image order");
            debug_assert_eq!(img.param_name, p.name, "weight image order");
            let data = p.value.data_mut();
            for (i, word) in overlay.patched_words(&img.clean, apply) {
                data[i] = img.clean.word_value(word);
            }
        });
        assert_eq!(cursor, images.len(), "unconsumed weight images");
    }

    /// Pure forward pass in which every layer's IFM is round-tripped through
    /// the stored representation at `precision` and corrupted by `hook`
    /// before use — modelling IFMs that are stored to and loaded from
    /// approximate DRAM between layers.
    pub fn forward_with_ifm_hook(
        &self,
        input: &Tensor,
        precision: Precision,
        hook: &mut dyn FaultHook,
    ) -> Tensor {
        self.forward_with_ifm_hook_from(input, 0, precision, hook)
    }

    /// Resume form of [`Network::forward_with_ifm_hook`]: `x` is the
    /// activation entering layer `start` (the network input when `start` is
    /// 0), and only layers `start..` execute — each still storing, loading
    /// and corrupting its IFM through `hook` exactly as the full pass would.
    ///
    /// Given the activation a full pass produces at the `start` boundary and
    /// a hook whose state matches that point of the load sequence, the
    /// output is bit-identical to the full pass: the prefix is *skipped*,
    /// not approximated. This is the executor half of incremental
    /// re-evaluation from clean-activation checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `start` exceeds the network depth.
    pub fn forward_with_ifm_hook_from(
        &self,
        x: &Tensor,
        start: usize,
        precision: Precision,
        hook: &mut dyn FaultHook,
    ) -> Tensor {
        assert!(
            start <= self.layers.len(),
            "resume layer {start} exceeds depth {}",
            self.layers.len()
        );
        let mut x = x.clone();
        for (i, layer) in self.layers.iter().enumerate().skip(start) {
            let site = DataSite::new(i, layer.name(), DataKind::Ifm);
            let mut q = QuantTensor::quantize(&x, precision);
            hook.corrupt(&site, &mut q);
            x = layer.forward(&q.dequantize());
        }
        x
    }

    /// Training forward pass with IFM corruption (used by curricular
    /// retraining, which runs the forward pass on approximate DRAM).
    pub fn forward_train_with_ifm_hook(
        &mut self,
        input: &Tensor,
        precision: Precision,
        hook: &mut dyn FaultHook,
    ) -> Tensor {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let site = DataSite::new(i, layer.name(), DataKind::Ifm);
            let mut q = QuantTensor::quantize(&x, precision);
            hook.corrupt(&site, &mut q);
            x = layer.forward_train(&q.dequantize());
        }
        x
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network({}, {} layers, {} params, input {:?})",
            self.name,
            self.depth(),
            self.param_count(),
            self.input_shape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use eden_tensor::init::{seeded_rng, uniform};

    fn tiny_net(seed: u64) -> Network {
        let mut rng = seeded_rng(seed);
        let mut net = Network::new("tiny", &[1, 8, 8]);
        net.push(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut rng))
            .push(Relu::new("relu1"))
            .push(MaxPool2d::new("pool1", 2, 2))
            .push(Flatten::new("flatten"))
            .push(Dense::new("fc", 4 * 4 * 4, 3, &mut rng));
        net
    }

    #[test]
    fn forward_output_matches_declared_shapes() {
        let net = tiny_net(0);
        let x = Tensor::zeros(&[1, 8, 8]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[3]);
        assert_eq!(net.data_flow_shapes().last().unwrap(), &vec![3]);
        assert_eq!(net.output_classes(), 3);
    }

    #[test]
    fn backward_runs_end_to_end() {
        let mut net = tiny_net(1);
        let mut rng = seeded_rng(9);
        let x = uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
        let y = net.forward_train(&x);
        let d = net.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(d.shape(), &[1, 8, 8]);
    }

    #[test]
    fn data_sites_enumerate_weights_and_ifms() {
        let net = tiny_net(2);
        let sites = net.data_sites();
        // 5 layers → 5 IFMs; conv + dense have weights → 2 weight entries.
        assert_eq!(sites.len(), 7);
        let weights: Vec<_> = sites
            .iter()
            .filter(|s| s.site.kind == DataKind::Weight)
            .collect();
        assert_eq!(weights.len(), 2);
        assert_eq!(
            weights.iter().map(|w| w.elements).sum::<usize>(),
            net.param_count()
        );
        // First IFM is the network input.
        assert_eq!(sites[0].elements, 64);
    }

    #[test]
    fn weight_and_ifm_bytes_scale_with_precision() {
        let net = tiny_net(3);
        assert_eq!(
            net.weight_bytes(Precision::Fp32),
            4 * net.weight_bytes(Precision::Int8)
        );
        assert!(net.ifm_bytes(Precision::Int8) > 0);
    }

    #[test]
    fn int4_footprints_round_up_odd_tensors() {
        // Dense(3→1): weight has 3 elements (12 bits → 2 bytes), bias has 1
        // (4 bits → 1 byte). Truncating division reported 2 bytes total.
        let mut rng = seeded_rng(0);
        let mut net = Network::new("odd", &[3]);
        net.push(Dense::new("fc", 3, 1, &mut rng));
        assert_eq!(net.weight_bytes(Precision::Int4), 3);
        // IFM of the only layer: 3 int4 elements → 2 bytes.
        assert_eq!(net.ifm_bytes(Precision::Int4), 2);
        // DataTypeInfo::bytes rounds up the same way.
        let sites = net.data_sites();
        assert_eq!(sites[0].bytes(Precision::Int4), 2); // 3-element IFM
        assert_eq!(sites[1].bytes(Precision::Int4), 2); // 4 params
    }

    #[test]
    fn load_corrupted_weights_matches_clone_based_corruption() {
        let net = tiny_net(8);
        // A content-independent hook that flips bit 0 of every value.
        let mut flip_all = |_: &DataSite, q: &mut QuantTensor| {
            for i in 0..q.len() {
                q.flip_bit(i, 0);
            }
        };
        let mut cloned = net.clone();
        cloned.corrupt_weights(Precision::Int8, &mut flip_all);

        let images = net.weight_images(Precision::Int8);
        let mut refreshed = net.clone();
        refreshed.load_corrupted_weights(&images, &mut flip_all);

        let x = Tensor::full(&[1, 8, 8], 0.3);
        assert_eq!(cloned.forward(&x), refreshed.forward(&x));
        // Refreshing again from the same clean images replays identically
        // (no cumulative corruption).
        refreshed.load_corrupted_weights(&images, &mut flip_all);
        assert_eq!(cloned.forward(&x), refreshed.forward(&x));
    }

    #[test]
    fn overlay_patching_matches_image_reload() {
        // The sparse refetch path: a persistent copy held at the clean
        // baseline, patched per draw, must track load_corrupted_weights bit
        // for bit — and revert must restore the exact baseline.
        let net = tiny_net(9);
        let images = net.weight_images(Precision::Int8);
        // Per-image overlays flipping a few scattered bits.
        let overlays: Vec<CorruptionOverlay> = images
            .iter()
            .map(|img| {
                let deltas: Vec<(u32, u32)> = (0..img.clean.len() as u32)
                    .step_by(5)
                    .map(|w| (w, 1 + (w % 7)))
                    .collect();
                let flips = deltas.iter().map(|&(_, m)| m.count_ones() as u64).sum();
                CorruptionOverlay::new(img.clean.len(), 8, deltas, flips, 0)
            })
            .collect();

        // Reference: full image reload through a hook applying the same
        // deltas.
        let mut cursor = 0usize;
        let mut reference = net.clone();
        reference.load_corrupted_weights(&images, &mut |_: &DataSite, q: &mut QuantTensor| {
            overlays[cursor].apply(q);
            cursor += 1;
        });

        let mut patched = net.clone();
        patched.load_clean_weights(&images);
        let baseline: Vec<Tensor> = {
            let mut out = Vec::new();
            patched.visit_params_ref(&mut |_, t| out.push(t.clone()));
            out
        };
        patched.apply_overlay(&images, &overlays);
        let x = Tensor::full(&[1, 8, 8], 0.3);
        assert_eq!(reference.forward(&x), patched.forward(&x));

        // Revert restores the clean baseline exactly; re-applying replays.
        patched.revert_overlay(&images, &overlays);
        let mut reverted = Vec::new();
        patched.visit_params_ref(&mut |_, t| reverted.push(t.clone()));
        assert_eq!(baseline, reverted);
        patched.apply_overlay(&images, &overlays);
        assert_eq!(reference.forward(&x), patched.forward(&x));
    }

    #[test]
    fn grads_round_trip_between_copies() {
        let mut a = tiny_net(4);
        let mut b = a.clone();
        let mut rng = seeded_rng(10);
        let x = uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
        let y = b.forward_train(&x);
        b.backward(&Tensor::full(y.shape(), 1.0));
        let grads = b.collect_grads();
        a.set_grads(&grads);
        assert_eq!(a.collect_grads(), grads);
    }

    #[test]
    fn corrupt_weights_changes_output() {
        let mut net = tiny_net(5);
        let mut rng = seeded_rng(11);
        let x = uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
        let clean = net.forward(&x);
        // Flip the MSB of every weight value — output must change.
        net.corrupt_weights(Precision::Int8, &mut |_: &DataSite, q: &mut QuantTensor| {
            for i in 0..q.len() {
                q.flip_bit(i, 7);
            }
        });
        let corrupted = net.forward(&x);
        assert_ne!(clean, corrupted);
    }

    #[test]
    fn ifm_hook_without_faults_matches_quantized_forward() {
        let net = tiny_net(6);
        let mut rng = seeded_rng(12);
        let x = uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
        let a = net.forward_with_ifm_hook(&x, Precision::Fp32, &mut crate::hooks::NoFaults);
        let b = net.forward(&x);
        // FP32 round-trip is lossless, so outputs are identical.
        assert_eq!(a, b);
    }

    #[test]
    fn cloned_network_is_independent() {
        let net = tiny_net(7);
        let mut copy = net.clone();
        copy.corrupt_weights(Precision::Int8, &mut |_: &DataSite, q: &mut QuantTensor| {
            for i in 0..q.len() {
                q.flip_bit(i, 0);
            }
        });
        let x = Tensor::full(&[1, 8, 8], 0.5);
        assert_ne!(net.forward(&x), copy.forward(&x));
    }
}
