//! Parameter-free layers: activations, pooling and flattening.

use crate::layer::{Layer, ParamEntry};
use eden_tensor::ops;
use eden_tensor::{QuantTensor, Tensor};

/// Rectified linear unit activation.
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
    cache_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cache_input: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        ops::relu(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_input = Some(input.clone());
        ops::relu(input)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward before forward_train");
        ops::relu_backward(input, d_out)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamEntry<'_>)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    /// `relu(q·s) = max(q, 0)·s` exactly (the scale is positive), so the
    /// native path applies ReLU in the integer domain and dequantizes the
    /// survivors in the same pass.
    fn quant_forward_activation(&self, input: &QuantTensor) -> Option<Tensor> {
        let scale = input.scale();
        let bits = input.bits_per_value();
        let data: Vec<f32> = input
            .stored()
            .iter()
            .map(|&s| {
                let q = eden_tensor::bits::sign_extend(s, bits);
                if q > 0 {
                    q as f32 * scale
                } else {
                    0.0
                }
            })
            .collect();
        Some(Tensor::from_vec(data, input.shape()))
    }
}

/// Max pooling over square windows.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    size: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max pooling layer with window `size` and stride `stride`.
    pub fn new(name: impl Into<String>, size: usize, stride: usize) -> Self {
        Self {
            name: name.into(),
            size,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        ops::maxpool2d(input, self.size, self.stride).0
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let (out, arg) = ops::maxpool2d(input, self.size, self.stride);
        self.cache = Some((input.shape().to_vec(), arg));
        out
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let (shape, arg) = self.cache.as_ref().expect("backward before forward_train");
        ops::maxpool2d_backward(shape, d_out, arg)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamEntry<'_>)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
        vec![
            c,
            (h - self.size) / self.stride + 1,
            (w - self.size) / self.stride + 1,
        ]
    }

    /// Dequantization is strictly monotone on the quantized integers, so
    /// selecting window maxima by integer comparison (first strict maximum
    /// wins, like [`ops::maxpool2d`]) picks values that dequantize to
    /// exactly the f32-path output — without materializing the f32 input or
    /// the training-path argmax buffer.
    fn quant_forward_activation(&self, input: &QuantTensor) -> Option<Tensor> {
        let shape = input.shape();
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (
            (h - self.size) / self.stride + 1,
            (w - self.size) / self.stride + 1,
        );
        let scale = input.scale();
        let bits = input.bits_per_value();
        let stored = input.stored();
        let mut out = vec![0.0f32; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = i32::MIN;
                    for ky in 0..self.size {
                        let iy = oy * self.stride + ky;
                        for kx in 0..self.size {
                            let ix = ox * self.stride + kx;
                            let q = eden_tensor::bits::sign_extend(
                                stored[ch * h * w + iy * w + ix],
                                bits,
                            );
                            if q > best {
                                best = q;
                            }
                        }
                    }
                    out[ch * oh * ow + oy * ow + ox] = best as f32 * scale;
                }
            }
        }
        Some(Tensor::from_vec(out, &[c, oh, ow]))
    }
}

/// Global average pooling: `[c, h, w] -> [c]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    name: String,
    cache_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cache_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        ops::global_avg_pool(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_shape = Some(input.shape().to_vec());
        ops::global_avg_pool(input)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("backward before forward_train");
        ops::global_avg_pool_backward(shape, d_out)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamEntry<'_>)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0]]
    }
}

/// Flattens any tensor into a rank-1 feature vector.
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cache_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        input.reshape(&[input.len()])
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_shape = Some(input.shape().to_vec());
        input.reshape(&[input.len()])
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("backward before forward_train");
        d_out.reshape(shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamEntry<'_>)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    /// Flattening is a pure reshape: dequantize straight into the rank-1
    /// output.
    fn quant_forward_activation(&self, input: &QuantTensor) -> Option<Tensor> {
        let mut data = vec![0.0f32; input.len()];
        input.dequantize_into(&mut data);
        let n = data.len();
        Some(Tensor::from_vec(data, &[n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward_agree_with_ops() {
        let mut l = Relu::new("relu");
        let x = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]);
        let y = l.forward_train(&x);
        assert_eq!(y.data(), &[0.0, 0.5, 3.0]);
        let g = l.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
        assert_eq!(l.param_count(), 0);
    }

    #[test]
    fn maxpool_output_shape_matches_forward() {
        let l = MaxPool2d::new("pool", 2, 2);
        let x = Tensor::zeros(&[3, 8, 8]);
        assert_eq!(l.forward(&x).shape(), l.output_shape(&[3, 8, 8]).as_slice());
    }

    #[test]
    fn flatten_round_trips_gradient_shape() {
        let mut l = Flatten::new("flatten");
        let x = Tensor::zeros(&[2, 3, 3]);
        let y = l.forward_train(&x);
        assert_eq!(y.shape(), &[18]);
        let g = l.backward(&Tensor::zeros(&[18]));
        assert_eq!(g.shape(), &[2, 3, 3]);
    }

    #[test]
    fn global_avg_pool_shapes() {
        let l = GlobalAvgPool::new("gap");
        assert_eq!(l.output_shape(&[16, 4, 4]), vec![16]);
        let x = Tensor::full(&[2, 2, 2], 3.0);
        assert_eq!(l.forward(&x).data(), &[3.0, 3.0]);
    }

    #[test]
    fn quantized_activations_match_dequantize_then_forward_exactly() {
        // The quantized-domain implementations must be bit-identical to
        // dequantize + f32 forward for every integer precision, including
        // negative values, ties inside pooling windows, and zeros.
        use eden_tensor::Precision;
        let data: Vec<f32> = (0..2 * 6 * 6)
            .map(|i| ((i as f32 * 0.7).sin() * 3.0 * ((i % 5) as f32 - 2.0)).round() * 0.25)
            .collect();
        let t = Tensor::from_vec(data, &[2, 6, 6]);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Relu::new("relu")),
            Box::new(MaxPool2d::new("pool", 2, 2)),
            Box::new(MaxPool2d::new("pool3", 3, 1)),
            Box::new(Flatten::new("flatten")),
        ];
        for p in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let q = QuantTensor::quantize(&t, p);
            for layer in &layers {
                let reference = layer.forward(&q.dequantize());
                let native = layer
                    .quant_forward_activation(&q)
                    .expect("activation layers implement the quantized path");
                assert_eq!(native, reference, "{} at {p}", layer.name());
            }
        }
    }

    #[test]
    fn global_avg_pool_has_no_quantized_path() {
        // Averaging does not commute with dequantization rounding, so the
        // layer must fall back to the f32 path rather than approximate it.
        let q = QuantTensor::quantize(&Tensor::zeros(&[2, 2, 2]), eden_tensor::Precision::Int8);
        assert!(GlobalAvgPool::new("gap")
            .quant_forward_activation(&q)
            .is_none());
    }

    #[test]
    fn boxed_layer_clone_works() {
        let l: Box<dyn Layer> = Box::new(Relu::new("r"));
        let c = l.clone();
        assert_eq!(c.name(), "r");
    }
}
