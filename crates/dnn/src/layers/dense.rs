//! Fully-connected (dense) layers.
//!
//! The forward pass is one call into the cache-blocked GEMM kernel in
//! `eden_tensor::ops` — the same kernel that backs the convolution layers
//! after their im2col lowering.

use crate::layer::{Layer, ParamEntry};
use crate::qexec::{self, QuantLayerParams, QuantScratch};
use eden_tensor::{init, ops, QuantTensor, Tensor};
use rand::rngs::StdRng;

/// A fully-connected layer computing `y = W x + b`.
///
/// Weights have shape `[out_features, in_features]`.
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cache_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform initialized weights.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            name: name.into(),
            weight: init::he_uniform(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cache_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    fn apply(&self, input: &Tensor) -> Tensor {
        let x = input.reshape(&[input.len(), 1]);
        let y = ops::matmul(&self.weight, &x);
        let mut out = y.reshape(&[self.out_features()]);
        out.axpy(1.0, &self.bias);
        out
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        self.apply(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_input = Some(input.reshape(&[input.len()]));
        self.apply(input)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward before forward_train");
        let n_in = self.in_features();
        let n_out = self.out_features();
        // d_weight[o, i] += d_out[o] * input[i]
        let gd = self.grad_weight.data_mut();
        for o in 0..n_out {
            let go = d_out.data()[o];
            if go == 0.0 {
                continue;
            }
            for i in 0..n_in {
                gd[o * n_in + i] += go * input.data()[i];
            }
        }
        self.grad_bias.axpy(1.0, d_out);
        // d_input[i] = sum_o d_out[o] * w[o, i]
        let mut d_in = vec![0.0f32; n_in];
        for o in 0..n_out {
            let go = d_out.data()[o];
            if go == 0.0 {
                continue;
            }
            let row = &self.weight.data()[o * n_in..(o + 1) * n_in];
            for (di, &w) in d_in.iter_mut().zip(row) {
                *di += go * w;
            }
        }
        Tensor::from_vec(d_in, &[n_in])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        f(ParamEntry {
            name: "weight",
            value: &mut self.weight,
            grad: &mut self.grad_weight,
        });
        f(ParamEntry {
            name: "bias",
            value: &mut self.bias,
            grad: &mut self.grad_bias,
        });
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", &self.weight);
        f("bias", &self.bias);
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features()]
    }

    /// Weight-stationary batched dense layer: the batch's activation vectors
    /// become the columns of one `[k, batch]` rhs, a single
    /// [`eden_tensor::ops::gemm_batch`] produces all outputs, and each bias
    /// is added after its product chain — mirroring the per-sample
    /// `matmul` + `axpy` ordering bit for bit.
    fn forward_batch(&self, inputs: &[&Tensor]) -> Option<Vec<Tensor>> {
        let (m, k) = (self.out_features(), self.in_features());
        let batch = inputs.len();
        if batch == 0 {
            return Some(Vec::new());
        }
        assert!(
            inputs.iter().all(|x| x.len() == k),
            "dense forward_batch input length mismatch"
        );
        let mut b = vec![0.0f32; k * batch];
        for (j, x) in inputs.iter().enumerate() {
            for (p, &v) in x.data().iter().enumerate() {
                b[p * batch + j] = v;
            }
        }
        let mut out = vec![0.0f32; m * batch];
        ops::gemm_batch(m, k, batch, self.weight.data(), &b, &mut out);
        let bd = self.bias.data();
        Some(
            (0..batch)
                .map(|j| {
                    let mut y = vec![0.0f32; m];
                    for (o, yo) in y.iter_mut().enumerate() {
                        *yo = out[o * batch + j];
                        *yo += bd[o];
                    }
                    Tensor::from_vec(y, &[m])
                })
                .collect(),
        )
    }

    fn supports_quant_forward(&self) -> bool {
        true
    }

    /// `y = (Σ qW·qx) · s_w·s_x + bias`, with the sum in exact integer
    /// arithmetic — one matvec kernel call plus a fused scale/bias epilogue.
    fn quant_forward(
        &self,
        input: &QuantTensor,
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Tensor> {
        let (m, k) = (self.out_features(), self.in_features());
        assert_eq!(input.len(), k, "dense quant_forward input length");
        if qexec::use_i8_kernels_for(input.precision(), k) {
            input.q_values_i8_into(&mut scratch.qx8);
        } else {
            input.q_values_into(&mut scratch.qx);
        }
        let scale = params.weight_scale * input.scale();
        let mut y = vec![0.0f32; m];
        qexec::quant_matvec_into(m, k, params, scratch, input.precision(), scale, &mut y);
        // Bias added after the product, mirroring the f32 path's
        // `matmul` + `axpy` ordering.
        for (o, &b) in y.iter_mut().zip(&params.bias) {
            *o += b;
        }
        Some(Tensor::from_vec(y, &[m]))
    }

    /// Batched quantized dense layer: every sample contributes one column to
    /// a single integer GEMM (the multi-sample form of the per-sample
    /// matvec), with each sample's own scale in the epilogue. Integer dots
    /// are exact and f32 addition commutative, so `bias + acc·s` here equals
    /// the per-sample `acc·s`-then-`+bias` bit for bit.
    fn quant_forward_batch(
        &self,
        inputs: &[&QuantTensor],
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Vec<Tensor>> {
        let (m, k) = (self.out_features(), self.in_features());
        let first = inputs.first()?;
        let precision = first.precision();
        assert!(
            inputs
                .iter()
                .all(|q| q.len() == k && q.precision() == precision),
            "dense quant_forward_batch requires uniform sample geometry"
        );
        let batch = inputs.len();
        // Batch-wide operand matrices live in the shared scratch: grown once
        // to the group size, reused across layers without reallocation.
        if qexec::use_i8_kernels_for(precision, k) {
            // Rows packed at the k-padded panel stride of the packed GEMM;
            // pad lanes stay zero from the bulk resize.
            let k_pad = ops::packed_stride_i8(k);
            scratch.cols8.clear();
            scratch.cols8.resize(batch * k_pad, 0);
            for (j, q) in inputs.iter().enumerate() {
                q.q_values_i8_into(&mut scratch.qx8);
                scratch.cols8[j * k_pad..j * k_pad + k].copy_from_slice(&scratch.qx8);
            }
        } else {
            scratch.cols.clear();
            scratch.cols.resize(k * batch, 0);
            let mut cols = std::mem::take(&mut scratch.cols);
            for (j, q) in inputs.iter().enumerate() {
                q.q_values_into(&mut scratch.qx);
                for (p, &v) in scratch.qx.iter().enumerate() {
                    cols[p * batch + j] = v;
                }
            }
            scratch.cols = cols;
        }
        let scales: Vec<f32> = inputs
            .iter()
            .map(|q| params.weight_scale * q.scale())
            .collect();
        let mut y = std::mem::take(&mut scratch.ybatch);
        y.resize(m * batch, 0.0);
        qexec::quant_gemm_bias_batch_into(
            m,
            k,
            1,
            params,
            scratch,
            precision,
            &scales,
            &params.bias,
            &mut y,
        );
        let out = (0..batch)
            .map(|j| {
                let col: Vec<f32> = (0..m).map(|o| y[o * batch + j]).collect();
                Tensor::from_vec(col, &[m])
            })
            .collect();
        scratch.ybatch = y;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::init::seeded_rng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = seeded_rng(0);
        let mut l = Dense::new("fc", 2, 2, &mut rng);
        l.visit_params(&mut |p| {
            if p.name == "weight" {
                *p.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                *p.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
            }
        });
        let y = l.forward(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = seeded_rng(3);
        let mut l = Dense::new("fc", 3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.4, -0.7, 1.2], &[3]);
        let _ = l.forward_train(&x);
        let d_out = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let d_in = l.backward(&d_out);

        // Numerical check of input gradient for loss = sum(d_out .* y).
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = l.forward(&xp).mul(&d_out).sum();
            let lm: f32 = l.forward(&xm).mul(&d_out).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - d_in.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut rng = seeded_rng(1);
        let mut l = Dense::new("fc", 2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        l.forward_train(&x);
        l.backward(&g);
        l.forward_train(&x);
        l.backward(&g);
        let mut sum = 0.0;
        l.visit_params(&mut |p| {
            if p.name == "bias" {
                sum = p.grad.sum();
            }
        });
        assert_eq!(sum, 4.0);
        l.zero_grads();
        l.visit_params(&mut |p| assert_eq!(p.grad.sum(), 0.0));
    }

    #[test]
    fn param_count_is_correct() {
        let mut rng = seeded_rng(2);
        let l = Dense::new("fc", 10, 5, &mut rng);
        assert_eq!(l.param_count(), 10 * 5 + 5);
    }
}
