//! Composite blocks used by the model zoo.
//!
//! Each block is a [`Layer`] built out of the primitive layers, mirroring the
//! structural motifs of the paper's evaluated networks: residual blocks
//! (ResNet101), fire modules (SqueezeNet1.1), depthwise-separable blocks
//! (MobileNetV2) and densely-connected blocks (DenseNet201).

use crate::layer::{Layer, ParamEntry};
use crate::layers::basic::Relu;
use crate::layers::conv::{concat_channels, split_channels, Conv2d, DepthwiseConv2d};
use crate::layers::norm::ChannelNorm;
use eden_tensor::Tensor;
use rand::rngs::StdRng;

/// A ResNet-style residual block: two 3×3 convolutions with a (possibly
/// projected) skip connection and a final ReLU.
#[derive(Clone)]
pub struct Residual {
    name: String,
    conv1: Conv2d,
    norm1: ChannelNorm,
    relu1: Relu,
    conv2: Conv2d,
    norm2: ChannelNorm,
    projection: Option<Conv2d>,
    cache_pre_activation: Option<Tensor>,
}

impl Residual {
    /// Creates a residual block mapping `in_channels` to `out_channels` with
    /// the given stride. A 1×1 projection is added to the shortcut when the
    /// shapes differ.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        let projection = if in_channels != out_channels || stride != 1 {
            Some(Conv2d::new(
                format!("{name}.proj"),
                in_channels,
                out_channels,
                1,
                stride,
                0,
                rng,
            ))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(
                format!("{name}.conv1"),
                in_channels,
                out_channels,
                3,
                stride,
                1,
                rng,
            ),
            norm1: ChannelNorm::new(format!("{name}.norm1"), out_channels),
            relu1: Relu::new(format!("{name}.relu1")),
            conv2: Conv2d::new(
                format!("{name}.conv2"),
                out_channels,
                out_channels,
                3,
                1,
                1,
                rng,
            ),
            norm2: ChannelNorm::new(format!("{name}.norm2"), out_channels),
            projection,
            cache_pre_activation: None,
            name,
        }
    }

    fn main_path(&self, input: &Tensor) -> Tensor {
        let x = self.conv1.forward(input);
        let x = self.norm1.forward(&x);
        let x = self.relu1.forward(&x);
        let x = self.conv2.forward(&x);
        self.norm2.forward(&x)
    }

    fn shortcut(&self, input: &Tensor) -> Tensor {
        match &self.projection {
            Some(p) => p.forward(input),
            None => input.clone(),
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        let main = self.main_path(input);
        let short = self.shortcut(input);
        eden_tensor::ops::relu(&main.add(&short))
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let x = self.conv1.forward_train(input);
        let x = self.norm1.forward_train(&x);
        let x = self.relu1.forward_train(&x);
        let x = self.conv2.forward_train(&x);
        let main = self.norm2.forward_train(&x);
        let short = match &mut self.projection {
            Some(p) => p.forward_train(input),
            None => input.clone(),
        };
        let pre = main.add(&short);
        self.cache_pre_activation = Some(pre.clone());
        eden_tensor::ops::relu(&pre)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let pre = self
            .cache_pre_activation
            .as_ref()
            .expect("backward before forward_train");
        let d_pre = eden_tensor::ops::relu_backward(pre, d_out);
        // Main path.
        let d = self.norm2.backward(&d_pre);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.norm1.backward(&d);
        let d_main_input = self.conv1.backward(&d);
        // Shortcut path.
        let d_short_input = match &mut self.projection {
            Some(p) => p.backward(&d_pre),
            None => d_pre,
        };
        d_main_input.add(&d_short_input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        self.conv1.visit_params(f);
        self.norm1.visit_params(f);
        self.conv2.visit_params(f);
        self.norm2.visit_params(f);
        if let Some(p) = &mut self.projection {
            p.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.conv1.visit_params_ref(f);
        self.norm1.visit_params_ref(f);
        self.conv2.visit_params_ref(f);
        self.norm2.visit_params_ref(f);
        if let Some(p) = &self.projection {
            p.visit_params_ref(f);
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        self.conv1.output_shape(input_shape)
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        let mid = self.conv1.output_shape(input_shape);
        let proj = self
            .projection
            .as_ref()
            .map(|p| p.macs(input_shape))
            .unwrap_or(0);
        self.conv1.macs(input_shape) + self.conv2.macs(&mid) + proj
    }
}

/// A SqueezeNet fire module: a 1×1 squeeze convolution followed by parallel
/// 1×1 and 3×3 expand convolutions whose outputs are concatenated.
#[derive(Clone)]
pub struct Fire {
    name: String,
    squeeze: Conv2d,
    relu_s: Relu,
    expand1: Conv2d,
    relu_e1: Relu,
    expand3: Conv2d,
    relu_e3: Relu,
    expand_channels: usize,
}

impl Fire {
    /// Creates a fire module producing `2 * expand_channels` output channels.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        squeeze_channels: usize,
        expand_channels: usize,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        Self {
            squeeze: Conv2d::new(
                format!("{name}.squeeze"),
                in_channels,
                squeeze_channels,
                1,
                1,
                0,
                rng,
            ),
            relu_s: Relu::new(format!("{name}.relu_s")),
            expand1: Conv2d::new(
                format!("{name}.expand1"),
                squeeze_channels,
                expand_channels,
                1,
                1,
                0,
                rng,
            ),
            relu_e1: Relu::new(format!("{name}.relu_e1")),
            expand3: Conv2d::new(
                format!("{name}.expand3"),
                squeeze_channels,
                expand_channels,
                3,
                1,
                1,
                rng,
            ),
            relu_e3: Relu::new(format!("{name}.relu_e3")),
            expand_channels,
            name,
        }
    }
}

impl Layer for Fire {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        let s = self.relu_s.forward(&self.squeeze.forward(input));
        let e1 = self.relu_e1.forward(&self.expand1.forward(&s));
        let e3 = self.relu_e3.forward(&self.expand3.forward(&s));
        concat_channels(&[e1, e3])
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let s = self
            .relu_s
            .forward_train(&self.squeeze.forward_train(input));
        let e1 = self.relu_e1.forward_train(&self.expand1.forward_train(&s));
        let e3 = self.relu_e3.forward_train(&self.expand3.forward_train(&s));
        concat_channels(&[e1, e3])
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let parts = split_channels(d_out, &[self.expand_channels, self.expand_channels]);
        let d_e1 = self.expand1.backward(&self.relu_e1.backward(&parts[0]));
        let d_e3 = self.expand3.backward(&self.relu_e3.backward(&parts[1]));
        let d_s = d_e1.add(&d_e3);
        self.squeeze.backward(&self.relu_s.backward(&d_s))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        self.squeeze.visit_params(f);
        self.expand1.visit_params(f);
        self.expand3.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.squeeze.visit_params_ref(f);
        self.expand1.visit_params_ref(f);
        self.expand3.visit_params_ref(f);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![2 * self.expand_channels, input_shape[1], input_shape[2]]
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        let squeezed = self.squeeze.output_shape(input_shape);
        self.squeeze.macs(input_shape) + self.expand1.macs(&squeezed) + self.expand3.macs(&squeezed)
    }
}

/// A MobileNet-style depthwise-separable block: depthwise 3×3 convolution,
/// normalization, ReLU, pointwise 1×1 convolution, normalization, ReLU.
#[derive(Clone)]
pub struct DepthwiseSeparable {
    name: String,
    depthwise: DepthwiseConv2d,
    norm1: ChannelNorm,
    relu1: Relu,
    pointwise: Conv2d,
    norm2: ChannelNorm,
    relu2: Relu,
}

impl DepthwiseSeparable {
    /// Creates a depthwise-separable block mapping `in_channels` to
    /// `out_channels` with the given stride on the depthwise convolution.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        Self {
            depthwise: DepthwiseConv2d::new(format!("{name}.dw"), in_channels, 3, stride, 1, rng),
            norm1: ChannelNorm::new(format!("{name}.norm1"), in_channels),
            relu1: Relu::new(format!("{name}.relu1")),
            pointwise: Conv2d::new(
                format!("{name}.pw"),
                in_channels,
                out_channels,
                1,
                1,
                0,
                rng,
            ),
            norm2: ChannelNorm::new(format!("{name}.norm2"), out_channels),
            relu2: Relu::new(format!("{name}.relu2")),
            name,
        }
    }
}

impl Layer for DepthwiseSeparable {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        let x = self.depthwise.forward(input);
        let x = self.norm1.forward(&x);
        let x = self.relu1.forward(&x);
        let x = self.pointwise.forward(&x);
        let x = self.norm2.forward(&x);
        self.relu2.forward(&x)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let x = self.depthwise.forward_train(input);
        let x = self.norm1.forward_train(&x);
        let x = self.relu1.forward_train(&x);
        let x = self.pointwise.forward_train(&x);
        let x = self.norm2.forward_train(&x);
        self.relu2.forward_train(&x)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let d = self.relu2.backward(d_out);
        let d = self.norm2.backward(&d);
        let d = self.pointwise.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.norm1.backward(&d);
        self.depthwise.backward(&d)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        self.depthwise.visit_params(f);
        self.norm1.visit_params(f);
        self.pointwise.visit_params(f);
        self.norm2.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.depthwise.visit_params_ref(f);
        self.norm1.visit_params_ref(f);
        self.pointwise.visit_params_ref(f);
        self.norm2.visit_params_ref(f);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let dw = self.depthwise.output_shape(input_shape);
        self.pointwise.output_shape(&dw)
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        let dw = self.depthwise.output_shape(input_shape);
        self.depthwise.macs(input_shape) + self.pointwise.macs(&dw)
    }
}

/// A DenseNet-style densely-connected block: a 3×3 convolution producing
/// `growth` new channels that are concatenated onto the input.
#[derive(Clone)]
pub struct DenseBlock {
    name: String,
    conv: Conv2d,
    relu: Relu,
    in_channels: usize,
    growth: usize,
}

impl DenseBlock {
    /// Creates a densely-connected block; the output has
    /// `in_channels + growth` channels.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        growth: usize,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        Self {
            conv: Conv2d::new(format!("{name}.conv"), in_channels, growth, 3, 1, 1, rng),
            relu: Relu::new(format!("{name}.relu")),
            in_channels,
            growth,
            name,
        }
    }
}

impl Layer for DenseBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        let new = self.relu.forward(&self.conv.forward(input));
        concat_channels(&[input.clone(), new])
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let new = self.relu.forward_train(&self.conv.forward_train(input));
        concat_channels(&[input.clone(), new])
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let parts = split_channels(d_out, &[self.in_channels, self.growth]);
        let d_new = self.conv.backward(&self.relu.backward(&parts[1]));
        parts[0].add(&d_new)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        self.conv.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.conv.visit_params_ref(f);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            self.in_channels + self.growth,
            input_shape[1],
            input_shape[2],
        ]
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        self.conv.macs(input_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::init::{seeded_rng, uniform};

    #[test]
    fn residual_identity_shortcut_shapes() {
        let mut rng = seeded_rng(0);
        let b = Residual::new("res", 8, 8, 1, &mut rng);
        let x = Tensor::zeros(&[8, 8, 8]);
        assert_eq!(b.forward(&x).shape(), &[8, 8, 8]);
    }

    #[test]
    fn residual_projection_shortcut_shapes() {
        let mut rng = seeded_rng(0);
        let b = Residual::new("res", 4, 8, 2, &mut rng);
        let x = Tensor::zeros(&[4, 8, 8]);
        assert_eq!(b.forward(&x).shape(), &[8, 4, 4]);
        assert_eq!(b.output_shape(&[4, 8, 8]), vec![8, 4, 4]);
    }

    #[test]
    fn residual_backward_produces_input_shaped_gradient() {
        let mut rng = seeded_rng(1);
        let mut b = Residual::new("res", 3, 6, 2, &mut rng);
        let x = uniform(&[3, 8, 8], -1.0, 1.0, &mut rng);
        let y = b.forward_train(&x);
        let d = b.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(d.shape(), x.shape());
        assert!(d.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fire_doubles_expand_channels() {
        let mut rng = seeded_rng(2);
        let b = Fire::new("fire", 8, 4, 8, &mut rng);
        let x = Tensor::zeros(&[8, 6, 6]);
        assert_eq!(b.forward(&x).shape(), &[16, 6, 6]);
    }

    #[test]
    fn fire_backward_gradient_shape() {
        let mut rng = seeded_rng(3);
        let mut b = Fire::new("fire", 4, 2, 4, &mut rng);
        let x = uniform(&[4, 6, 6], -1.0, 1.0, &mut rng);
        let y = b.forward_train(&x);
        let d = b.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn depthwise_separable_shapes_and_params() {
        let mut rng = seeded_rng(4);
        let b = DepthwiseSeparable::new("ds", 8, 16, 2, &mut rng);
        assert_eq!(b.output_shape(&[8, 8, 8]), vec![16, 4, 4]);
        // Depthwise-separable should have fewer params than a full 3x3 conv
        // with the same channel mapping.
        let full_conv_params = 16 * 8 * 9 + 16;
        assert!(b.param_count() < full_conv_params);
    }

    #[test]
    fn dense_block_concatenates_input() {
        let mut rng = seeded_rng(5);
        let mut b = DenseBlock::new("dense", 4, 6, &mut rng);
        let x = uniform(&[4, 5, 5], -1.0, 1.0, &mut rng);
        let y = b.forward_train(&x);
        assert_eq!(y.shape(), &[10, 5, 5]);
        // The first 4 channels of the output are exactly the input.
        assert_eq!(&y.data()[0..4 * 25], x.data());
        let d = b.backward(&Tensor::full(&[10, 5, 5], 1.0));
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn block_params_are_visited() {
        let mut rng = seeded_rng(6);
        let mut b = Residual::new("res", 4, 4, 1, &mut rng);
        let mut names = Vec::new();
        b.visit_params(&mut |p| names.push(p.name.to_string()));
        assert!(names.iter().filter(|n| *n == "weight").count() >= 2);
    }
}
