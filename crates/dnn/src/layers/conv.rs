//! Standard and depthwise 2-D convolution layers.
//!
//! Both layers lower their convolutions to `im2col` + the cache-blocked GEMM
//! kernel in `eden_tensor::ops` (forward *and* backward), sharing the matmul
//! hot path with the dense layers. The lowering is bit-identical to a direct
//! loop nest — see [`eden_tensor::ops::conv2d`].

use crate::layer::{Layer, ParamEntry};
use crate::qexec::{self, QuantLayerParams, QuantScratch};
use eden_tensor::ops::{self, Conv2dParams};
use eden_tensor::{init, QuantTensor, Tensor};
use rand::rngs::StdRng;

/// A standard 2-D convolution layer, evaluated as one GEMM per sample.
///
/// Weights have shape `[out_channels, in_channels, kernel, kernel]`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    params: Conv2dParams,
    in_channels: usize,
    out_channels: usize,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-uniform initialized weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Self {
            name: name.into(),
            weight: init::he_uniform(&[out_channels, in_channels, kernel, kernel], fan_in, rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            params: Conv2dParams::new(kernel, stride, padding),
            in_channels,
            out_channels,
            cache_input: None,
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// The convolution geometry.
    pub fn conv_params(&self) -> Conv2dParams {
        self.params
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        ops::conv2d(input, &self.weight, &self.bias, self.params)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_input = Some(input.clone());
        ops::conv2d(input, &self.weight, &self.bias, self.params)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward before forward_train");
        let grads = ops::conv2d_backward(input, &self.weight, d_out, self.params);
        self.grad_weight.axpy(1.0, &grads.d_weight);
        self.grad_bias.axpy(1.0, &grads.d_bias);
        grads.d_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        f(ParamEntry {
            name: "weight",
            value: &mut self.weight,
            grad: &mut self.grad_weight,
        });
        f(ParamEntry {
            name: "bias",
            value: &mut self.bias,
            grad: &mut self.grad_bias,
        });
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", &self.weight);
        f("bias", &self.bias);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            self.out_channels,
            self.params.out_size(input_shape[1]),
            self.params.out_size(input_shape[2]),
        ]
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        let out = self.output_shape(input_shape);
        (out[1] * out[2]) as u64 * self.weight.len() as u64
    }

    /// Weight-stationary batched convolution: every sample's patch columns
    /// pack into one `[ck, batch·oh·ow]` rhs, the bias seeds each output row
    /// (participating first in every accumulation chain, exactly like
    /// [`eden_tensor::ops::conv2d`]), and a single row-block-parallel
    /// [`eden_tensor::ops::gemm_batch`] produces the whole batch. Per output
    /// element the k-ascending chain is untouched, so the result is
    /// bit-identical to per-sample [`Layer::forward`] calls.
    fn forward_batch(&self, inputs: &[&Tensor]) -> Option<Vec<Tensor>> {
        let first = inputs.first()?;
        let shape = first.shape().to_vec();
        assert_eq!(shape.len(), 3, "conv forward_batch input must be [c, h, w]");
        assert!(
            inputs.iter().all(|x| x.shape() == shape),
            "conv forward_batch requires same-shape samples"
        );
        let (in_c, h, w) = (shape[0], shape[1], shape[2]);
        assert_eq!(
            in_c, self.in_channels,
            "conv forward_batch channel mismatch"
        );
        let p = self.params;
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let (ohw, ck) = (oh * ow, in_c * p.kernel * p.kernel);
        let n = inputs.len() * ohw;
        let mut b = vec![0.0f32; ck * n];
        for (j, x) in inputs.iter().enumerate() {
            ops::im2col_strided(x.data(), in_c, h, w, p, j * ohw, n, &mut b);
        }
        let bd = self.bias.data();
        let mut out = vec![0.0f32; self.out_channels * n];
        for oc in 0..self.out_channels {
            out[oc * n..(oc + 1) * n].fill(bd[oc]);
        }
        ops::gemm_batch(self.out_channels, ck, n, self.weight.data(), &b, &mut out);
        Some(
            (0..inputs.len())
                .map(|j| {
                    let mut y = vec![0.0f32; self.out_channels * ohw];
                    for oc in 0..self.out_channels {
                        y[oc * ohw..(oc + 1) * ohw]
                            .copy_from_slice(&out[oc * n + j * ohw..oc * n + (j + 1) * ohw]);
                    }
                    Tensor::from_vec(y, &[self.out_channels, oh, ow])
                })
                .collect(),
        )
    }

    fn supports_quant_forward(&self) -> bool {
        true
    }

    /// Integer im2col + integer GEMM with exact accumulation, then one fused
    /// `bias + acc · s_w·s_x` epilogue — the quantized mirror of
    /// [`eden_tensor::ops::conv2d`].
    fn quant_forward(
        &self,
        input: &QuantTensor,
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Tensor> {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv quant_forward input must be [c, h, w]");
        let (in_c, h, w) = (shape[0], shape[1], shape[2]);
        assert_eq!(
            in_c, self.in_channels,
            "conv quant_forward channel mismatch"
        );
        let p = self.params;
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let ck = in_c * p.kernel * p.kernel;
        if qexec::use_i8_kernels_for(input.precision(), ck) {
            // Sign-extension is fused into the patch gather: the stored bits
            // feed the kernel without an intermediate integer buffer.
            ops::im2col_i8_t_stored(
                input.stored(),
                input.bits_per_value(),
                in_c,
                h,
                w,
                p,
                &mut scratch.cols8,
            );
        } else {
            input.q_values_into(&mut scratch.qx);
            ops::im2col_i32(&scratch.qx, in_c, h, w, p, &mut scratch.cols);
        }
        let scale = params.weight_scale * input.scale();
        let mut y = vec![0.0f32; self.out_channels * oh * ow];
        qexec::quant_gemm_bias_into(
            self.out_channels,
            ck,
            oh * ow,
            params,
            scratch,
            input.precision(),
            scale,
            &params.bias,
            &mut y,
        );
        Some(Tensor::from_vec(y, &[self.out_channels, oh, ow]))
    }

    /// Batched quantized convolution: one integer GEMM whose rhs packs every
    /// sample's patch matrix, with each sample's own `s_w·s_x` scale applied
    /// in the per-column epilogue. Integer accumulation is exact and the
    /// epilogue element-wise, so the result matches per-sample
    /// [`Layer::quant_forward`] bit for bit.
    fn quant_forward_batch(
        &self,
        inputs: &[&QuantTensor],
        params: &QuantLayerParams,
        scratch: &mut QuantScratch,
    ) -> Option<Vec<Tensor>> {
        let first = inputs.first()?;
        let shape = first.shape().to_vec();
        assert_eq!(
            shape.len(),
            3,
            "conv quant_forward_batch input must be [c, h, w]"
        );
        assert!(
            inputs
                .iter()
                .all(|q| q.shape() == shape && q.precision() == first.precision()),
            "conv quant_forward_batch requires uniform sample geometry"
        );
        let (in_c, h, w) = (shape[0], shape[1], shape[2]);
        assert_eq!(
            in_c, self.in_channels,
            "conv quant_forward_batch channel mismatch"
        );
        let p = self.params;
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let (ohw, ck) = (oh * ow, in_c * p.kernel * p.kernel);
        let precision = first.precision();
        let n = inputs.len() * ohw;
        // The scratch matrices grow once to the batch-wide size here and are
        // reused across layers and groups from then on — never reallocated
        // inside the layer loop.
        if qexec::use_i8_kernels_for(precision, ck) {
            // Patch rows go out at the k-padded panel stride the packed
            // GEMM consumes; pad lanes stay zero from the bulk resize.
            let ck_pad = ops::packed_stride_i8(ck);
            scratch.cols8.clear();
            scratch.cols8.resize(n * ck_pad, 0);
            let mut vals8 = std::mem::take(&mut scratch.vals8);
            for (j, q) in inputs.iter().enumerate() {
                ops::im2col_i8_t_stored_strided(
                    q.stored(),
                    q.bits_per_value(),
                    in_c,
                    h,
                    w,
                    p,
                    ck_pad,
                    &mut vals8,
                    &mut scratch.cols8[j * ohw * ck_pad..(j + 1) * ohw * ck_pad],
                );
            }
            scratch.vals8 = vals8;
        } else {
            scratch.cols.clear();
            scratch.cols.resize(ck * n, 0);
            // `cols` is the strided batch matrix, so the per-sample integer
            // gather lands in `qx` first.
            let mut cols = std::mem::take(&mut scratch.cols);
            for (j, q) in inputs.iter().enumerate() {
                q.q_values_into(&mut scratch.qx);
                ops::im2col_i32_strided(&scratch.qx, in_c, h, w, p, j * ohw, n, &mut cols);
            }
            scratch.cols = cols;
        }
        let scales: Vec<f32> = inputs
            .iter()
            .map(|q| params.weight_scale * q.scale())
            .collect();
        // The GEMM output lives in the shared scratch too (the epilogue
        // fully overwrites it, so stale contents are irrelevant).
        let mut y = std::mem::take(&mut scratch.ybatch);
        y.resize(self.out_channels * n, 0.0);
        qexec::quant_gemm_bias_batch_into(
            self.out_channels,
            ck,
            ohw,
            params,
            scratch,
            precision,
            &scales,
            &params.bias,
            &mut y,
        );
        let out = (0..inputs.len())
            .map(|j| {
                let mut s = Vec::with_capacity(self.out_channels * ohw);
                for oc in 0..self.out_channels {
                    s.extend_from_slice(&y[oc * n + j * ohw..oc * n + (j + 1) * ohw]);
                }
                Tensor::from_vec(s, &[self.out_channels, oh, ow])
            })
            .collect();
        scratch.ybatch = y;
        Some(out)
    }
}

/// A depthwise 2-D convolution: each input channel is convolved with its own
/// single-channel kernel (groups = channels), as used by MobileNet-style
/// depthwise-separable blocks.
///
/// Weights have shape `[channels, 1, kernel, kernel]`.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    name: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    params: Conv2dParams,
    channels: usize,
    cache_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution layer.
    pub fn new(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = kernel * kernel;
        Self {
            name: name.into(),
            weight: init::he_uniform(&[channels, 1, kernel, kernel], fan_in, rng),
            bias: Tensor::zeros(&[channels]),
            grad_weight: Tensor::zeros(&[channels, 1, kernel, kernel]),
            grad_bias: Tensor::zeros(&[channels]),
            params: Conv2dParams::new(kernel, stride, padding),
            channels,
            cache_input: None,
        }
    }

    fn channel_slice(t: &Tensor, c: usize) -> Tensor {
        let (h, w) = (t.shape()[1], t.shape()[2]);
        let data = t.data()[c * h * w..(c + 1) * h * w].to_vec();
        Tensor::from_vec(data, &[1, h, w])
    }

    fn kernel_slice(&self, c: usize) -> Tensor {
        let k = self.params.kernel;
        let data = self.weight.data()[c * k * k..(c + 1) * k * k].to_vec();
        Tensor::from_vec(data, &[1, 1, k, k])
    }

    fn apply(&self, input: &Tensor) -> Tensor {
        let mut per_channel = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let x = Self::channel_slice(input, c);
            let w = self.kernel_slice(c);
            let b = Tensor::from_vec(vec![self.bias.data()[c]], &[1]);
            per_channel.push(ops::conv2d(&x, &w, &b, self.params));
        }
        concat_channels(&per_channel)
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        self.apply(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.cache_input = Some(input.clone());
        self.apply(input)
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .clone()
            .expect("backward before forward_train");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let k = self.params.kernel;
        let mut d_in = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let x = Self::channel_slice(&input, c);
            let wt = self.kernel_slice(c);
            let d_c = Self::channel_slice(d_out, c);
            let g = ops::conv2d_backward(&x, &wt, &d_c, self.params);
            for (i, v) in g.d_weight.data().iter().enumerate() {
                self.grad_weight.data_mut()[c * k * k + i] += v;
            }
            self.grad_bias.data_mut()[c] += g.d_bias.data()[0];
            d_in.push(g.d_input);
        }
        let out = concat_channels(&d_in);
        out.reshape(&[self.channels, h, w])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        f(ParamEntry {
            name: "weight",
            value: &mut self.weight,
            grad: &mut self.grad_weight,
        });
        f(ParamEntry {
            name: "bias",
            value: &mut self.bias,
            grad: &mut self.grad_bias,
        });
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", &self.weight);
        f("bias", &self.bias);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            self.channels,
            self.params.out_size(input_shape[1]),
            self.params.out_size(input_shape[2]),
        ]
    }

    fn macs(&self, input_shape: &[usize]) -> u64 {
        let out = self.output_shape(input_shape);
        (out[1] * out[2]) as u64 * self.weight.len() as u64
    }
}

/// Concatenates `[c_i, h, w]` tensors along the channel dimension.
///
/// # Panics
///
/// Panics if the spatial dimensions differ or `parts` is empty.
pub fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "cannot concat zero tensors");
    let (h, w) = (parts[0].shape()[1], parts[0].shape()[2]);
    let total_c: usize = parts.iter().map(|p| p.shape()[0]).sum();
    let mut data = Vec::with_capacity(total_c * h * w);
    for p in parts {
        assert_eq!(p.shape()[1], h, "concat height mismatch");
        assert_eq!(p.shape()[2], w, "concat width mismatch");
        data.extend_from_slice(p.data());
    }
    Tensor::from_vec(data, &[total_c, h, w])
}

/// Splits a `[c, h, w]` tensor into chunks with the given channel counts
/// (inverse of [`concat_channels`]).
pub fn split_channels(t: &Tensor, channel_counts: &[usize]) -> Vec<Tensor> {
    let (h, w) = (t.shape()[1], t.shape()[2]);
    let mut out = Vec::with_capacity(channel_counts.len());
    let mut offset = 0;
    for &c in channel_counts {
        let data = t.data()[offset * h * w..(offset + c) * h * w].to_vec();
        out.push(Tensor::from_vec(data, &[c, h, w]));
        offset += c;
    }
    assert_eq!(
        offset,
        t.shape()[0],
        "split channel counts do not cover tensor"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::init::seeded_rng;

    #[test]
    fn conv_output_shape_matches_forward() {
        let mut rng = seeded_rng(0);
        let l = Conv2d::new("c", 3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[3, 16, 16]);
        assert_eq!(
            l.forward(&x).shape(),
            l.output_shape(&[3, 16, 16]).as_slice()
        );
        assert_eq!(l.forward(&x).shape(), &[8, 16, 16]);
    }

    #[test]
    fn conv_stride_halves_resolution() {
        let mut rng = seeded_rng(0);
        let l = Conv2d::new("c", 3, 4, 3, 2, 1, &mut rng);
        assert_eq!(l.output_shape(&[3, 16, 16]), vec![4, 8, 8]);
    }

    #[test]
    fn conv_backward_accumulates_grads() {
        let mut rng = seeded_rng(5);
        let mut l = Conv2d::new("c", 1, 2, 3, 1, 1, &mut rng);
        let x = init::uniform(&[1, 5, 5], -1.0, 1.0, &mut rng);
        let y = l.forward_train(&x);
        let d = Tensor::full(y.shape(), 1.0);
        let d_in = l.backward(&d);
        assert_eq!(d_in.shape(), x.shape());
        let mut nonzero = false;
        l.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                nonzero = true;
            }
        });
        assert!(nonzero);
    }

    #[test]
    fn depthwise_preserves_channel_count() {
        let mut rng = seeded_rng(0);
        let l = DepthwiseConv2d::new("dw", 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[4, 8, 8]);
        assert_eq!(l.forward(&x).shape(), &[4, 8, 8]);
        assert_eq!(l.param_count(), 4 * 9 + 4);
    }

    #[test]
    fn depthwise_channels_are_independent() {
        let mut rng = seeded_rng(1);
        let l = DepthwiseConv2d::new("dw", 2, 3, 1, 1, &mut rng);
        // Input with energy only in channel 0 produces output only in channel 0.
        let mut data = vec![0.0f32; 2 * 4 * 4];
        for v in &mut data[0..16] {
            *v = 1.0;
        }
        let x = Tensor::from_vec(data, &[2, 4, 4]);
        let y = l.forward(&x);
        let ch1: f32 = y.data()[16..32].iter().map(|v| v.abs()).sum();
        assert_eq!(ch1, 0.0);
    }

    #[test]
    fn depthwise_backward_shapes() {
        let mut rng = seeded_rng(2);
        let mut l = DepthwiseConv2d::new("dw", 3, 3, 1, 1, &mut rng);
        let x = init::uniform(&[3, 6, 6], -1.0, 1.0, &mut rng);
        let y = l.forward_train(&x);
        let d_in = l.backward(&Tensor::full(y.shape(), 0.5));
        assert_eq!(d_in.shape(), &[3, 6, 6]);
    }

    #[test]
    fn concat_split_round_trip() {
        let a = Tensor::full(&[2, 3, 3], 1.0);
        let b = Tensor::full(&[1, 3, 3], 2.0);
        let c = concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(c.shape(), &[3, 3, 3]);
        let parts = split_channels(&c, &[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }
}
