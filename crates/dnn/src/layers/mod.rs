//! Concrete layer implementations.
//!
//! * [`basic`] — activations, pooling, flattening.
//! * [`dense`] — fully-connected layers.
//! * [`conv`] — standard and depthwise 2-D convolutions.
//! * [`norm`] — per-channel normalization.
//! * [`blocks`] — composite blocks used by the model zoo (residual blocks,
//!   SqueezeNet fire modules, MobileNet depthwise-separable blocks, DenseNet
//!   densely-connected blocks).

pub mod basic;
pub mod blocks;
pub mod conv;
pub mod dense;
pub mod norm;

pub use basic::{Flatten, GlobalAvgPool, MaxPool2d, Relu};
pub use blocks::{DenseBlock, DepthwiseSeparable, Fire, Residual};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use norm::ChannelNorm;
