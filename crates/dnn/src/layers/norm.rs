//! Per-channel normalization.

use crate::layer::{Layer, ParamEntry};
use eden_tensor::Tensor;

/// Per-channel normalization with learnable scale and shift.
///
/// During training the layer normalizes each channel by the sample's own
/// channel statistics and updates running statistics with momentum; during
/// inference it uses the running statistics. The backward pass treats the
/// normalization statistics as constants (a standard simplification that is
/// sufficient for the shallow networks used in this reproduction).
#[derive(Debug, Clone)]
pub struct ChannelNorm {
    name: String,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<NormCache>,
}

#[derive(Debug, Clone)]
struct NormCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    channels: usize,
    spatial: usize,
}

impl ChannelNorm {
    /// Creates a normalization layer over `channels` channels.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        Self {
            name: name.into(),
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn stats(input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let spatial = h * w;
        let mut means = vec![0.0f32; c];
        let mut vars = vec![0.0f32; c];
        for ch in 0..c {
            let slice = &input.data()[ch * spatial..(ch + 1) * spatial];
            let mean = slice.iter().sum::<f32>() / spatial as f32;
            let var = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / spatial as f32;
            means[ch] = mean;
            vars[ch] = var;
        }
        (means, vars)
    }

    fn normalize(&self, input: &Tensor, means: &[f32], vars: &[f32]) -> (Tensor, Vec<f32>) {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let spatial = h * w;
        let mut out = vec![0.0f32; c * spatial];
        let mut inv_std = vec![0.0f32; c];
        for ch in 0..c {
            let istd = 1.0 / (vars[ch] + self.eps).sqrt();
            inv_std[ch] = istd;
            let g = self.gamma.data()[ch];
            let b = self.beta.data()[ch];
            for i in 0..spatial {
                let x = input.data()[ch * spatial + i];
                out[ch * spatial + i] = g * (x - means[ch]) * istd + b;
            }
        }
        (Tensor::from_vec(out, input.shape()), inv_std)
    }
}

impl Layer for ChannelNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        self.normalize(input, self.running_mean.data(), self.running_var.data())
            .0
    }

    fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let (means, vars) = Self::stats(input);
        for (rm, m) in self.running_mean.data_mut().iter_mut().zip(&means) {
            *rm = (1.0 - self.momentum) * *rm + self.momentum * m;
        }
        for (rv, v) in self.running_var.data_mut().iter_mut().zip(&vars) {
            *rv = (1.0 - self.momentum) * *rv + self.momentum * v;
        }
        let (out, inv_std) = self.normalize(input, &means, &vars);
        // Store the normalized (pre-affine) values for the backward pass.
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let spatial = h * w;
        let mut normalized = vec![0.0f32; c * spatial];
        for ch in 0..c {
            for i in 0..spatial {
                normalized[ch * spatial + i] =
                    (input.data()[ch * spatial + i] - means[ch]) * inv_std[ch];
            }
        }
        self.cache = Some(NormCache {
            normalized: Tensor::from_vec(normalized, input.shape()),
            inv_std,
            channels: c,
            spatial,
        });
        out
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward_train");
        let c = cache.channels;
        let spatial = cache.spatial;
        let mut d_in = vec![0.0f32; c * spatial];
        for ch in 0..c {
            let g = self.gamma.data()[ch];
            let istd = cache.inv_std[ch];
            for i in 0..spatial {
                let idx = ch * spatial + i;
                let go = d_out.data()[idx];
                self.grad_gamma.data_mut()[ch] += go * cache.normalized.data()[idx];
                self.grad_beta.data_mut()[ch] += go;
                d_in[idx] = go * g * istd;
            }
        }
        Tensor::from_vec(d_in, d_out.shape())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamEntry<'_>)) {
        f(ParamEntry {
            name: "gamma",
            value: &mut self.gamma,
            grad: &mut self.grad_gamma,
        });
        f(ParamEntry {
            name: "beta",
            value: &mut self.beta,
            grad: &mut self.grad_beta,
        });
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("gamma", &self.gamma);
        f("beta", &self.beta);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::init::{seeded_rng, uniform};

    #[test]
    fn training_forward_normalizes_channels() {
        let mut l = ChannelNorm::new("norm", 2);
        let mut rng = seeded_rng(0);
        let x = uniform(&[2, 8, 8], 3.0, 5.0, &mut rng);
        let y = l.forward_train(&x);
        // After normalization, each channel should have ~0 mean and ~1 std.
        let spatial = 64;
        for ch in 0..2 {
            let slice = &y.data()[ch * spatial..(ch + 1) * spatial];
            let mean: f32 = slice.iter().sum::<f32>() / spatial as f32;
            assert!(mean.abs() < 1e-3, "channel mean {mean} not ~0");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut l = ChannelNorm::new("norm", 1);
        let mut rng = seeded_rng(1);
        // Prime the running statistics with several training passes.
        for _ in 0..50 {
            let x = uniform(&[1, 4, 4], 9.0, 11.0, &mut rng);
            l.forward_train(&x);
        }
        let x = Tensor::full(&[1, 4, 4], 10.0);
        let y = l.forward(&x);
        // Input equal to the running mean should normalize to ~beta (= 0).
        assert!(y.abs_max() < 1.0);
    }

    #[test]
    fn backward_produces_finite_gradients() {
        let mut l = ChannelNorm::new("norm", 3);
        let mut rng = seeded_rng(2);
        let x = uniform(&[3, 4, 4], -1.0, 1.0, &mut rng);
        let y = l.forward_train(&x);
        let d = l.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(d.shape(), x.shape());
        assert!(d.data().iter().all(|v| v.is_finite()));
        l.visit_params(&mut |p| assert!(p.grad.data().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn gamma_beta_counted_as_params() {
        let l = ChannelNorm::new("norm", 7);
        assert_eq!(l.param_count(), 14);
    }
}
