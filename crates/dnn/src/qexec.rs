//! Native quantized execution (the `NativeInt` inference backend).
//!
//! The simulated-quantization path dequantizes every corrupted tensor back to
//! f32 and runs the float layers. This module instead executes dense and
//! convolutional layers directly on the **sign-extended quantized integers**:
//! the corrupted stored bits feed integer GEMM kernels
//! ([`eden_tensor::ops::gemm_i32`] / [`eden_tensor::ops::gemm_i64`]) with
//! exact i32/i64 accumulation, and a single fused epilogue applies the
//! per-tensor scale product and the bias. Layers without a native
//! implementation (normalization, composite blocks) fall back to their f32
//! forward on a weight-refreshed clone of the network, so any architecture
//! runs under either backend.
//!
//! Integer accumulation is exact and associative, so the native path is
//! bit-identical for any thread count by construction. Against the simulated
//! f32 path it agrees to within f32 rounding of the per-layer accumulation
//! chains (the integer path is the *more* accurate of the two); the
//! workspace-level `backend_parity` property test pins that bound across
//! precisions, shapes and thread counts.

use crate::layer::Layer;
use crate::network::{Network, WeightImage};
use crate::{DataKind, DataSite, FaultHook};
use eden_tensor::{ops, CorruptionOverlay, Precision, QuantTensor, Tensor};

/// Corrupted quantized parameters of one native layer, rebuilt on every
/// weight refetch from the cached clean bit images.
#[derive(Debug, Clone, Default)]
pub struct QuantLayerParams {
    /// Sign-extended corrupted quantized weight values (visit order) — the
    /// i32 operand form used by the i64-accumulating int16 kernels.
    pub qweight: Vec<i32>,
    /// The same weights narrowed to i8 (int4/int8 only): one-byte operands
    /// for the widening-multiply dot kernels
    /// ([`eden_tensor::ops::gemm_dot_i8`]), half the memory traffic of the
    /// former i16 form. Every corrupted 4/8-bit pattern sign-extends into
    /// `[-128, 127]` exactly.
    pub qweight8: Vec<i8>,
    /// Dequantization scale of the (corrupted) weight tensor.
    pub weight_scale: f32,
    /// Dequantized corrupted bias values.
    pub bias: Vec<f32>,
}

/// Reusable per-worker scratch buffers of the native executor. One instance
/// serves every layer of every sample a worker processes; no buffer is
/// reallocated once it has reached its high-water size.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// Sign-extended input activations of the current layer (i32 form).
    pub qx: Vec<i32>,
    /// Sign-extended input activations narrowed to i8 (int4/int8 path).
    pub qx8: Vec<i8>,
    /// Integer im2col patch matrix (i32 form, `[ck, ohw]`).
    pub cols: Vec<i32>,
    /// Transposed i8 im2col patch matrix (`[ohw, ck]`, int4/int8 path).
    /// Batched layers pack rows at the k-padded panel stride instead
    /// ([`eden_tensor::ops::packed_stride_i8`]).
    pub cols8: Vec<i8>,
    /// i8 weight rows re-packed at the k-padded panel stride for
    /// [`ops::gemm_i8_packed`] (batched path only).
    pub apack8: Vec<i8>,
    /// Batch-wide dequantized GEMM output (`[m, n]`), reused across layers
    /// so no layer allocates it fresh.
    pub ybatch: Vec<f32>,
    /// Whole-image sign-extended byte view feeding the strided i8 im2col
    /// ([`eden_tensor::ops::im2col_i8_t_stored_strided`]).
    pub vals8: Vec<i8>,
    /// i32 accumulators (int4/int8).
    pub acc_i32: Vec<i32>,
    /// i64 accumulators (int16).
    pub acc_i64: Vec<i64>,
}

impl QuantScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pool of scratch buffers (by default [`QuantScratch`]) shared by the
/// workers of a parallel evaluation.
///
/// Workers check a buffer out for the duration of one forward pass and
/// return it afterwards, so the arena holds at most as many buffers as the
/// peak number of concurrent passes — each grown once to its high-water
/// size and reused from then on. Scratch contents never influence results
/// (every consumer fully overwrites the regions it reads), so *which*
/// buffer a worker gets is irrelevant and checkout order cannot affect
/// numerics.
///
/// An owning evaluation session drops its arena — and every buffer — with
/// the session, unlike thread-local scratch, which would pin the high-water
/// allocation of the largest network ever evaluated for the thread's
/// lifetime.
#[derive(Debug)]
pub struct ScratchArena<T = QuantScratch> {
    slots: std::sync::Mutex<Vec<T>>,
}

impl<T> Default for ScratchArena<T> {
    fn default() -> Self {
        Self {
            slots: std::sync::Mutex::new(Vec::new()),
        }
    }
}

impl<T: Default> ScratchArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a scratch buffer checked out of the arena, allocating a
    /// fresh one when all buffers are in use.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut scratch = self.slots.lock().unwrap().pop().unwrap_or_default();
        let result = f(&mut scratch);
        self.slots.lock().unwrap().push(scratch);
        result
    }

    /// Number of buffers currently resident (checked-in) in the arena.
    pub fn resident(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Drops every checked-in buffer (buffers currently checked out are
    /// returned to an empty arena and survive). Used by session eviction to
    /// release scratch memory; contents never influence results, so draining
    /// is always safe.
    pub fn drain(&self) {
        self.slots.lock().unwrap().clear();
    }
}

/// Whether a precision's operands fit the widening-i8 dot kernels with i32
/// accumulation (int4/int8; int16 values do not fit one byte and take the
/// i32-operand kernels instead).
pub fn use_i8_kernels(precision: Precision) -> bool {
    precision.is_integer() && precision.bits() <= 8
}

/// Whether a `(precision, reduction depth)` pair takes the i8 dot kernels:
/// the operands must fit i8 **and** the i32 accumulator must provably hold
/// the `k`-term sums. Layers use this to prepare the matching operand form;
/// the kernel dispatch below uses the same predicate, so the two can never
/// disagree.
pub fn use_i8_kernels_for(precision: Precision, k: usize) -> bool {
    use_i8_kernels(precision) && !needs_wide_accumulator(precision, k)
}

/// Whether integer accumulation over `k` products of `precision` operands
/// needs an i64 accumulator. int4/int8 sums fit i32 for any practical depth;
/// a single int16 product already reaches 2³⁰.
pub fn needs_wide_accumulator(precision: Precision, k: usize) -> bool {
    match precision.q_min() {
        // FP32 never reaches the integer kernels.
        None => true,
        Some(q_min) => {
            let q = (q_min as i64).abs();
            (k as i64).saturating_mul(q * q) >= i32::MAX as i64
        }
    }
}

/// The per-layer corrupted-weight state of one refetch under the native
/// backend: integer parameters for native layers, plus (only when the
/// network contains parameterized layers without a native implementation) a
/// fallback f32 network whose weights are refreshed alongside.
#[derive(Clone)]
pub struct NativeWeights {
    native: Vec<Option<QuantLayerParams>>,
    fallback: Option<Network>,
}

impl NativeWeights {
    /// Allocates the native-weight structure for `net`: one integer parameter
    /// slot per layer that supports native execution, and a fallback network
    /// clone only if some parameterized layer does not.
    pub fn prepare(net: &Network) -> Self {
        let mut native = Vec::with_capacity(net.depth());
        let mut needs_fallback = false;
        for layer in net.layers() {
            if layer.param_count() == 0 {
                native.push(None);
                continue;
            }
            if layer.supports_quant_forward() && has_weight_bias_params(layer.as_ref()) {
                native.push(Some(QuantLayerParams::default()));
            } else {
                native.push(None);
                needs_fallback = true;
            }
        }
        Self {
            native,
            fallback: needs_fallback.then(|| net.clone()),
        }
    }

    /// The integer parameters of layer `i`, if it executes natively.
    pub fn native_params(&self, i: usize) -> Option<&QuantLayerParams> {
        self.native.get(i).and_then(|p| p.as_ref())
    }

    /// Whether a fallback f32 network is maintained.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Re-loads every weight site from approximate memory: corrupts a copy of
    /// each cached clean bit image (consuming `hook` load streams in the same
    /// order as [`Network::load_corrupted_weights`]) and rebuilds the integer
    /// parameters — plus the fallback network's f32 weights where needed.
    pub fn refresh(&mut self, images: &[WeightImage], hook: &mut dyn FaultHook) {
        // Corrupt in image order so both backends consume identical load
        // streams; stash the corrupted tensors destined for the fallback net.
        let mut for_fallback = std::collections::VecDeque::new();
        for img in images {
            let mut q = img.clean.clone();
            hook.corrupt(&img.site, &mut q);
            match self
                .native
                .get_mut(img.layer_index)
                .and_then(|p| p.as_mut())
            {
                Some(params) => {
                    if img.param_name == "weight" {
                        q.q_values_into(&mut params.qweight);
                        params.weight_scale = q.scale();
                        if use_i8_kernels(q.precision()) {
                            params.qweight8.clear();
                            params
                                .qweight8
                                .extend(params.qweight.iter().map(|&v| v as i8));
                        }
                    } else {
                        params.bias.clear();
                        params.bias.resize(q.len(), 0.0);
                        q.dequantize_into(&mut params.bias);
                    }
                }
                None => for_fallback.push_back((img.layer_index, q)),
            }
        }
        let native = &self.native;
        if let Some(fb) = &mut self.fallback {
            fb.visit_params_layers(&mut |layer_index, p| {
                // Natively executed layers keep their integer params; the
                // fallback net only refreshes the layers that run as f32.
                if native.get(layer_index).is_some_and(|n| n.is_some()) {
                    return;
                }
                let (expected, q) = for_fallback
                    .pop_front()
                    .expect("fallback weight image missing");
                assert_eq!(expected, layer_index, "weight image order mismatch");
                q.dequantize_into(p.value.data_mut());
            });
            assert!(for_fallback.is_empty(), "unconsumed fallback weight image");
        } else {
            assert!(
                for_fallback.is_empty(),
                "corrupted weights for a non-native layer but no fallback network"
            );
        }
    }

    /// Re-loads every weight site with its **clean** bit image — the
    /// baseline state of the sparse-overlay refetch path. Produces exactly
    /// the state [`NativeWeights::refresh`] with a no-op hook would, without
    /// consuming load streams or cloning any bit image (the clean images are
    /// read in place).
    pub fn refresh_clean(&mut self, images: &[WeightImage]) {
        let mut for_fallback = std::collections::VecDeque::new();
        for img in images {
            let params = match self
                .native
                .get_mut(img.layer_index)
                .and_then(|p| p.as_mut())
            {
                Some(params) => params,
                None => {
                    for_fallback.push_back(img);
                    continue;
                }
            };
            if img.param_name == "weight" {
                img.clean.q_values_into(&mut params.qweight);
                params.weight_scale = img.clean.scale();
                if use_i8_kernels(img.clean.precision()) {
                    params.qweight8.clear();
                    params
                        .qweight8
                        .extend(params.qweight.iter().map(|&v| v as i8));
                }
            } else {
                params.bias.clear();
                params.bias.resize(img.clean.len(), 0.0);
                img.clean.dequantize_into(&mut params.bias);
            }
        }
        let native = &self.native;
        if let Some(fb) = &mut self.fallback {
            fb.visit_params_layers(&mut |layer_index, p| {
                if native.get(layer_index).is_some_and(|n| n.is_some()) {
                    return;
                }
                let img = for_fallback.pop_front().expect("fallback image missing");
                assert_eq!(img.layer_index, layer_index, "weight image order mismatch");
                img.clean.dequantize_into(p.value.data_mut());
            });
            assert!(for_fallback.is_empty(), "unconsumed fallback weight image");
        } else {
            assert!(
                for_fallback.is_empty(),
                "clean image for a non-native layer but no fallback network"
            );
        }
    }

    /// Patches the integer parameter state with one [`CorruptionOverlay`]
    /// per weight image, touching only the overlaid words — the native
    /// analogue of [`crate::Network::apply_overlay`]. The state must
    /// currently be the clean baseline ([`NativeWeights::refresh_clean`] or
    /// after [`NativeWeights::revert_overlay`]); the result is bit-identical
    /// to [`NativeWeights::refresh`] under a hook producing the same
    /// corruption, at O(flips) instead of O(total weights).
    pub fn apply_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        self.patch_overlay(images, overlays, true);
    }

    /// Undoes [`NativeWeights::apply_overlay`], restoring every touched word
    /// to its clean value in O(flips).
    pub fn revert_overlay(&mut self, images: &[WeightImage], overlays: &[CorruptionOverlay]) {
        self.patch_overlay(images, overlays, false);
    }

    fn patch_overlay(
        &mut self,
        images: &[WeightImage],
        overlays: &[CorruptionOverlay],
        apply: bool,
    ) {
        assert_eq!(images.len(), overlays.len(), "one overlay per image");
        // Same routing as `refresh`: native layers are patched in place,
        // images of fallback layers queue up for the fallback network walk.
        let mut for_fallback = std::collections::VecDeque::new();
        for (img, overlay) in images.iter().zip(overlays) {
            let params = match self
                .native
                .get_mut(img.layer_index)
                .and_then(|p| p.as_mut())
            {
                Some(params) => params,
                None => {
                    for_fallback.push_back((img, overlay));
                    continue;
                }
            };
            if img.param_name == "weight" {
                let narrow = use_i8_kernels(img.clean.precision());
                for (i, word) in overlay.patched_words(&img.clean, apply) {
                    let q = img.clean.word_q_value(word);
                    params.qweight[i] = q;
                    if narrow {
                        params.qweight8[i] = q as i8;
                    }
                }
                // The scale is a property of the clean quantization and is
                // untouched by bit corruption, so it never needs re-patching.
            } else {
                for (i, word) in overlay.patched_words(&img.clean, apply) {
                    params.bias[i] = img.clean.word_value(word);
                }
            }
        }
        let native = &self.native;
        if let Some(fb) = &mut self.fallback {
            fb.visit_params_layers(&mut |layer_index, p| {
                if native.get(layer_index).is_some_and(|n| n.is_some()) {
                    return;
                }
                let (img, overlay) = for_fallback
                    .pop_front()
                    .expect("fallback weight image missing");
                assert_eq!(img.layer_index, layer_index, "weight image order mismatch");
                let data = p.value.data_mut();
                for (i, word) in overlay.patched_words(&img.clean, apply) {
                    data[i] = img.clean.word_value(word);
                }
            });
            assert!(for_fallback.is_empty(), "unconsumed fallback weight image");
        } else {
            assert!(
                for_fallback.is_empty(),
                "overlay for a non-native layer but no fallback network"
            );
        }
    }

    fn fallback_layer(&self, i: usize) -> &dyn Layer {
        self.fallback
            .as_ref()
            .expect("parameterized non-native layer requires a fallback network")
            .layers()[i]
            .as_ref()
    }
}

/// Whether the layer's parameters are exactly `weight` then `bias` (the
/// structure the generic [`QuantLayerParams`] builder understands).
fn has_weight_bias_params(layer: &dyn Layer) -> bool {
    let mut names = Vec::new();
    layer.visit_params_ref(&mut |name, _| names.push(name.to_string()));
    names == ["weight", "bias"]
}

/// One forward pass under the native integer backend: every layer's IFM is
/// quantized, corrupted by `hook` at the same [`DataSite`]s (and therefore
/// with the same load-stream sequence) as the simulated path, and then
/// executed natively where the layer supports it — without ever dequantizing
/// the activations for dense/conv layers. int4/int8 layers run on one-byte
/// operands through the runtime-dispatched SIMD kernels (see
/// [`eden_tensor::simd`]); int16 layers take the overflow-proof i64 path.
///
/// # Panics
///
/// Panics if `precision` is not an integer precision (FP32 has no quantized
/// representation to execute on), or if `weights` was prepared for a
/// different architecture.
pub fn forward_native(
    net: &Network,
    weights: &NativeWeights,
    input: &Tensor,
    precision: Precision,
    hook: &mut dyn FaultHook,
    scratch: &mut QuantScratch,
) -> Tensor {
    forward_native_from(net, weights, input, 0, precision, hook, scratch)
}

/// Resume form of [`forward_native`]: `x` is the activation entering layer
/// `start` (the network input when `start` is 0), and only layers `start..`
/// execute — each still quantizing, corrupting and natively executing its
/// IFM exactly as the full pass would. Given the activation a full pass
/// produces at the `start` boundary and a hook whose state matches that
/// point of the load sequence, the output is bit-identical to the full
/// pass: the prefix is skipped, not approximated (the executor half of
/// incremental re-evaluation from clean-activation checkpoints).
///
/// # Panics
///
/// As [`forward_native`], plus if `start` exceeds the network depth.
pub fn forward_native_from(
    net: &Network,
    weights: &NativeWeights,
    x: &Tensor,
    start: usize,
    precision: Precision,
    hook: &mut dyn FaultHook,
    scratch: &mut QuantScratch,
) -> Tensor {
    forward_native_observed(
        net,
        weights,
        x,
        start,
        precision,
        hook,
        scratch,
        |_, _, _| {},
    )
}

/// [`forward_native_from`] with a boundary observer: before each executed
/// layer `i` loads its IFM, `observe(i, x, hook)` is called with the exact
/// f32 activation entering the layer and the hook (still untouched by layer
/// `i`'s load). This is what lets a caller harvest clean-activation
/// checkpoints — boundary `i`'s activation together with the hook statistics
/// accumulated by the first `i` loads — without the executor knowing
/// anything about checkpoint stores. Observation never changes execution.
///
/// # Panics
///
/// As [`forward_native_from`].
#[allow(clippy::too_many_arguments)]
pub fn forward_native_observed<H: FaultHook + ?Sized>(
    net: &Network,
    weights: &NativeWeights,
    x: &Tensor,
    start: usize,
    precision: Precision,
    hook: &mut H,
    scratch: &mut QuantScratch,
    mut observe: impl FnMut(usize, &Tensor, &mut H),
) -> Tensor {
    assert!(
        precision.is_integer(),
        "the native backend requires an integer precision, got {precision}"
    );
    assert_eq!(
        weights.native.len(),
        net.depth(),
        "weights/network mismatch"
    );
    assert!(
        start <= net.depth(),
        "resume layer {start} exceeds depth {}",
        net.depth()
    );
    let mut x = x.clone();
    // One stored-bits buffer serves every layer boundary of the sample.
    let mut qt: Option<QuantTensor> = None;
    for (i, layer) in net.layers().iter().enumerate().skip(start) {
        observe(i, &x, hook);
        let site = DataSite::new(i, layer.name(), DataKind::Ifm);
        let q = match &mut qt {
            Some(q) => {
                q.requantize_from(&x, precision);
                q
            }
            None => qt.insert(QuantTensor::quantize(&x, precision)),
        };
        hook.corrupt(&site, q);
        x = match weights.native_params(i) {
            Some(params) => layer
                .quant_forward(q, params, scratch)
                .expect("layer advertised native quantized support"),
            None => match layer.quant_forward_activation(q) {
                // Parameterless layers that commute with dequantization
                // (ReLU, max pool, flatten) run in the quantized domain.
                Some(out) => out,
                None => {
                    let l: &dyn Layer = if layer.param_count() > 0 {
                        weights.fallback_layer(i)
                    } else {
                        layer.as_ref()
                    };
                    l.forward(&q.dequantize())
                }
            },
        };
    }
    x
}

/// Integer matrix–vector product dispatching on accumulator width, with the
/// fused `y[o] = acc · scale (+ bias later)` epilogue left to the caller.
/// Used by [`crate::layers::Dense::quant_forward`].
pub fn quant_matvec_into(
    m: usize,
    k: usize,
    params: &QuantLayerParams,
    scratch: &mut QuantScratch,
    precision: Precision,
    scale: f32,
    out: &mut [f32],
) {
    if use_i8_kernels_for(precision, k) {
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m, 0);
        ops::matvec_i8(m, k, &params.qweight8, &scratch.qx8, &mut scratch.acc_i32);
        for (o, &acc) in out.iter_mut().zip(&scratch.acc_i32) {
            *o = acc as f32 * scale;
        }
    } else if needs_wide_accumulator(precision, k) {
        scratch.acc_i64.clear();
        scratch.acc_i64.resize(m, 0);
        ops::matvec_i64(m, k, &params.qweight, &scratch.qx, &mut scratch.acc_i64);
        for (o, &acc) in out.iter_mut().zip(&scratch.acc_i64) {
            *o = acc as f32 * scale;
        }
    } else {
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m, 0);
        ops::matvec_i32(m, k, &params.qweight, &scratch.qx, &mut scratch.acc_i32);
        for (o, &acc) in out.iter_mut().zip(&scratch.acc_i32) {
            *o = acc as f32 * scale;
        }
    }
}

/// Integer GEMM over the im2col patch matrix in `scratch.cols`, dispatching
/// on accumulator width; writes `bias[row] + acc · scale` into `out`
/// (row-major `m×n`). Used by [`crate::layers::Conv2d::quant_forward`].
#[allow(clippy::too_many_arguments)]
pub fn quant_gemm_bias_into(
    m: usize,
    k: usize,
    n: usize,
    params: &QuantLayerParams,
    scratch: &mut QuantScratch,
    precision: Precision,
    scale: f32,
    bias: &[f32],
    out: &mut [f32],
) {
    if use_i8_kernels_for(precision, k) {
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m * n, 0);
        ops::gemm_dot_i8(
            m,
            k,
            n,
            &params.qweight8,
            &scratch.cols8,
            &mut scratch.acc_i32,
        );
        epilogue_i32(m, n, &scratch.acc_i32, scale, bias, out);
    } else if needs_wide_accumulator(precision, k) {
        scratch.acc_i64.clear();
        scratch.acc_i64.resize(m * n, 0);
        ops::gemm_i64(
            m,
            k,
            n,
            &params.qweight,
            &scratch.cols,
            &mut scratch.acc_i64,
        );
        for row in 0..m {
            let b = bias[row];
            for (o, &acc) in out[row * n..(row + 1) * n]
                .iter_mut()
                .zip(&scratch.acc_i64[row * n..(row + 1) * n])
            {
                *o = b + acc as f32 * scale;
            }
        }
    } else {
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m * n, 0);
        ops::gemm_i32(
            m,
            k,
            n,
            &params.qweight,
            &scratch.cols,
            &mut scratch.acc_i32,
        );
        epilogue_i32(m, n, &scratch.acc_i32, scale, bias, out);
    }
}

/// Batched form of [`forward_native_observed`]: runs a whole group of
/// samples through one shared corrupted weight state, layer by layer —
/// weight-stationary dataflow, with each layer's GEMM packing every active
/// sample's activation columns into a single rhs
/// ([`Layer::quant_forward_batch`]).
///
/// `starts[j]` is sample `j`'s resume layer (0 for a full pass): a sample
/// participates in layer `i` iff `starts[j] <= i`, which is how per-sample
/// checkpoint resumes compose with batching. Per sample, the sequence of
/// `observe` calls, IFM loads (`hooks[j].corrupt`, each against its own
/// hook) and layer computations is exactly that of a solo
/// [`forward_native_observed`] run, so results and per-hook statistics are
/// bit-identical to per-sample execution by construction.
///
/// # Panics
///
/// As [`forward_native_from`]; additionally if `inputs`, `starts` and
/// `hooks` disagree in length.
#[allow(clippy::too_many_arguments)]
pub fn forward_native_batch_observed<H: FaultHook>(
    net: &Network,
    weights: &NativeWeights,
    inputs: &[Tensor],
    starts: &[usize],
    precision: Precision,
    hooks: &mut [H],
    scratch: &mut QuantScratch,
    mut observe: impl FnMut(usize, usize, &Tensor, &mut H),
) -> Vec<Tensor> {
    assert!(
        precision.is_integer(),
        "the native backend requires an integer precision, got {precision}"
    );
    assert_eq!(
        weights.native.len(),
        net.depth(),
        "weights/network mismatch"
    );
    assert_eq!(inputs.len(), starts.len(), "inputs/starts mismatch");
    assert_eq!(inputs.len(), hooks.len(), "inputs/hooks mismatch");
    let batch = inputs.len();
    let mut xs: Vec<Tensor> = inputs.to_vec();
    // One stored-bits buffer per sample: layer boundaries of one sample
    // reuse it exactly like the solo executor's single buffer.
    let mut qts: Vec<Option<QuantTensor>> = (0..batch).map(|_| None).collect();
    let min_start = starts.iter().copied().min().unwrap_or(0);
    assert!(
        starts.iter().all(|&s| s <= net.depth()),
        "resume layer exceeds depth {}",
        net.depth()
    );
    for (i, layer) in net.layers().iter().enumerate().skip(min_start) {
        let site = DataSite::new(i, layer.name(), DataKind::Ifm);
        let active: Vec<usize> = (0..batch).filter(|&j| starts[j] <= i).collect();
        for &j in &active {
            observe(j, i, &xs[j], &mut hooks[j]);
            let q = match &mut qts[j] {
                Some(q) => {
                    q.requantize_from(&xs[j], precision);
                    q
                }
                None => qts[j].insert(QuantTensor::quantize(&xs[j], precision)),
            };
            hooks[j].corrupt(&site, q);
        }
        match weights.native_params(i) {
            Some(params) => {
                let qrefs: Vec<&QuantTensor> =
                    active.iter().map(|&j| qts[j].as_ref().unwrap()).collect();
                match layer.quant_forward_batch(&qrefs, params, scratch) {
                    Some(ys) => {
                        for (&j, y) in active.iter().zip(ys) {
                            xs[j] = y;
                        }
                    }
                    None => {
                        for &j in &active {
                            xs[j] = layer
                                .quant_forward(qts[j].as_ref().unwrap(), params, scratch)
                                .expect("layer advertised native quantized support");
                        }
                    }
                }
            }
            None => {
                for &j in &active {
                    let q = qts[j].as_ref().unwrap();
                    xs[j] = match layer.quant_forward_activation(q) {
                        Some(out) => out,
                        None => {
                            let l: &dyn Layer = if layer.param_count() > 0 {
                                weights.fallback_layer(i)
                            } else {
                                layer.as_ref()
                            };
                            l.forward(&q.dequantize())
                        }
                    };
                }
            }
        }
    }
    xs
}

/// Batched integer GEMM over a packed multi-sample rhs, dispatching on
/// accumulator width exactly like [`quant_gemm_bias_into`] — but each sample
/// contributes `cols_per_sample` consecutive output columns with its **own**
/// quantization scale, so the fused epilogue is
/// `out[row·n + j] = bias[row] + acc[row·n + j] · scales[j / cols_per_sample]`
/// (`n = cols_per_sample · batch`). On the i8 fast path, `scratch.cols8`
/// rows must be packed at the [`ops::packed_stride_i8`] panel stride with
/// zero-filled pad lanes. Used by
/// [`crate::layers::Conv2d::quant_forward_batch`] (patch columns) and
/// [`crate::layers::Dense::quant_forward_batch`] (one column per sample).
#[allow(clippy::too_many_arguments)]
pub fn quant_gemm_bias_batch_into(
    m: usize,
    k: usize,
    cols_per_sample: usize,
    params: &QuantLayerParams,
    scratch: &mut QuantScratch,
    precision: Precision,
    scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let n = cols_per_sample * scales.len();
    if use_i8_kernels_for(precision, k) {
        // Batched callers pack each `cols8` row at the k-padded panel
        // stride; mirror the weights into the same layout and run the
        // whole-row-pair panel GEMM (zero pad lanes are exact for integer
        // accumulation, so this matches the unpadded form bit for bit).
        let k_pad = ops::packed_stride_i8(k);
        scratch.apack8.clear();
        scratch.apack8.resize(m * k_pad, 0);
        for (dst, src) in scratch
            .apack8
            .chunks_exact_mut(k_pad)
            .zip(params.qweight8.chunks_exact(k))
        {
            dst[..k].copy_from_slice(src);
        }
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m * n, 0);
        ops::gemm_i8_packed(
            m,
            k_pad,
            n,
            &scratch.apack8,
            &scratch.cols8,
            &mut scratch.acc_i32,
        );
        epilogue_batch_i32(m, cols_per_sample, &scratch.acc_i32, scales, bias, out);
    } else if needs_wide_accumulator(precision, k) {
        scratch.acc_i64.clear();
        scratch.acc_i64.resize(m * n, 0);
        ops::gemm_i64_batch(
            m,
            k,
            n,
            &params.qweight,
            &scratch.cols,
            &mut scratch.acc_i64,
        );
        for (row, &b) in bias.iter().enumerate().take(m) {
            for (s, &scale) in scales.iter().enumerate() {
                let lo = row * n + s * cols_per_sample;
                for (o, &acc) in out[lo..lo + cols_per_sample]
                    .iter_mut()
                    .zip(&scratch.acc_i64[lo..lo + cols_per_sample])
                {
                    *o = b + acc as f32 * scale;
                }
            }
        }
    } else {
        scratch.acc_i32.clear();
        scratch.acc_i32.resize(m * n, 0);
        ops::gemm_i32_batch(
            m,
            k,
            n,
            &params.qweight,
            &scratch.cols,
            &mut scratch.acc_i32,
        );
        epilogue_batch_i32(m, cols_per_sample, &scratch.acc_i32, scales, bias, out);
    }
}

/// Per-sample-scale variant of [`epilogue_i32`]:
/// `out[row·n + j] = bias[row] + acc[row·n + j] · scales[j / cols_per_sample]`.
fn epilogue_batch_i32(
    m: usize,
    cols_per_sample: usize,
    acc: &[i32],
    scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let n = cols_per_sample * scales.len();
    for (row, &b) in bias.iter().enumerate().take(m) {
        // Per-sample segments of the row share one scale: iterate segment
        // by segment so the hot loop is a pure fused multiply-add.
        for (s, &scale) in scales.iter().enumerate() {
            let lo = row * n + s * cols_per_sample;
            for (o, &a) in out[lo..lo + cols_per_sample]
                .iter_mut()
                .zip(&acc[lo..lo + cols_per_sample])
            {
                *o = b + a as f32 * scale;
            }
        }
    }
}

/// Fused `out[row·n + j] = bias[row] + acc[row·n + j] · scale` epilogue.
fn epilogue_i32(m: usize, n: usize, acc: &[i32], scale: f32, bias: &[f32], out: &mut [f32]) {
    for row in 0..m {
        let b = bias[row];
        for (o, &a) in out[row * n..(row + 1) * n]
            .iter_mut()
            .zip(&acc[row * n..(row + 1) * n])
        {
            *o = b + a as f32 * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use crate::NoFaults;
    use eden_tensor::init::{seeded_rng, uniform};

    fn tiny_net(seed: u64) -> Network {
        let mut rng = seeded_rng(seed);
        let mut net = Network::new("tiny", &[2, 7, 7]);
        net.push(Conv2d::new("conv1", 2, 3, 3, 1, 1, &mut rng))
            .push(Relu::new("relu1"))
            .push(MaxPool2d::new("pool1", 2, 2))
            .push(Flatten::new("flatten"))
            .push(Dense::new("fc", 3 * 3 * 3, 5, &mut rng));
        net
    }

    fn native_forward(net: &Network, x: &Tensor, precision: Precision) -> Tensor {
        let images = net.weight_images(precision);
        let mut weights = NativeWeights::prepare(net);
        weights.refresh(&images, &mut NoFaults);
        let mut scratch = QuantScratch::new();
        forward_native(net, &weights, x, precision, &mut NoFaults, &mut scratch)
    }

    /// The simulated-f32 reference: weights round-tripped through the stored
    /// representation (as a weight refetch does), IFMs quantized per layer.
    fn simulated_forward(net: &Network, x: &Tensor, precision: Precision) -> Tensor {
        let mut c = net.clone();
        c.corrupt_weights(precision, &mut NoFaults);
        c.forward_with_ifm_hook(x, precision, &mut NoFaults)
    }

    #[test]
    fn native_forward_tracks_simulated_path_closely() {
        let net = tiny_net(3);
        let mut rng = seeded_rng(7);
        let x = uniform(&[2, 7, 7], -1.0, 1.0, &mut rng);
        for p in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let simulated = simulated_forward(&net, &x, p);
            let native = native_forward(&net, &x, p);
            assert_eq!(native.shape(), simulated.shape());
            for (a, b) in native.data().iter().zip(simulated.data()) {
                assert!(
                    (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                    "{p}: native {a} vs simulated {b}"
                );
            }
        }
    }

    #[test]
    fn native_forward_is_deterministic() {
        let net = tiny_net(4);
        let mut rng = seeded_rng(9);
        let x = uniform(&[2, 7, 7], -1.0, 1.0, &mut rng);
        let a = native_forward(&net, &x, Precision::Int8);
        let b = native_forward(&net, &x, Precision::Int8);
        assert_eq!(a, b);
    }

    #[test]
    fn layer_forward_batch_matches_per_sample_bit_for_bit() {
        let mut rng = seeded_rng(21);
        let conv = Conv2d::new("c", 2, 4, 3, 1, 1, &mut rng);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| uniform(&[2, 9, 9], -1.0, 1.0, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        for (x, y) in xs.iter().zip(conv.forward_batch(&refs).unwrap()) {
            assert_eq!(conv.forward(x), y);
        }
        let dense = Dense::new("d", 32, 7, &mut rng);
        let xs: Vec<Tensor> = (0..4)
            .map(|_| uniform(&[32], -1.0, 1.0, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        for (x, y) in xs.iter().zip(dense.forward_batch(&refs).unwrap()) {
            assert_eq!(dense.forward(x), y);
        }
    }

    #[test]
    fn batched_native_forward_is_bit_identical_to_per_sample() {
        let net = tiny_net(5);
        let mut rng = seeded_rng(11);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| uniform(&[2, 7, 7], -1.0, 1.0, &mut rng))
            .collect();
        for p in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let images = net.weight_images(p);
            let mut weights = NativeWeights::prepare(&net);
            weights.refresh(&images, &mut NoFaults);
            let per: Vec<Tensor> = inputs
                .iter()
                .map(|x| {
                    let mut s = QuantScratch::new();
                    forward_native(&net, &weights, x, p, &mut NoFaults, &mut s)
                })
                .collect();
            let mut hooks: Vec<NoFaults> = (0..inputs.len()).map(|_| NoFaults).collect();
            let starts = vec![0usize; inputs.len()];
            let mut scratch = QuantScratch::new();
            let batched = forward_native_batch_observed(
                &net,
                &weights,
                &inputs,
                &starts,
                p,
                &mut hooks,
                &mut scratch,
                |_, _, _, _| {},
            );
            assert_eq!(per, batched, "{p}");
        }
    }

    #[test]
    fn batched_native_forward_respects_per_sample_resume_layers() {
        // Samples resuming at different boundaries (as checkpointed batch
        // members do) must see exactly the suffix a solo resume would run.
        let net = tiny_net(6);
        let mut rng = seeded_rng(13);
        let p = Precision::Int8;
        let images = net.weight_images(p);
        let mut weights = NativeWeights::prepare(&net);
        weights.refresh(&images, &mut NoFaults);
        let x0 = uniform(&[2, 7, 7], -1.0, 1.0, &mut rng);
        // Sample 1 "resumes" from layer 2 with the boundary activation a full
        // pass produces there.
        let mut s = QuantScratch::new();
        let mut boundary = None;
        let full = forward_native_observed(
            &net,
            &weights,
            &x0,
            0,
            p,
            &mut NoFaults,
            &mut s,
            |i, x, _| {
                if i == 2 {
                    boundary = Some(x.clone());
                }
            },
        );
        let boundary = boundary.unwrap();
        let inputs = vec![x0.clone(), boundary];
        let starts = vec![0usize, 2];
        let mut hooks: Vec<NoFaults> = vec![NoFaults, NoFaults];
        let mut scratch = QuantScratch::new();
        let batched = forward_native_batch_observed(
            &net,
            &weights,
            &inputs,
            &starts,
            p,
            &mut hooks,
            &mut scratch,
            |_, _, _, _| {},
        );
        assert_eq!(batched[0], full);
        assert_eq!(batched[1], full);
    }

    #[test]
    fn scratch_arena_reuses_buffers() {
        let arena: ScratchArena = ScratchArena::new();
        arena.with(|s| s.qx.resize(128, 0));
        assert_eq!(arena.resident(), 1);
        // The returned buffer comes back out with its capacity intact.
        arena.with(|s| assert!(s.qx.capacity() >= 128));
        assert_eq!(arena.resident(), 1);
    }

    #[test]
    fn lenet_style_net_needs_no_fallback() {
        let weights = NativeWeights::prepare(&tiny_net(0));
        assert!(!weights.has_fallback());
    }

    #[test]
    fn norm_layer_forces_fallback_network() {
        let mut rng = seeded_rng(1);
        let mut net = Network::new("norm", &[2, 4, 4]);
        net.push(crate::layers::ChannelNorm::new("cn", 2))
            .push(Flatten::new("flatten"))
            .push(Dense::new("fc", 32, 3, &mut rng));
        let weights = NativeWeights::prepare(&net);
        assert!(weights.has_fallback());
        // The fallback path still produces outputs close to the f32 path.
        let x = uniform(&[2, 4, 4], -1.0, 1.0, &mut rng);
        let simulated = simulated_forward(&net, &x, Precision::Int8);
        let native = native_forward(&net, &x, Precision::Int8);
        for (a, b) in native.data().iter().zip(simulated.data()) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn native_overlay_patching_matches_refresh() {
        // Both a fully-native net and one with a fallback layer: applying
        // overlays to clean native state must equal a full refresh through a
        // hook producing the same corruption, and revert must restore clean.
        let mut rng = seeded_rng(2);
        let mut norm_net = Network::new("norm", &[2, 4, 4]);
        norm_net
            .push(crate::layers::ChannelNorm::new("cn", 2))
            .push(Flatten::new("flatten"))
            .push(Dense::new("fc", 32, 3, &mut rng));
        for (net, input_shape) in [(tiny_net(5), vec![2usize, 7, 7]), (norm_net, vec![2, 4, 4])] {
            for precision in [Precision::Int4, Precision::Int8, Precision::Int16] {
                let images = net.weight_images(precision);
                let mask_limit = (1u32 << precision.bits()) - 1;
                let overlays: Vec<CorruptionOverlay> = images
                    .iter()
                    .map(|img| {
                        let deltas: Vec<(u32, u32)> = (0..img.clean.len() as u32)
                            .step_by(3)
                            .map(|w| (w, (w.wrapping_mul(37) & mask_limit).max(1)))
                            .collect();
                        let flips = deltas.iter().map(|&(_, m)| m.count_ones() as u64).sum();
                        CorruptionOverlay::new(img.clean.len(), precision.bits(), deltas, flips, 0)
                    })
                    .collect();

                let mut cursor = 0usize;
                let mut reference = NativeWeights::prepare(&net);
                reference.refresh(&images, &mut |_: &DataSite, q: &mut QuantTensor| {
                    overlays[cursor].apply(q);
                    cursor += 1;
                });

                let mut patched = NativeWeights::prepare(&net);
                patched.refresh_clean(&images);
                patched.apply_overlay(&images, &overlays);

                let x = uniform(&input_shape, -1.0, 1.0, &mut rng);
                let mut scratch = QuantScratch::new();
                let via_reference =
                    forward_native(&net, &reference, &x, precision, &mut NoFaults, &mut scratch);
                let via_patch =
                    forward_native(&net, &patched, &x, precision, &mut NoFaults, &mut scratch);
                assert_eq!(via_reference, via_patch, "{precision}");

                // Revert restores the clean state bit for bit.
                patched.revert_overlay(&images, &overlays);
                let mut clean = NativeWeights::prepare(&net);
                clean.refresh_clean(&images);
                let via_reverted =
                    forward_native(&net, &patched, &x, precision, &mut NoFaults, &mut scratch);
                let via_clean =
                    forward_native(&net, &clean, &x, precision, &mut NoFaults, &mut scratch);
                assert_eq!(via_reverted, via_clean, "{precision}");
            }
        }
    }

    #[test]
    fn wide_accumulator_selection_is_conservative() {
        assert!(!needs_wide_accumulator(Precision::Int8, 1 << 16));
        assert!(needs_wide_accumulator(Precision::Int8, 1 << 18));
        assert!(needs_wide_accumulator(Precision::Int16, 2));
        assert!(!needs_wide_accumulator(Precision::Int4, 1 << 20));
        // The combined predicate rejects the i8 kernels exactly when the
        // i32 accumulator could overflow, even for i8-sized operands.
        assert!(use_i8_kernels_for(Precision::Int8, 1 << 16));
        assert!(!use_i8_kernels_for(Precision::Int8, 1 << 18));
        assert!(!use_i8_kernels_for(Precision::Int16, 8));
    }

    #[test]
    fn deep_int8_reductions_take_the_overflow_proof_path() {
        // k = 2^18 int8 worst-case products sum to ~2^32, overflowing an i32
        // accumulator — the dispatch must route such depths to the i64
        // kernels even though the operands fit i16.
        let k = 1 << 18;
        let m = 2;
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new("deep", k, m, &mut rng);
        let big = Tensor::full(&[k], 1.0);
        layer.visit_params(&mut |p| {
            if p.name == "weight" {
                *p.value = Tensor::full(&[m, k], 1.0);
            }
        });
        let qx = QuantTensor::quantize(&big, Precision::Int8);
        let images = {
            let mut net = Network::new("deep", &[k]);
            net.push(layer.clone());
            net.weight_images(Precision::Int8)
        };
        let mut params = QuantLayerParams::default();
        for img in &images {
            let q = img.clean.clone();
            if img.param_name == "weight" {
                q.q_values_into(&mut params.qweight);
                params.weight_scale = q.scale();
                params.qweight8.clear();
                params
                    .qweight8
                    .extend(params.qweight.iter().map(|&v| v as i8));
            } else {
                params.bias = vec![0.0; q.len()];
            }
        }
        let mut scratch = QuantScratch::new();
        let y = layer
            .quant_forward(&qx, &params, &mut scratch)
            .expect("dense is native");
        // All-ones tensors quantize to q = 127 with scale 1/127, so the true
        // sum is k·127² · (1/127)² = k exactly; an overflowed i32
        // accumulator would wrap to a wildly different value.
        let expected = k as f32;
        for &v in y.data() {
            assert!(
                (v - expected).abs() <= expected * 1e-3,
                "deep reduction overflowed: got {v}, expected ~{expected}"
            );
        }
    }
}
