//! Standard (reliable-memory) training.

use crate::data::Dataset;
use crate::loss;
use crate::metrics;
use crate::network::Network;
use crate::optimizer::Sgd;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 6,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training split after the final epoch.
    pub final_train_accuracy: f32,
    /// Accuracy on the test split after the final epoch.
    pub final_test_accuracy: f32,
}

/// Trains networks on reliable memory with SGD.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `dataset` for the configured number of epochs.
    pub fn train(&mut self, net: &mut Network, dataset: &dyn Dataset) -> TrainReport {
        let mut optimizer = Sgd::new(
            self.config.learning_rate,
            self.config.momentum,
            self.config.weight_decay,
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let loss = self.train_epoch(net, dataset, &mut optimizer, &mut rng);
            epoch_losses.push(loss);
        }
        TrainReport {
            epoch_losses,
            final_train_accuracy: metrics::accuracy(net, dataset.train()),
            final_test_accuracy: metrics::accuracy(net, dataset.test()),
        }
    }

    /// Runs one epoch and returns the mean loss.
    pub fn train_epoch(
        &self,
        net: &mut Network,
        dataset: &dyn Dataset,
        optimizer: &mut Sgd,
        rng: &mut StdRng,
    ) -> f32 {
        let mut order: Vec<usize> = (0..dataset.train().len()).collect();
        order.shuffle(rng);
        let mut total_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(self.config.batch_size) {
            net.zero_grads();
            let mut batch_loss = 0.0;
            for &i in chunk {
                let (x, label) = &dataset.train()[i];
                let logits = net.forward_train(x);
                let (l, d_logits) = loss::cross_entropy(&logits, *label);
                batch_loss += l;
                net.backward(&d_logits.scale(1.0 / chunk.len() as f32));
            }
            optimizer.step(net);
            total_loss += batch_loss / chunk.len() as f32;
            batches += 1;
        }
        total_loss / batches.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;
    use crate::layers::{Dense, Flatten, Relu};
    use eden_tensor::init::seeded_rng;

    fn mlp(d: &SyntheticVision) -> Network {
        let spec = d.spec();
        let mut rng = seeded_rng(1);
        let n_in = spec.channels * spec.height * spec.width;
        let mut net = Network::new("mlp", &spec.input_shape());
        net.push(Flatten::new("flatten"))
            .push(Dense::new("fc1", n_in, 24, &mut rng))
            .push(Relu::new("relu"))
            .push(Dense::new("fc2", 24, spec.num_classes, &mut rng));
        net
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let d = SyntheticVision::tiny(0);
        let mut net = mlp(&d);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &d);
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
        let chance = 1.0 / d.spec().num_classes as f32;
        assert!(
            report.final_test_accuracy > chance + 0.15,
            "test accuracy {} not above chance {}",
            report.final_test_accuracy,
            chance
        );
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let d = SyntheticVision::tiny(2);
        let mut a = mlp(&d);
        let mut b = a.clone();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let ra = Trainer::new(cfg).train(&mut a, &d);
        let rb = Trainer::new(cfg).train(&mut b, &d);
        assert_eq!(ra, rb);
    }
}
