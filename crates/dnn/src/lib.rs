//! # eden-dnn
//!
//! The DNN substrate for the EDEN reproduction: layers with forward/backward
//! passes, sequential networks, an SGD trainer, deterministic synthetic
//! datasets, a model zoo mirroring the paper's Table 1, pruning, and
//! quantized inference with fault-injection hooks.
//!
//! The paper evaluates EDEN on eight DNN families (ResNet101, MobileNetV2,
//! VGG-16, DenseNet201, SqueezeNet1.1, AlexNet, YOLO, YOLO-Tiny) plus LeNet.
//! This crate provides architecturally faithful, scaled-down versions of each
//! (see [`zoo`]) trained on synthetic datasets (see [`data`]); the
//! substitution rationale is documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use eden_dnn::{data::SyntheticVision, zoo, train::{Trainer, TrainConfig}, Dataset};
//!
//! let dataset = SyntheticVision::small(42);
//! let mut net = zoo::lenet(&dataset.spec(), 1);
//! let mut trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() });
//! let report = trainer.train(&mut net, &dataset);
//! assert!(report.final_train_accuracy >= 0.0);
//! ```

pub mod data;
pub mod hooks;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod pruning;
pub mod qexec;
pub mod quantized;
pub mod train;
pub mod zoo;

pub use data::{Dataset, SyntheticVision};
pub use hooks::{DataKind, DataSite, FaultHook, NoFaults};
pub use layer::Layer;
pub use network::Network;
pub use zoo::{ModelId, ModelSpec};
