//! The dense `f32` tensor type.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// This is the working data type for all DNN computation in the EDEN
/// reproduction. Values destined for approximate DRAM are converted to a
/// bit-exact stored representation via [`crate::quant::QuantTensor`].
///
/// # Example
///
/// ```
/// use eden_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(a.get(&[1, 0]), 3.0);
/// assert_eq!(a.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied by
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// The tensor's shape as a slice of dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional coordinate.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional coordinate.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.shape.flat_index(idx);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data but a different shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Applies a function element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary operation with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `scale * other` into `self` in place (AXPY), used by optimizers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element (NaN-ignoring); `f32::NEG_INFINITY` for all-NaN data.
    pub fn max(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-ignoring); `f32::INFINITY` for all-NaN data.
    pub fn min(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value of any element.
    pub fn abs_max(&self) -> f32 {
        // No explicit NaN filter: `f32::max` already ignores NaN operands
        // (`max(m, NaN) == m`), and the branchless fold vectorizes.
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element in the flat data.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.len() as f32
    }

    /// Extracts one slice along the outermost dimension (e.g., one sample of a
    /// batch). The result drops the outermost dimension.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-1 or `index` is out of bounds.
    pub fn outer_slice(&self, index: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(dims.len() >= 2, "outer_slice requires rank >= 2");
        assert!(index < dims[0], "outer_slice index out of bounds");
        let inner: usize = dims[1..].iter().product();
        let data = self.data[index * inner..(index + 1) * inner].to_vec();
        Tensor::from_vec(data, &dims[1..])
    }

    /// Stacks rank-`n` tensors of identical shape into one rank-`n+1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape().to_vec();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape(), inner.as_slice(), "stack shape mismatch");
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(&inner);
        Tensor::from_vec(data, &dims)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 0.0, 2.0], &[4]);
        assert_eq!(t.sum(), 5.0);
        assert_eq!(t.mean(), 1.25);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.abs_max(), 4.0);
        assert_eq!(t.argmax(), 1);
        assert!((t.sparsity() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn stack_and_outer_slice_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.outer_slice(0), a);
        assert_eq!(s.outer_slice(1), b);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn max_ignores_nan() {
        let t = Tensor::from_vec(vec![f32::NAN, 1.0, -2.0], &[3]);
        assert_eq!(t.max(), 1.0);
        assert_eq!(t.min(), -2.0);
    }
}
