//! # eden-tensor
//!
//! Dense tensor substrate for the EDEN reproduction.
//!
//! This crate provides:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with the shape algebra and
//!   operators ([`ops`]) needed by the DNN layers in `eden-dnn` (matrix
//!   multiplication, 2-D convolution, pooling, activations), including the
//!   backward passes required for (re)training.
//! * [`quant`] — symmetric linear quantization into the numeric precisions the
//!   paper evaluates (`int4`, `int8`, `int16`, `FP32`), with **bit-exact
//!   storage representations** so DRAM bit flips can be applied to the same
//!   bits a real device would corrupt.
//! * [`bits`] — bit-level views and flip operations over stored values.
//! * [`init`] — deterministic weight initializers.
//! * [`simd`] — runtime-dispatched SIMD kernel tables (SSE2/AVX2/AVX-512)
//!   behind the hot [`ops`] loops, bit-for-bit equal to their scalar
//!   reference and overridable via `EDEN_ISA`.
//!
//! # Example
//!
//! ```
//! use eden_tensor::{Tensor, quant::{Precision, QuantTensor}};
//!
//! let t = Tensor::from_vec(vec![0.5, -1.25, 3.0, 0.0], &[2, 2]);
//! let q = QuantTensor::quantize(&t, Precision::Int8);
//! let back = q.dequantize();
//! assert_eq!(back.shape(), &[2, 2]);
//! ```

pub mod bits;
pub mod init;
pub mod ops;
pub mod overlay;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use overlay::CorruptionOverlay;
pub use quant::{Precision, QuantTensor};
pub use shape::Shape;
pub use tensor::Tensor;
