//! Shape descriptions for dense tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Shapes are stored row-major; [`Shape::strides`] returns the element strides
/// matching that layout.
///
/// # Example
///
/// ```
/// use eden_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be non-zero: {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major element strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat index of a multi-dimensional coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut flat = 0;
        for ((&i, &d), s) in idx.iter().zip(&self.dims).zip(self.strides()) {
            assert!(i < d, "index {i} out of bounds for dimension of size {d}");
            flat += i * s;
        }
        flat
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[3, 5]);
        assert_eq!(s.flat_index(&[0, 0]), 0);
        assert_eq!(s.flat_index(&[2, 4]), 14);
        assert_eq!(s.flat_index(&[1, 2]), 7);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_rejected() {
        let s = Shape::new(&[2, 2]);
        s.flat_index(&[2, 0]);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Shape::new(&[1, 28, 28]).to_string(), "[1x28x28]");
    }

    #[test]
    fn scalar_like_rank_one() {
        let s = Shape::new(&[7]);
        assert_eq!(s.strides(), vec![1]);
        assert_eq!(s.len(), 7);
    }
}
