//! Symmetric linear quantization with bit-exact stored representations.
//!
//! The paper quantizes every DNN to int4, int8, int16 and FP32 using the
//! "popular symmetric linear DNN quantization scheme" (Section 6.1). For EDEN
//! the essential property is that the *stored bits* of each value are the ones
//! a DRAM device would corrupt, so [`QuantTensor`] keeps the exact storage
//! pattern of every element and exposes bit-flip operations over it.

use crate::bits;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4-bit signed integer.
    Int4,
    /// 8-bit signed integer.
    Int8,
    /// 16-bit signed integer.
    Int16,
    /// IEEE-754 single-precision floating point.
    Fp32,
}

impl Precision {
    /// Number of stored bits per value.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int4 => 4,
            Precision::Int8 => 8,
            Precision::Int16 => 16,
            Precision::Fp32 => 32,
        }
    }

    /// Whether this is an integer (quantized) precision.
    pub fn is_integer(self) -> bool {
        !matches!(self, Precision::Fp32)
    }

    /// Largest representable quantized magnitude (`2^(b-1) - 1`) for integer
    /// precisions; `None` for FP32.
    pub fn q_max(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            p => Some((1i32 << (p.bits() - 1)) - 1),
        }
    }

    /// Smallest representable quantized value (`-2^(b-1)`) for integer
    /// precisions; `None` for FP32.
    pub fn q_min(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            p => Some(-(1i32 << (p.bits() - 1))),
        }
    }

    /// All precisions evaluated in the paper, smallest first.
    pub fn all() -> [Precision; 4] {
        [
            Precision::Int4,
            Precision::Int8,
            Precision::Int16,
            Precision::Fp32,
        ]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Int4 => "int4",
            Precision::Int8 => "int8",
            Precision::Int16 => "int16",
            Precision::Fp32 => "FP32",
        };
        f.write_str(s)
    }
}

/// A tensor stored in its exact in-memory bit representation.
///
/// For integer precisions each element holds the two's complement pattern in
/// the low `bits()` bits; for FP32 it holds the IEEE-754 bit pattern. The
/// associated `scale` converts quantized integers back to real values
/// (`value = q * scale`); it is `1.0` for FP32.
///
/// # Example
///
/// ```
/// use eden_tensor::{Tensor, quant::{Precision, QuantTensor}};
/// let t = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.0], &[4]);
/// let mut q = QuantTensor::quantize(&t, Precision::Int8);
/// q.flip_bit(0, 7); // corrupt the MSB of the first value
/// let corrupted = q.dequantize();
/// assert!(corrupted.data()[0] < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    shape: Vec<usize>,
    precision: Precision,
    scale: f32,
    stored: Vec<u32>,
}

impl QuantTensor {
    /// Quantizes an `f32` tensor into the given precision using symmetric
    /// linear quantization (`scale = abs_max / q_max`).
    pub fn quantize(t: &Tensor, precision: Precision) -> Self {
        match precision {
            Precision::Fp32 => Self {
                shape: t.shape().to_vec(),
                precision,
                scale: 1.0,
                stored: t.data().iter().map(|v| v.to_bits()).collect(),
            },
            p => {
                let q_max = p.q_max().expect("integer precision") as f32;
                let q_min = p.q_min().expect("integer precision") as f32;
                let abs_max = t.abs_max();
                let scale = if abs_max == 0.0 { 1.0 } else { abs_max / q_max };
                let mask = if p.bits() == 32 {
                    u32::MAX
                } else {
                    (1u32 << p.bits()) - 1
                };
                let stored = t
                    .data()
                    .iter()
                    .map(|&v| {
                        let q = (v / scale).round().clamp(q_min, q_max) as i32;
                        (q as u32) & mask
                    })
                    .collect();
                Self {
                    shape: t.shape().to_vec(),
                    precision: p,
                    scale,
                    stored,
                }
            }
        }
    }

    /// Reconstructs the `f32` tensor from the stored representation.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = (0..self.stored.len()).map(|i| self.value(i)).collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// The dequantized value of element `i`.
    pub fn value(&self, i: usize) -> f32 {
        match self.precision {
            Precision::Fp32 => f32::from_bits(self.stored[i]),
            p => bits::sign_extend(self.stored[i], p.bits()) as f32 * self.scale,
        }
    }

    /// Overwrites element `i` with a real value, re-quantizing it.
    pub fn set_value(&mut self, i: usize, v: f32) {
        match self.precision {
            Precision::Fp32 => self.stored[i] = v.to_bits(),
            p => {
                let q_max = p.q_max().expect("integer") as f32;
                let q_min = p.q_min().expect("integer") as f32;
                let q = (v / self.scale).round().clamp(q_min, q_max) as i32;
                let mask = (1u32 << p.bits()) - 1;
                self.stored[i] = (q as u32) & mask;
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The numeric precision of the stored values.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The dequantization scale (`1.0` for FP32).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw stored bit pattern of element `i` (low `bits()` bits significant).
    pub fn stored_bits(&self, i: usize) -> u32 {
        self.stored[i]
    }

    /// Raw stored patterns for all elements.
    pub fn stored(&self) -> &[u32] {
        &self.stored
    }

    /// Mutable raw stored patterns for all elements. Only the low `bits()`
    /// bits of each word are significant; writers must keep the rest zero
    /// (as [`QuantTensor::flip_bit`] does by construction).
    ///
    /// This exists so fault injectors can split a tensor into disjoint chunks
    /// and corrupt them in parallel.
    pub fn stored_mut(&mut self) -> &mut [u32] {
        &mut self.stored
    }

    /// Bits per stored value.
    pub fn bits_per_value(&self) -> u32 {
        self.precision.bits()
    }

    /// Total number of stored bits in the tensor.
    pub fn total_bits(&self) -> u64 {
        self.len() as u64 * self.bits_per_value() as u64
    }

    /// Total number of stored bytes (rounded up per value for int4: two int4
    /// values per byte, so exact).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits() / 8
    }

    /// Flips bit `bit` (0 = LSB) of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `bit` is out of range.
    pub fn flip_bit(&mut self, i: usize, bit: u32) {
        assert!(bit < self.bits_per_value(), "bit index out of range");
        self.stored[i] ^= 1 << bit;
    }

    /// Reads bit `bit` of element `i`.
    pub fn get_bit(&self, i: usize, bit: u32) -> bool {
        bits::get_bit(self.stored[i], bit)
    }

    /// Sets bit `bit` of element `i` to `value`.
    pub fn set_bit(&mut self, i: usize, bit: u32, value: bool) {
        assert!(bit < self.bits_per_value(), "bit index out of range");
        if value {
            self.stored[i] |= 1 << bit;
        } else {
            self.stored[i] &= !(1 << bit);
        }
    }

    /// Number of bit positions that differ from another tensor with the same
    /// shape and precision. Used to measure observed bit error rates.
    ///
    /// # Panics
    ///
    /// Panics if shapes or precisions differ.
    pub fn bit_differences(&self, other: &QuantTensor) -> u64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        assert_eq!(self.precision, other.precision, "precision mismatch");
        let w = self.bits_per_value();
        self.stored
            .iter()
            .zip(&other.stored)
            .map(|(&a, &b)| bits::hamming_distance(a, b, w) as u64)
            .sum()
    }

    /// Root-mean-square quantization error against a reference tensor.
    pub fn rms_error(&self, reference: &Tensor) -> f32 {
        let deq = self.dequantize();
        let diff = deq.sub(reference);
        (diff.sq_norm() / diff.len() as f32).sqrt()
    }
}

impl fmt::Display for QuantTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantTensor({} values, {}, scale {:.6})",
            self.len(),
            self.precision,
            self.scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_round_trips_exactly() {
        let t = Tensor::from_vec(vec![0.1, -2.7, 1e-8, 3.5e7], &[4]);
        let q = QuantTensor::quantize(&t, Precision::Fp32);
        assert_eq!(q.dequantize(), t);
        assert_eq!(q.total_bytes(), 16);
    }

    #[test]
    fn int8_quantization_error_is_bounded() {
        let t = Tensor::from_vec((-50..50).map(|x| x as f32 / 10.0).collect(), &[100]);
        let q = QuantTensor::quantize(&t, Precision::Int8);
        // Max error is half of one quantization step.
        let step = q.scale();
        for (orig, deq) in t.data().iter().zip(q.dequantize().data()) {
            assert!((orig - deq).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn int4_is_coarser_than_int16() {
        let t = Tensor::from_vec((0..64).map(|x| (x as f32 * 0.13).sin()).collect(), &[64]);
        let e4 = QuantTensor::quantize(&t, Precision::Int4).rms_error(&t);
        let e16 = QuantTensor::quantize(&t, Precision::Int16).rms_error(&t);
        assert!(e4 > e16);
    }

    #[test]
    fn zero_tensor_quantizes_safely() {
        let t = Tensor::zeros(&[8]);
        let q = QuantTensor::quantize(&t, Precision::Int8);
        assert_eq!(q.dequantize(), t);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn flip_bit_changes_and_restores_value() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        for p in Precision::all() {
            let mut q = QuantTensor::quantize(&t, p);
            let before = q.value(1);
            q.flip_bit(1, 0);
            q.flip_bit(1, 0);
            assert_eq!(q.value(1), before, "double flip must restore ({p})");
        }
    }

    #[test]
    fn msb_flip_on_int8_changes_sign_region() {
        let t = Tensor::from_vec(vec![1.0, 0.5, -0.25, 0.0], &[4]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        let before = q.value(0);
        q.flip_bit(0, 7);
        assert!(
            q.value(0) < before,
            "MSB flip of a positive value goes negative"
        );
    }

    #[test]
    fn exponent_flip_on_fp32_creates_implausible_value() {
        let t = Tensor::from_vec(vec![0.75], &[1]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        q.flip_bit(0, 30);
        assert!(q.value(0).abs() > 1e30);
    }

    #[test]
    fn bit_differences_counts_flips() {
        let t = Tensor::from_vec(vec![1.0; 16], &[16]);
        let a = QuantTensor::quantize(&t, Precision::Int8);
        let mut b = a.clone();
        b.flip_bit(0, 1);
        b.flip_bit(5, 7);
        b.flip_bit(5, 3);
        assert_eq!(a.bit_differences(&b), 3);
    }

    #[test]
    fn total_bits_accounts_for_precision() {
        let t = Tensor::zeros(&[10]);
        assert_eq!(QuantTensor::quantize(&t, Precision::Int4).total_bits(), 40);
        assert_eq!(QuantTensor::quantize(&t, Precision::Fp32).total_bits(), 320);
    }

    #[test]
    fn set_value_requantizes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 4.0], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        q.set_value(0, 0.0);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    fn set_and_get_bit_round_trip() {
        let t = Tensor::from_vec(vec![0.0; 4], &[4]);
        let mut q = QuantTensor::quantize(&t, Precision::Int16);
        q.set_bit(2, 5, true);
        assert!(q.get_bit(2, 5));
        q.set_bit(2, 5, false);
        assert!(!q.get_bit(2, 5));
    }
}
