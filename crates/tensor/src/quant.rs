//! Symmetric linear quantization with bit-exact stored representations.
//!
//! The paper quantizes every DNN to int4, int8, int16 and FP32 using the
//! "popular symmetric linear DNN quantization scheme" (Section 6.1). For EDEN
//! the essential property is that the *stored bits* of each value are the ones
//! a DRAM device would corrupt, so [`QuantTensor`] keeps the exact storage
//! pattern of every element and exposes bit-flip operations over it.

use crate::bits;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4-bit signed integer.
    Int4,
    /// 8-bit signed integer.
    Int8,
    /// 16-bit signed integer.
    Int16,
    /// IEEE-754 single-precision floating point.
    Fp32,
}

impl Precision {
    /// Number of stored bits per value.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int4 => 4,
            Precision::Int8 => 8,
            Precision::Int16 => 16,
            Precision::Fp32 => 32,
        }
    }

    /// Whether this is an integer (quantized) precision.
    pub fn is_integer(self) -> bool {
        !matches!(self, Precision::Fp32)
    }

    /// Largest representable quantized magnitude (`2^(b-1) - 1`) for integer
    /// precisions; `None` for FP32.
    pub fn q_max(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            p => Some((1i32 << (p.bits() - 1)) - 1),
        }
    }

    /// Smallest representable quantized value (`-2^(b-1)`) for integer
    /// precisions; `None` for FP32.
    pub fn q_min(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            p => Some(-(1i32 << (p.bits() - 1))),
        }
    }

    /// All precisions evaluated in the paper, smallest first.
    pub fn all() -> [Precision; 4] {
        [
            Precision::Int4,
            Precision::Int8,
            Precision::Int16,
            Precision::Fp32,
        ]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Int4 => "int4",
            Precision::Int8 => "int8",
            Precision::Int16 => "int16",
            Precision::Fp32 => "FP32",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "int4" => Ok(Precision::Int4),
            "int8" => Ok(Precision::Int8),
            "int16" => Ok(Precision::Int16),
            "fp32" | "f32" | "float32" => Ok(Precision::Fp32),
            other => Err(format!(
                "unknown precision {other:?} (expected \"int4\", \"int8\", \"int16\" or \"fp32\")"
            )),
        }
    }
}

/// A tensor stored in its exact in-memory bit representation.
///
/// For integer precisions each element holds the two's complement pattern in
/// the low `bits()` bits; for FP32 it holds the IEEE-754 bit pattern. The
/// associated `scale` converts quantized integers back to real values
/// (`value = q * scale`); it is `1.0` for FP32.
///
/// # Example
///
/// ```
/// use eden_tensor::{Tensor, quant::{Precision, QuantTensor}};
/// let t = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.0], &[4]);
/// let mut q = QuantTensor::quantize(&t, Precision::Int8);
/// q.flip_bit(0, 7); // corrupt the MSB of the first value
/// let corrupted = q.dequantize();
/// assert!(corrupted.data()[0] < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    shape: Vec<usize>,
    precision: Precision,
    scale: f32,
    stored: Vec<u32>,
}

/// Round-half-away-from-zero to an integer, bit-identical to
/// `x.round() as i32` for every finite `|x| < 2²³` (and mapping NaN to 0,
/// like a saturating cast of NaN).
///
/// `f32::round` lowers to a `roundf` libm call on baseline x86-64 (the
/// nearest-integer instructions need SSE4.1), which made rounding the single
/// most expensive step of tensor quantization. This form uses only
/// truncation and compares, so the quantize loop vectorizes on any target.
/// The fractional part `x - trunc(x)` is exact for `|x| < 2²³` (both
/// operands are multiples of `ulp(x)` and the difference is representable),
/// so the half-way comparison is exact too.
#[inline]
fn round_half_away(x: f32) -> i32 {
    let t = x as i32; // truncates toward zero; NaN -> 0
    let frac = x - t as f32;
    t + (frac >= 0.5) as i32 - (frac <= -0.5) as i32
}

impl QuantTensor {
    /// Quantizes an `f32` tensor into the given precision using symmetric
    /// linear quantization (`scale = abs_max / q_max`).
    ///
    /// Integer values are produced by clamp-then-round: clamping before the
    /// round is equivalent to the classic round-then-clamp (both saturate
    /// past the representable range, and values within half a step of the
    /// boundary round onto it either way) and keeps the truncation inside
    /// `round_half_away`'s exact `|x| < 2²³` regime even for degenerate
    /// scales.
    pub fn quantize(t: &Tensor, precision: Precision) -> Self {
        let mut out = Self {
            shape: Vec::new(),
            precision,
            scale: 1.0,
            stored: Vec::new(),
        };
        out.requantize_from(t, precision);
        out
    }

    /// Re-quantizes `t` into this tensor in place, reusing the stored-bits
    /// buffer — the allocation-free form of [`QuantTensor::quantize`] used by
    /// the native executor at every layer boundary. Produces exactly the
    /// state `QuantTensor::quantize(t, precision)` would.
    pub fn requantize_from(&mut self, t: &Tensor, precision: Precision) {
        self.shape.clear();
        self.shape.extend_from_slice(t.shape());
        self.precision = precision;
        self.stored.clear();
        match precision {
            Precision::Fp32 => {
                self.scale = 1.0;
                self.stored.extend(t.data().iter().map(|v| v.to_bits()));
            }
            p => {
                let q_max = p.q_max().expect("integer precision");
                let q_min = p.q_min().expect("integer precision");
                let abs_max = t.abs_max();
                let scale = if abs_max == 0.0 {
                    1.0
                } else {
                    abs_max / q_max as f32
                };
                self.scale = scale;
                let mask = if p.bits() == 32 {
                    u32::MAX
                } else {
                    (1u32 << p.bits()) - 1
                };
                let (q_min_f, q_max_f) = (q_min as f32, q_max as f32);
                self.stored.extend(t.data().iter().map(|&v| {
                    let q = round_half_away((v / scale).clamp(q_min_f, q_max_f));
                    (q as u32) & mask
                }));
            }
        }
    }

    /// Reconstructs the `f32` tensor from the stored representation.
    pub fn dequantize(&self) -> Tensor {
        let mut data = vec![0.0f32; self.stored.len()];
        self.dequantize_into(&mut data);
        Tensor::from_vec(data, &self.shape)
    }

    /// Writes the dequantized values into an existing slice without
    /// allocating — the weight-refetch hot path dequantizes corrupted bit
    /// images directly into a network's parameter tensors.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the element count.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.stored.len(), "dequantize_into length");
        match self.precision {
            Precision::Fp32 => {
                for (o, &s) in out.iter_mut().zip(&self.stored) {
                    *o = f32::from_bits(s);
                }
            }
            p => {
                let bits = p.bits();
                for (o, &s) in out.iter_mut().zip(&self.stored) {
                    *o = bits::sign_extend(s, bits) as f32 * self.scale;
                }
            }
        }
    }

    /// The sign-extended quantized integer of element `i`.
    ///
    /// # Panics
    ///
    /// Panics for FP32 tensors, which have no quantized integer
    /// representation.
    pub fn q_value(&self, i: usize) -> i32 {
        assert!(
            self.precision.is_integer(),
            "q_value is only defined for integer precisions"
        );
        bits::sign_extend(self.stored[i], self.precision.bits())
    }

    /// Sign-extends every stored value into `out` (cleared and refilled), the
    /// allocation-free input path of the native integer kernels.
    ///
    /// # Panics
    ///
    /// Panics for FP32 tensors.
    pub fn q_values_into(&self, out: &mut Vec<i32>) {
        assert!(
            self.precision.is_integer(),
            "q_values_into is only defined for integer precisions"
        );
        let bits = self.precision.bits();
        out.clear();
        out.extend(self.stored.iter().map(|&s| bits::sign_extend(s, bits)));
    }

    /// The dequantized value of element `i`.
    pub fn value(&self, i: usize) -> f32 {
        self.word_value(self.stored[i])
    }

    /// The value a raw stored word would dequantize to under this tensor's
    /// precision and scale — [`QuantTensor::value`] on a word that need not
    /// be resident in the tensor. Sparse corruption overlays use this to
    /// evaluate a flipped word without materializing the corrupted tensor.
    pub fn word_value(&self, word: u32) -> f32 {
        match self.precision {
            Precision::Fp32 => f32::from_bits(word),
            p => bits::sign_extend(word, p.bits()) as f32 * self.scale,
        }
    }

    /// The sign-extended quantized integer of a raw stored word
    /// ([`QuantTensor::q_value`] on a non-resident word).
    ///
    /// # Panics
    ///
    /// Panics for FP32 tensors.
    pub fn word_q_value(&self, word: u32) -> i32 {
        assert!(
            self.precision.is_integer(),
            "word_q_value is only defined for integer precisions"
        );
        bits::sign_extend(word, self.precision.bits())
    }

    /// Overwrites element `i` with a real value, re-quantizing it.
    pub fn set_value(&mut self, i: usize, v: f32) {
        self.stored[i] = self.word_from_value(v);
    }

    /// The stored word [`QuantTensor::set_value`] would write for `v` —
    /// re-quantization of one value without touching the tensor.
    pub fn word_from_value(&self, v: f32) -> u32 {
        match self.precision {
            Precision::Fp32 => v.to_bits(),
            p => {
                let q_max = p.q_max().expect("integer") as f32;
                let q_min = p.q_min().expect("integer") as f32;
                let q = (v / self.scale).round().clamp(q_min, q_max) as i32;
                let mask = (1u32 << p.bits()) - 1;
                (q as u32) & mask
            }
        }
    }

    /// Sign-extends every stored value into an i16 buffer (cleared and
    /// refilled) — the operand form of the widening-multiply integer kernels.
    /// Every integer precision (4/8/16 bits) fits i16 exactly.
    ///
    /// # Panics
    ///
    /// Panics for FP32 tensors.
    pub fn q_values_i16_into(&self, out: &mut Vec<i16>) {
        assert!(
            self.precision.is_integer(),
            "q_values_i16_into is only defined for integer precisions"
        );
        let bits = self.precision.bits();
        out.clear();
        out.extend(
            self.stored
                .iter()
                .map(|&s| bits::sign_extend(s, bits) as i16),
        );
    }

    /// Sign-extends every stored value into an i8 buffer (cleared and
    /// refilled) — the one-byte operand form of the int4/int8 kernels
    /// ([`crate::ops::gemm_dot_i8`]). Every 4- or 8-bit pattern, including
    /// corrupted ones, sign-extends into `[-128, 127]` exactly.
    ///
    /// # Panics
    ///
    /// Panics for FP32 and int16 tensors, whose values do not fit i8.
    pub fn q_values_i8_into(&self, out: &mut Vec<i8>) {
        assert!(
            self.precision.is_integer() && self.precision.bits() <= 8,
            "q_values_i8_into is only defined for integer precisions up to 8 bits"
        );
        let bits = self.precision.bits();
        out.clear();
        out.extend(
            self.stored
                .iter()
                .map(|&s| bits::sign_extend(s, bits) as i8),
        );
    }

    /// A copy of the stored words in `range` as a standalone 1-D tensor
    /// sharing this tensor's precision and scale — the per-span view that
    /// multi-module placement corrupts independently. Word `i` of the slice
    /// is word `range.start + i` of the parent, so overlays produced against
    /// the slice lift back into the parent by offsetting word indices.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_values(&self, range: std::ops::Range<usize>) -> QuantTensor {
        QuantTensor {
            shape: vec![range.len()],
            precision: self.precision,
            scale: self.scale,
            stored: self.stored[range].to_vec(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The numeric precision of the stored values.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The dequantization scale (`1.0` for FP32).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw stored bit pattern of element `i` (low `bits()` bits significant).
    pub fn stored_bits(&self, i: usize) -> u32 {
        self.stored[i]
    }

    /// Raw stored patterns for all elements.
    pub fn stored(&self) -> &[u32] {
        &self.stored
    }

    /// Mutable raw stored patterns for all elements. Only the low `bits()`
    /// bits of each word are significant; writers must keep the rest zero
    /// (as [`QuantTensor::flip_bit`] does by construction).
    ///
    /// This exists so fault injectors can split a tensor into disjoint chunks
    /// and corrupt them in parallel.
    pub fn stored_mut(&mut self) -> &mut [u32] {
        &mut self.stored
    }

    /// Bits per stored value.
    pub fn bits_per_value(&self) -> u32 {
        self.precision.bits()
    }

    /// Total number of stored bits in the tensor.
    pub fn total_bits(&self) -> u64 {
        self.len() as u64 * self.bits_per_value() as u64
    }

    /// Total number of stored bytes, rounded **up** to whole bytes: an int4
    /// tensor with an odd element count occupies a final half-filled byte
    /// that DRAM capacity accounting must still reserve.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Flips bit `bit` (0 = LSB) of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `bit` is out of range.
    pub fn flip_bit(&mut self, i: usize, bit: u32) {
        assert!(bit < self.bits_per_value(), "bit index out of range");
        self.stored[i] ^= 1 << bit;
    }

    /// Reads bit `bit` of element `i`.
    pub fn get_bit(&self, i: usize, bit: u32) -> bool {
        bits::get_bit(self.stored[i], bit)
    }

    /// Sets bit `bit` of element `i` to `value`.
    pub fn set_bit(&mut self, i: usize, bit: u32, value: bool) {
        assert!(bit < self.bits_per_value(), "bit index out of range");
        if value {
            self.stored[i] |= 1 << bit;
        } else {
            self.stored[i] &= !(1 << bit);
        }
    }

    /// Number of bit positions that differ from another tensor with the same
    /// shape and precision. Used to measure observed bit error rates.
    ///
    /// # Panics
    ///
    /// Panics if shapes or precisions differ.
    pub fn bit_differences(&self, other: &QuantTensor) -> u64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        assert_eq!(self.precision, other.precision, "precision mismatch");
        let w = self.bits_per_value();
        self.stored
            .iter()
            .zip(&other.stored)
            .map(|(&a, &b)| bits::hamming_distance(a, b, w) as u64)
            .sum()
    }

    /// Root-mean-square quantization error against a reference tensor.
    pub fn rms_error(&self, reference: &Tensor) -> f32 {
        let deq = self.dequantize();
        let diff = deq.sub(reference);
        (diff.sq_norm() / diff.len() as f32).sqrt()
    }
}

impl fmt::Display for QuantTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantTensor({} values, {}, scale {:.6})",
            self.len(),
            self.precision,
            self.scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_round_trips_exactly() {
        let t = Tensor::from_vec(vec![0.1, -2.7, 1e-8, 3.5e7], &[4]);
        let q = QuantTensor::quantize(&t, Precision::Fp32);
        assert_eq!(q.dequantize(), t);
        assert_eq!(q.total_bytes(), 16);
    }

    #[test]
    fn int8_quantization_error_is_bounded() {
        let t = Tensor::from_vec((-50..50).map(|x| x as f32 / 10.0).collect(), &[100]);
        let q = QuantTensor::quantize(&t, Precision::Int8);
        // Max error is half of one quantization step.
        let step = q.scale();
        for (orig, deq) in t.data().iter().zip(q.dequantize().data()) {
            assert!((orig - deq).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn int4_is_coarser_than_int16() {
        let t = Tensor::from_vec((0..64).map(|x| (x as f32 * 0.13).sin()).collect(), &[64]);
        let e4 = QuantTensor::quantize(&t, Precision::Int4).rms_error(&t);
        let e16 = QuantTensor::quantize(&t, Precision::Int16).rms_error(&t);
        assert!(e4 > e16);
    }

    #[test]
    fn zero_tensor_quantizes_safely() {
        let t = Tensor::zeros(&[8]);
        let q = QuantTensor::quantize(&t, Precision::Int8);
        assert_eq!(q.dequantize(), t);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn flip_bit_changes_and_restores_value() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        for p in Precision::all() {
            let mut q = QuantTensor::quantize(&t, p);
            let before = q.value(1);
            q.flip_bit(1, 0);
            q.flip_bit(1, 0);
            assert_eq!(q.value(1), before, "double flip must restore ({p})");
        }
    }

    #[test]
    fn msb_flip_on_int8_changes_sign_region() {
        let t = Tensor::from_vec(vec![1.0, 0.5, -0.25, 0.0], &[4]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        let before = q.value(0);
        q.flip_bit(0, 7);
        assert!(
            q.value(0) < before,
            "MSB flip of a positive value goes negative"
        );
    }

    #[test]
    fn exponent_flip_on_fp32_creates_implausible_value() {
        let t = Tensor::from_vec(vec![0.75], &[1]);
        let mut q = QuantTensor::quantize(&t, Precision::Fp32);
        q.flip_bit(0, 30);
        assert!(q.value(0).abs() > 1e30);
    }

    #[test]
    fn bit_differences_counts_flips() {
        let t = Tensor::from_vec(vec![1.0; 16], &[16]);
        let a = QuantTensor::quantize(&t, Precision::Int8);
        let mut b = a.clone();
        b.flip_bit(0, 1);
        b.flip_bit(5, 7);
        b.flip_bit(5, 3);
        assert_eq!(a.bit_differences(&b), 3);
    }

    #[test]
    fn total_bits_accounts_for_precision() {
        let t = Tensor::zeros(&[10]);
        assert_eq!(QuantTensor::quantize(&t, Precision::Int4).total_bits(), 40);
        assert_eq!(QuantTensor::quantize(&t, Precision::Fp32).total_bits(), 320);
    }

    #[test]
    fn branchless_rounding_matches_f32_round_reference() {
        // The vectorizable quantize loop must be bit-identical to the
        // original `(v/scale).round().clamp(..) as i32` formulation,
        // including exact half-way points and boundary values.
        let mut values = vec![
            0.0f32,
            -0.0,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            0.49999997,
            -0.49999997,
            127.5,
            -127.5,
            126.5,
            -128.5,
            32767.5,
            -32768.5,
            1e-30,
            -1e-30,
        ];
        for i in 0..10_000 {
            let v = ((i as f32 * 0.7312) - 3650.0) * 1.37e-2;
            values.push(v);
            values.push(v + 0.5);
        }
        for p in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let q_max = p.q_max().unwrap() as f32;
            let q_min = p.q_min().unwrap() as f32;
            for &x in &values {
                let reference = x.round().clamp(q_min, q_max) as i32;
                let fast = round_half_away(x.clamp(q_min, q_max));
                assert_eq!(fast, reference, "{p} at x={x}");
            }
        }
    }

    #[test]
    fn total_bytes_rounds_up_for_odd_int4_lengths() {
        // 3 int4 values = 12 bits: the trailing nibble still occupies a byte.
        let t = Tensor::zeros(&[3]);
        assert_eq!(QuantTensor::quantize(&t, Precision::Int4).total_bytes(), 2);
        // 5 int4 values = 20 bits -> 3 bytes; even counts stay exact.
        let t5 = Tensor::zeros(&[5]);
        assert_eq!(QuantTensor::quantize(&t5, Precision::Int4).total_bytes(), 3);
        let t4 = Tensor::zeros(&[4]);
        assert_eq!(QuantTensor::quantize(&t4, Precision::Int4).total_bytes(), 2);
    }

    #[test]
    fn q_values_match_dequantized_values() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.0, 3.25], &[5]);
        for p in [Precision::Int4, Precision::Int8, Precision::Int16] {
            let q = QuantTensor::quantize(&t, p);
            let mut qs = Vec::new();
            q.q_values_into(&mut qs);
            assert_eq!(qs.len(), q.len());
            for (i, &qi) in qs.iter().enumerate() {
                assert_eq!(qi, q.q_value(i));
                assert_eq!(qi as f32 * q.scale(), q.value(i), "{p} element {i}");
            }
        }
    }

    #[test]
    fn dequantize_into_matches_dequantize() {
        let t = Tensor::from_vec(vec![0.1, -2.7, 1e-3, 3.5], &[4]);
        for p in Precision::all() {
            let q = QuantTensor::quantize(&t, p);
            let mut out = vec![0.0f32; 4];
            q.dequantize_into(&mut out);
            assert_eq!(out, q.dequantize().data(), "{p}");
        }
    }

    #[test]
    fn set_value_requantizes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 4.0], &[3]);
        let mut q = QuantTensor::quantize(&t, Precision::Int8);
        q.set_value(0, 0.0);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    fn set_and_get_bit_round_trip() {
        let t = Tensor::from_vec(vec![0.0; 4], &[4]);
        let mut q = QuantTensor::quantize(&t, Precision::Int16);
        q.set_bit(2, 5, true);
        assert!(q.get_bit(2, 5));
        q.set_bit(2, 5, false);
        assert!(!q.get_bit(2, 5));
    }
}
