//! Sparse corruption overlays over stored tensor words.
//!
//! A [`CorruptionOverlay`] is the compact delta between a clean stored bit
//! image and its corrupted form: an ascending list of
//! `(word index, xor mask)` pairs, one per *touched* word, plus the
//! statistics the corruption accumulated (bit flips from the error source,
//! values corrected by bounding logic). Because XOR is an involution,
//! applying the same overlay twice restores the original image exactly —
//! `apply ∘ revert` is the identity — so a persistent corrupted copy of a
//! network can be patched to a new fault draw and restored to clean in
//! O(touched words) instead of reloading every parameter.
//!
//! At the bit error rates EDEN operates at (1e-7..1e-3) only a tiny
//! fraction of weight bits ever flip, so an overlay is typically orders of
//! magnitude smaller than the image it describes. This is what turns the
//! per-sample fault-injection cost of the characterization, retraining and
//! tolerance-curve loops from O(total weights) into O(flips).
//!
//! The overlay itself is a pure data structure; the producers live in the
//! DRAM layer (`eden_dram`: error models, injectors, the simulated device)
//! and the consumers in the DNN layer (`eden_dnn`: network parameter and
//! native-weight patching).

use crate::quant::QuantTensor;

/// One sparse corruption delta: ascending `(word index, xor mask)` pairs
/// relative to a clean stored image of `values × bits` geometry. See the
/// [module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionOverlay {
    values: usize,
    bits: u32,
    /// Touched words, strictly ascending by word index; masks are non-zero
    /// and confined to the low `bits` bits of each word.
    deltas: Vec<(u32, u32)>,
    flips: u64,
    corrections: u64,
}

impl CorruptionOverlay {
    /// Creates an overlay from its parts.
    ///
    /// `deltas` must be strictly ascending by word index with every index
    /// `< values`; zero masks are allowed (a bounding correction can restore
    /// a word to its clean bits while still counting as a correction — such
    /// entries are dropped, only the counters keep them).
    pub fn new(
        values: usize,
        bits: u32,
        deltas: Vec<(u32, u32)>,
        flips: u64,
        corrections: u64,
    ) -> Self {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "overlay deltas must be strictly ascending"
        );
        debug_assert!(deltas.iter().all(|&(w, _)| (w as usize) < values));
        let deltas = if deltas.iter().any(|&(_, m)| m == 0) {
            deltas.into_iter().filter(|&(_, m)| m != 0).collect()
        } else {
            deltas
        };
        Self {
            values,
            bits,
            deltas,
            flips,
            corrections,
        }
    }

    /// An overlay that touches nothing (an error-free load).
    pub fn empty(values: usize, bits: u32) -> Self {
        Self {
            values,
            bits,
            deltas: Vec::new(),
            flips: 0,
            corrections: 0,
        }
    }

    /// The overlay turning `clean` into `corrupted`: one delta per differing
    /// word, with the flip counter set to the total number of differing bits.
    ///
    /// # Panics
    ///
    /// Panics if the two tensors differ in shape or precision.
    pub fn from_diff(clean: &QuantTensor, corrupted: &QuantTensor) -> Self {
        assert_eq!(clean.shape(), corrupted.shape(), "overlay diff shape");
        assert_eq!(
            clean.precision(),
            corrupted.precision(),
            "overlay diff precision"
        );
        let mut deltas = Vec::new();
        let mut flips = 0u64;
        for (i, (&a, &b)) in clean.stored().iter().zip(corrupted.stored()).enumerate() {
            let mask = a ^ b;
            if mask != 0 {
                deltas.push((i as u32, mask));
                flips += mask.count_ones() as u64;
            }
        }
        Self {
            values: clean.len(),
            bits: clean.bits_per_value(),
            deltas,
            flips,
            corrections: 0,
        }
    }

    /// Element count of the image the overlay applies to.
    pub fn values(&self) -> usize {
        self.values
    }

    /// Bits per stored value of the image the overlay applies to.
    pub fn bits_per_value(&self) -> u32 {
        self.bits
    }

    /// The touched words: strictly ascending `(word index, xor mask)` pairs.
    pub fn deltas(&self) -> &[(u32, u32)] {
        &self.deltas
    }

    /// Number of touched words.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the overlay touches no word.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Whether the overlay is the identity in every observable way: it
    /// touches no word **and** recorded no flips or corrections. Stricter
    /// than [`CorruptionOverlay::is_empty`], which only checks the deltas —
    /// a bounding pass can correct a value back to its clean bits, leaving
    /// an empty delta list with a nonzero correction count, and such a load
    /// still perturbs downstream statistics. A clean overlay is the
    /// certificate that a load left both the data and the stats untouched,
    /// which is what lets incremental re-evaluation skip the layer it feeds.
    pub fn is_clean(&self) -> bool {
        self.deltas.is_empty() && self.flips == 0 && self.corrections == 0
    }

    /// Bits flipped by the error source while producing this overlay.
    pub fn bit_flips(&self) -> u64 {
        self.flips
    }

    /// Values corrected by bounding logic while producing this overlay.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// XORs the overlay into a stored image. Applying a second time restores
    /// the image ([`CorruptionOverlay::revert`]).
    ///
    /// # Panics
    ///
    /// Panics if the tensor geometry does not match the overlay's.
    pub fn apply(&self, tensor: &mut QuantTensor) {
        assert_eq!(tensor.len(), self.values, "overlay geometry (values)");
        assert_eq!(
            tensor.bits_per_value(),
            self.bits,
            "overlay geometry (bits)"
        );
        let stored = tensor.stored_mut();
        for &(w, m) in &self.deltas {
            stored[w as usize] ^= m;
        }
    }

    /// Undoes a previous [`CorruptionOverlay::apply`]. XOR is an involution,
    /// so this is the same operation; the distinct name keeps call sites
    /// readable.
    pub fn revert(&self, tensor: &mut QuantTensor) {
        self.apply(tensor);
    }

    /// Iterates the stored words a patch pass writes against `clean`: per
    /// touched word, `(index, clean bits ^ mask)` when applying and
    /// `(index, clean bits)` when reverting. This is **the** word formula of
    /// every overlay consumer (f32 parameter buffers, native integer
    /// weights, fallback networks), shared here so apply and revert can
    /// never drift apart.
    ///
    /// # Panics
    ///
    /// Panics (on iteration) if the overlay indexes past `clean`'s length.
    pub fn patched_words<'a>(
        &'a self,
        clean: &'a QuantTensor,
        apply: bool,
    ) -> impl Iterator<Item = (usize, u32)> + 'a {
        self.deltas.iter().map(move |&(w, m)| {
            let i = w as usize;
            (i, clean.stored_bits(i) ^ if apply { m } else { 0 })
        })
    }

    /// Merges another overlay over the same image into this one, XOR-combining
    /// masks on shared words and summing the counters — the composition rule
    /// for multi-module mappings where each DRAM partition holding a slice of
    /// a data type contributes an independent overlay.
    ///
    /// # Panics
    ///
    /// Panics if the two overlays describe different image geometries.
    pub fn merge(&mut self, other: &CorruptionOverlay) {
        assert_eq!(self.values, other.values, "overlay merge geometry (values)");
        assert_eq!(self.bits, other.bits, "overlay merge geometry (bits)");
        let mut merged = Vec::with_capacity(self.deltas.len() + other.deltas.len());
        let (mut a, mut b) = (
            self.deltas.iter().peekable(),
            other.deltas.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(wa, ma)), Some(&&(wb, mb))) => {
                    if wa < wb {
                        merged.push((wa, ma));
                        a.next();
                    } else if wb < wa {
                        merged.push((wb, mb));
                        b.next();
                    } else {
                        if ma ^ mb != 0 {
                            merged.push((wa, ma ^ mb));
                        }
                        a.next();
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        self.deltas = merged;
        self.flips += other.flips;
        self.corrections += other.corrections;
    }

    /// The same deltas re-indexed into a larger image: word `w` of this
    /// overlay becomes word `offset + w` of an image with `values` elements.
    /// This is the lift that embeds a per-span overlay — produced against a
    /// [`crate::quant::QuantTensor::slice_values`] slice of a data type's
    /// stored words — back into the full image before composition with
    /// [`CorruptionOverlay::merge`].
    ///
    /// # Panics
    ///
    /// Panics if the shifted span does not fit the target geometry.
    pub fn lifted(&self, offset: usize, values: usize) -> CorruptionOverlay {
        assert!(
            offset
                .checked_add(self.values)
                .is_some_and(|end| end <= values),
            "lifted overlay out of bounds: offset {offset} + span {} > {values}",
            self.values
        );
        CorruptionOverlay {
            values,
            bits: self.bits,
            deltas: self
                .deltas
                .iter()
                .map(|&(w, m)| (w + offset as u32, m))
                .collect(),
            flips: self.flips,
            corrections: self.corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Precision;
    use crate::tensor::Tensor;

    fn stored(n: usize, precision: Precision) -> QuantTensor {
        let t = Tensor::from_vec((0..n).map(|i| (i as f32 * 0.21).sin()).collect(), &[n]);
        QuantTensor::quantize(&t, precision)
    }

    #[test]
    fn apply_then_revert_is_the_identity() {
        for precision in Precision::all() {
            let clean = stored(257, precision);
            let mask_limit = if precision.bits() == 32 {
                u32::MAX
            } else {
                (1u32 << precision.bits()) - 1
            };
            let deltas: Vec<(u32, u32)> = (0..257u32)
                .step_by(7)
                .map(|w| (w, (w.wrapping_mul(2654435761) & mask_limit).max(1)))
                .collect();
            let overlay = CorruptionOverlay::new(257, precision.bits(), deltas, 10, 2);
            let mut t = clean.clone();
            overlay.apply(&mut t);
            assert_ne!(t, clean, "{precision}: overlay must change the image");
            overlay.revert(&mut t);
            assert_eq!(t, clean, "{precision}: apply∘revert must be identity");
        }
    }

    #[test]
    fn from_diff_reconstructs_the_corruption() {
        let clean = stored(500, Precision::Int8);
        let mut corrupted = clean.clone();
        corrupted.flip_bit(3, 1);
        corrupted.flip_bit(3, 6);
        corrupted.flip_bit(499, 0);
        let overlay = CorruptionOverlay::from_diff(&clean, &corrupted);
        assert_eq!(overlay.len(), 2);
        assert_eq!(overlay.bit_flips(), 3);
        let mut patched = clean.clone();
        overlay.apply(&mut patched);
        assert_eq!(patched, corrupted);
    }

    #[test]
    fn zero_masks_are_dropped_but_counters_kept() {
        let overlay = CorruptionOverlay::new(8, 8, vec![(1, 0), (2, 0b11), (5, 0)], 2, 3);
        assert_eq!(overlay.deltas(), &[(2, 0b11)]);
        assert_eq!(overlay.bit_flips(), 2);
        assert_eq!(overlay.corrections(), 3);
    }

    #[test]
    fn merge_xors_shared_words_and_sums_counters() {
        let mut a = CorruptionOverlay::new(16, 8, vec![(1, 0b01), (4, 0b10)], 2, 0);
        let b = CorruptionOverlay::new(16, 8, vec![(2, 0b100), (4, 0b10)], 2, 1);
        a.merge(&b);
        // Word 4 cancels (same mask twice), words 1 and 2 survive.
        assert_eq!(a.deltas(), &[(1, 0b01), (2, 0b100)]);
        assert_eq!(a.bit_flips(), 4);
        assert_eq!(a.corrections(), 1);
        // Merging two independent overlays applies like applying both.
        let clean = stored(16, Precision::Int8);
        let x = CorruptionOverlay::new(16, 8, vec![(0, 0b1)], 1, 0);
        let y = CorruptionOverlay::new(16, 8, vec![(7, 0b1000)], 1, 0);
        let mut seq = clean.clone();
        x.apply(&mut seq);
        y.apply(&mut seq);
        let mut both = x.clone();
        both.merge(&y);
        let mut merged = clean.clone();
        both.apply(&mut merged);
        assert_eq!(seq, merged);
    }

    #[test]
    fn lifted_offsets_word_indices_into_the_larger_image() {
        let o = CorruptionOverlay::new(4, 8, vec![(0, 1), (3, 2)], 2, 1);
        let l = o.lifted(5, 16);
        assert_eq!(l.values(), 16);
        assert_eq!(l.deltas(), &[(5, 1), (8, 2)]);
        assert_eq!(l.bit_flips(), 2);
        assert_eq!(l.corrections(), 1);
        // Lifting a slice's diff equals diffing the slice in place.
        let clean = stored(32, Precision::Int8);
        let slice = clean.slice_values(10..20);
        let mut corrupted_slice = slice.clone();
        corrupted_slice.flip_bit(2, 3);
        corrupted_slice.flip_bit(9, 0);
        let lifted = CorruptionOverlay::from_diff(&slice, &corrupted_slice).lifted(10, 32);
        let mut patched = clean.clone();
        lifted.apply(&mut patched);
        assert_eq!(patched.stored_bits(12), clean.stored_bits(12) ^ 0b1000);
        assert_eq!(patched.stored_bits(19), clean.stored_bits(19) ^ 1);
    }

    #[test]
    #[should_panic]
    fn lifted_rejects_spans_that_do_not_fit() {
        let _ = CorruptionOverlay::empty(8, 8).lifted(9, 16);
    }

    #[test]
    fn empty_overlay_touches_nothing() {
        let clean = stored(64, Precision::Int4);
        let overlay = CorruptionOverlay::empty(64, 4);
        assert!(overlay.is_empty());
        let mut t = clean.clone();
        overlay.apply(&mut t);
        assert_eq!(t, clean);
    }

    #[test]
    fn is_clean_requires_empty_deltas_and_zero_counters() {
        assert!(CorruptionOverlay::empty(8, 8).is_clean());
        // A correction that restored the clean bits: empty deltas, but the
        // load still perturbed the stats — not clean.
        let corrected = CorruptionOverlay::new(8, 8, vec![(1, 0)], 0, 1);
        assert!(corrected.is_empty() && !corrected.is_clean());
        let flipped = CorruptionOverlay::new(8, 8, vec![(2, 0b1)], 1, 0);
        assert!(!flipped.is_clean());
    }
}
