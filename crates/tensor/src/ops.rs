//! Neural-network operators (forward and backward).
//!
//! All operators work on the dense [`Tensor`] type. Convolution tensors use
//! the `[channels, height, width]` (CHW) layout for single samples and
//! `[batch, channels, height, width]` (NCHW) for batches where noted.

use crate::simd::{self, Kernels};
use crate::tensor::Tensor;

/// Row count of the A-panel processed per GEMM block.
const GEMM_MC: usize = 64;
/// Depth (shared dimension) processed per GEMM block. A `GEMM_MC × GEMM_KC`
/// panel of A is ~64 KB, comfortably inside L2 alongside the streamed B rows.
const GEMM_KC: usize = 256;

/// Cache-blocked dense matrix multiply-accumulate over raw slices:
/// `out (m×n) += a (m×k) · b (k×n)`, all row-major.
///
/// This is the shared kernel behind [`matmul`], [`conv2d`] (via
/// [`im2col`]) and the dense layers. Blocking reorders *which* output rows
/// are touched when, but every output element still accumulates its `k`
/// contributions in ascending-`p` order, so results are independent of the
/// block sizes and bit-identical to a naive triple loop — with one caveat:
/// terms whose **lhs** entry is exactly `0.0` are skipped (a sparsity win
/// for pruned weights). For finite rhs values a skipped `0.0 * b` term is
/// exact; only `0.0 × (NaN/±Inf)` products, which a naive nest would
/// propagate as NaN, differ.
///
/// # Panics
///
/// Panics if a slice is shorter than its `m`/`k`/`n` geometry requires.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_with(simd::kernels(), m, k, n, a, b, out);
}

/// [`gemm`] against an explicit kernel table — lets parity tests and
/// benchmarks pin a specific ISA level instead of the process-wide one.
pub fn gemm_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert!(a.len() >= m * k, "gemm: lhs slice too short");
    assert!(b.len() >= k * n, "gemm: rhs slice too short");
    assert!(out.len() >= m * n, "gemm: out slice too short");
    // The row update `out_row += av * b_row` is element-wise independent, so
    // the dispatched SIMD form (separate multiply and add, no FMA) preserves
    // each output element's k-ascending accumulation chain bit for bit.
    for kk in (0..k).step_by(GEMM_KC) {
        let k_end = (kk + GEMM_KC).min(k);
        for ii in (0..m).step_by(GEMM_MC) {
            let i_end = (ii + GEMM_MC).min(m);
            for i in ii..i_end {
                let arow = &a[i * k..i * k + k];
                let orow = &mut out[i * n..i * n + n];
                for p in kk..k_end {
                    let av = arow[p];
                    if av == 0.0 {
                        continue;
                    }
                    (kr.axpy_f32)(av, &b[p * n..p * n + n], orow);
                }
            }
        }
    }
}

/// Shared body of the integer GEMM kernels: same cache blocking as [`gemm`],
/// accumulating `out (m×n) += a (m×k) · b (k×n)` over sign-extended quantized
/// operands. Integer addition is associative, so (unlike the f32 kernel) the
/// result is independent of accumulation order by construction; the inner
/// loop is branchless, which lets it vectorize better than the
/// sparsity-skipping f32 nest.
fn gemm_int_impl<T>(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [T])
where
    T: Copy + From<i32> + std::ops::AddAssign + std::ops::Mul<Output = T>,
{
    assert!(a.len() >= m * k, "integer gemm: lhs slice too short");
    assert!(b.len() >= k * n, "integer gemm: rhs slice too short");
    assert!(out.len() >= m * n, "integer gemm: out slice too short");
    for kk in (0..k).step_by(GEMM_KC) {
        let k_end = (kk + GEMM_KC).min(k);
        for ii in (0..m).step_by(GEMM_MC) {
            let i_end = (ii + GEMM_MC).min(m);
            for i in ii..i_end {
                let arow = &a[i * k..i * k + k];
                let orow = &mut out[i * n..i * n + n];
                for p in kk..k_end {
                    let av = T::from(arow[p]);
                    let brow = &b[p * n..p * n + n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * T::from(bv);
                    }
                }
            }
        }
    }
}

/// Integer GEMM with **i32 accumulation**: `out (m×n) += a (m×k) · b (k×n)`.
///
/// This is the native quantized-inference kernel for int4/int8 operands. The
/// caller guarantees no overflow: with `|a|, |b| ≤ Q` every accumulator stays
/// within `k · Q²`, so int8 (`Q = 128`) is safe for any `k ≤ 2¹⁷` and int4
/// for any practical `k`. Use [`gemm_i64`] for int16 operands, whose products
/// alone reach 2³⁰.
///
/// The row update dispatches to the active SIMD level (see [`crate::simd`]);
/// integer addition is associative, so every level is bit-identical.
pub fn gemm_i32(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i32]) {
    gemm_i32_with(simd::kernels(), m, k, n, a, b, out);
}

/// [`gemm_i32`] against an explicit kernel table — lets parity tests and
/// benchmarks pin a specific ISA level instead of the process-wide one.
pub fn gemm_i32_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "integer gemm: lhs slice too short");
    assert!(b.len() >= k * n, "integer gemm: rhs slice too short");
    assert!(out.len() >= m * n, "integer gemm: out slice too short");
    for kk in (0..k).step_by(GEMM_KC) {
        let k_end = (kk + GEMM_KC).min(k);
        for ii in (0..m).step_by(GEMM_MC) {
            let i_end = (ii + GEMM_MC).min(m);
            for i in ii..i_end {
                let arow = &a[i * k..i * k + k];
                let orow = &mut out[i * n..i * n + n];
                for p in kk..k_end {
                    (kr.axpy_i32)(arow[p], &b[p * n..p * n + n], orow);
                }
            }
        }
    }
}

/// Integer GEMM with **i64 accumulation** — the overflow-proof variant used
/// for int16 operands (and any shape where `k · Q²` could exceed `i32`).
pub fn gemm_i64(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i64]) {
    gemm_int_impl::<i64>(m, k, n, a, b, out);
}

/// Shared body of the integer matrix–vector kernels:
/// `out (m) += a (m×k) · x (k)`.
///
/// A dense layer applied to one sample is a GEMM with `n = 1`; a dedicated
/// kernel avoids the blocked GEMM's per-column overhead on that degenerate
/// shape.
fn matvec_int_impl<T>(m: usize, k: usize, a: &[i32], x: &[i32], out: &mut [T])
where
    T: Copy + From<i32> + std::ops::AddAssign + std::ops::Mul<Output = T>,
{
    assert!(a.len() >= m * k, "integer matvec: matrix slice too short");
    assert!(x.len() >= k, "integer matvec: vector slice too short");
    assert!(out.len() >= m, "integer matvec: out slice too short");
    for (o, arow) in out.iter_mut().zip(a.chunks_exact(k)) {
        let mut acc = *o;
        for (&av, &xv) in arow.iter().zip(x) {
            acc += T::from(av) * T::from(xv);
        }
        *o = acc;
    }
}

/// Integer matrix–vector product with i32 accumulation (int4/int8 operands;
/// see [`gemm_i32`] for the overflow contract).
pub fn matvec_i32(m: usize, k: usize, a: &[i32], x: &[i32], out: &mut [i32]) {
    matvec_i32_with(simd::kernels(), m, k, a, x, out);
}

/// [`matvec_i32`] against an explicit kernel table.
pub fn matvec_i32_with(kr: &Kernels, m: usize, k: usize, a: &[i32], x: &[i32], out: &mut [i32]) {
    assert!(a.len() >= m * k, "integer matvec: matrix slice too short");
    assert!(x.len() >= k, "integer matvec: vector slice too short");
    assert!(out.len() >= m, "integer matvec: out slice too short");
    for (o, arow) in out.iter_mut().zip(a.chunks_exact(k)).take(m) {
        *o += (kr.dot_i32)(arow, &x[..k]);
    }
}

/// Integer matrix–vector product with i64 accumulation (int16 operands).
pub fn matvec_i64(m: usize, k: usize, a: &[i32], x: &[i32], out: &mut [i64]) {
    matvec_int_impl::<i64>(m, k, a, x, out);
}

/// Dot-structured integer GEMM over i16 operands with i32 accumulation:
/// `out[i·n + j] += Σ_p a[i·k + p] · bt[j·k + p]` — note `bt` is the rhs in
/// **transposed** (`n×k`, row-major) layout, so every output element is one
/// contiguous widening-dot reduction over both operands. The kernel walks
/// 2×2 output blocks ([`crate::simd::Kernels::dot4_i16`]) so every loaded
/// operand vector is used twice, and dispatches to the widest `pmaddwd`
/// family the CPU offers (SSE2 `_mm_madd_epi16` → AVX2 `_mm256_madd_epi16`
/// → AVX-512 `_mm512_madd_epi16`; see [`crate::simd`]). Integer addition is
/// associative, so every level produces exactly the scalar result.
///
/// Overflow contract as [`gemm_i32`]: safe for int4/int8 operands at any
/// practical depth; int16 operands must use [`gemm_i64`].
pub fn gemm_dot_i16(m: usize, k: usize, n: usize, a: &[i16], bt: &[i16], out: &mut [i32]) {
    gemm_dot_i16_with(simd::kernels(), m, k, n, a, bt, out);
}

/// [`gemm_dot_i16`] against an explicit kernel table — lets parity tests
/// and benchmarks pin a specific ISA level instead of the process-wide one.
pub fn gemm_dot_i16_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    bt: &[i16],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "gemm_dot_i16: lhs slice too short");
    assert!(bt.len() >= n * k, "gemm_dot_i16: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_dot_i16: out slice too short");
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let (s00, s01, s10, s11) = (kr.dot4_i16)(a0, a1, b0, b1);
            out[i * n + j] += s00;
            out[i * n + j + 1] += s01;
            out[(i + 1) * n + j] += s10;
            out[(i + 1) * n + j + 1] += s11;
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out[i * n + j] += (kr.dot_i16)(a0, b0);
            out[(i + 1) * n + j] += (kr.dot_i16)(a1, b0);
        }
        i += 2;
    }
    if i < m {
        let a0 = &a[i * k..(i + 1) * k];
        for (o, brow) in out[i * n..i * n + n].iter_mut().zip(bt.chunks_exact(k)) {
            *o += (kr.dot_i16)(a0, brow);
        }
    }
}

/// Integer matrix–vector product over i16 operands with i32 accumulation
/// (`out[i] += Σ_p a[i·k + p] · x[p]`) — the dense-layer variant of
/// [`gemm_dot_i16`].
pub fn matvec_i16(m: usize, k: usize, a: &[i16], x: &[i16], out: &mut [i32]) {
    matvec_i16_with(simd::kernels(), m, k, a, x, out);
}

/// [`matvec_i16`] against an explicit kernel table.
pub fn matvec_i16_with(kr: &Kernels, m: usize, k: usize, a: &[i16], x: &[i16], out: &mut [i32]) {
    assert!(a.len() >= m * k, "matvec_i16: matrix slice too short");
    assert!(x.len() >= k, "matvec_i16: vector slice too short");
    assert!(out.len() >= m, "matvec_i16: out slice too short");
    for (o, arow) in out.iter_mut().zip(a.chunks_exact(k)).take(m) {
        *o += (kr.dot_i16)(arow, &x[..k]);
    }
}

/// Dot-structured integer GEMM over **i8** operands with i32 accumulation —
/// the int4/int8 production path. Same transposed-rhs layout and 2×2 output
/// blocking as [`gemm_dot_i16`], but operands stay in one byte per value,
/// halving memory traffic. The kernels sign-extend on load (`vpmovsxbw`)
/// and reuse the `pmaddwd` multiply–add, which is exact over the full
/// corrupted domain `[-128, 127]` — unlike the classic `pmaddubsw`
/// sign-trick, which wraps at `(-128)·(-128)` (see [`crate::simd`]).
///
/// Overflow contract as [`gemm_i32`].
pub fn gemm_dot_i8(m: usize, k: usize, n: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    gemm_dot_i8_with(simd::kernels(), m, k, n, a, bt, out);
}

/// [`gemm_dot_i8`] against an explicit kernel table.
pub fn gemm_dot_i8_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "gemm_dot_i8: lhs slice too short");
    assert!(bt.len() >= n * k, "gemm_dot_i8: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_dot_i8: out slice too short");
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let (s00, s01, s10, s11) = (kr.dot4_i8)(a0, a1, b0, b1);
            out[i * n + j] += s00;
            out[i * n + j + 1] += s01;
            out[(i + 1) * n + j] += s10;
            out[(i + 1) * n + j + 1] += s11;
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out[i * n + j] += (kr.dot_i8)(a0, b0);
            out[(i + 1) * n + j] += (kr.dot_i8)(a1, b0);
        }
        i += 2;
    }
    if i < m {
        let a0 = &a[i * k..(i + 1) * k];
        for (o, brow) in out[i * n..i * n + n].iter_mut().zip(bt.chunks_exact(k)) {
            *o += (kr.dot_i8)(a0, brow);
        }
    }
}

/// Integer matrix–vector product over i8 operands with i32 accumulation —
/// the dense-layer variant of [`gemm_dot_i8`].
pub fn matvec_i8(m: usize, k: usize, a: &[i8], x: &[i8], out: &mut [i32]) {
    matvec_i8_with(simd::kernels(), m, k, a, x, out);
}

/// [`matvec_i8`] against an explicit kernel table.
pub fn matvec_i8_with(kr: &Kernels, m: usize, k: usize, a: &[i8], x: &[i8], out: &mut [i32]) {
    assert!(a.len() >= m * k, "matvec_i8: matrix slice too short");
    assert!(x.len() >= k, "matvec_i8: vector slice too short");
    assert!(out.len() >= m, "matvec_i8: out slice too short");
    for (o, arow) in out.iter_mut().zip(a.chunks_exact(k)).take(m) {
        *o += (kr.dot_i8)(arow, &x[..k]);
    }
}

/// Output-row block of the batched GEMM entry points. The block geometry is
/// a fixed function of the shape — never of the thread count — so a batched
/// GEMM computes bit-identical results on any pool size (each output row's
/// accumulation chain is independent of every other row's). Kept even so the
/// dot-structured kernels' 2×2 row pairing never straddles a block boundary.
const GEMM_PAR_ROWS: usize = 16;

/// Minimum multiply–accumulate count (`m·k·n`) before a batched GEMM entry
/// point fans its row blocks out across the [`eden_par`] pool; smaller
/// problems run inline, where the scope overhead would dominate.
const GEMM_PAR_MIN_MACS: usize = 1 << 20;

/// The row-block size for an `m×k×n` batched GEMM: the whole matrix (one
/// inline block) below the parallel threshold, [`GEMM_PAR_ROWS`] above it.
fn gemm_par_rows(m: usize, k: usize, n: usize) -> usize {
    if m * k * n < GEMM_PAR_MIN_MACS {
        m
    } else {
        GEMM_PAR_ROWS
    }
}

/// Batched f32 GEMM `out (m×n) += a (m×k) · b (k×n)` whose B matrix packs a
/// whole batch of activation columns: identical accumulation semantics to
/// [`gemm`] (each output element's `k` terms in ascending order, no FMA,
/// exact-`0.0` lhs terms skipped), with the output rows split into
/// fixed-geometry blocks that run on the [`eden_par`] pool. Bit-identical to
/// [`gemm`] at every thread count.
pub fn gemm_batch(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_batch_with(simd::kernels(), m, k, n, a, b, out);
}

/// [`gemm_batch`] against an explicit kernel table.
pub fn gemm_batch_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert!(a.len() >= m * k, "gemm_batch: lhs slice too short");
    assert!(b.len() >= k * n, "gemm_batch: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_batch: out slice too short");
    if m == 0 || n == 0 {
        return;
    }
    let rows = gemm_par_rows(m, k, n);
    eden_par::par_map_chunks_mut(&mut out[..m * n], rows * n, |bi, chunk| {
        let r0 = bi * rows;
        let rc = chunk.len() / n;
        gemm_with(kr, rc, k, n, &a[r0 * k..(r0 + rc) * k], b, chunk);
    });
}

/// Batched integer GEMM with i32 accumulation — the multi-sample form of
/// [`gemm_i32`], row-blocked across the [`eden_par`] pool. Integer addition
/// is associative, so the split is exact by construction.
pub fn gemm_i32_batch(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i32]) {
    gemm_i32_batch_with(simd::kernels(), m, k, n, a, b, out);
}

/// [`gemm_i32_batch`] against an explicit kernel table.
pub fn gemm_i32_batch_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "gemm_i32_batch: lhs slice too short");
    assert!(b.len() >= k * n, "gemm_i32_batch: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_i32_batch: out slice too short");
    if m == 0 || n == 0 {
        return;
    }
    let rows = gemm_par_rows(m, k, n);
    eden_par::par_map_chunks_mut(&mut out[..m * n], rows * n, |bi, chunk| {
        let r0 = bi * rows;
        let rc = chunk.len() / n;
        gemm_i32_with(kr, rc, k, n, &a[r0 * k..(r0 + rc) * k], b, chunk);
    });
}

/// Batched integer GEMM with i64 accumulation — the multi-sample form of
/// [`gemm_i64`] (int16 operands), row-blocked across the [`eden_par`] pool.
pub fn gemm_i64_batch(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i64]) {
    assert!(a.len() >= m * k, "gemm_i64_batch: lhs slice too short");
    assert!(b.len() >= k * n, "gemm_i64_batch: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_i64_batch: out slice too short");
    if m == 0 || n == 0 {
        return;
    }
    let rows = gemm_par_rows(m, k, n);
    eden_par::par_map_chunks_mut(&mut out[..m * n], rows * n, |bi, chunk| {
        let r0 = bi * rows;
        let rc = chunk.len() / n;
        gemm_i64(rc, k, n, &a[r0 * k..(r0 + rc) * k], b, chunk);
    });
}

/// Row stride (in i8 lanes) of the k-padded panel layout consumed by
/// [`gemm_i8_packed`]: the reduction depth rounded up to a whole number of
/// 64-byte kernel chunks. Packing rows at this stride (zero-filling the pad
/// — exact, since `0·x` contributes nothing to an integer sum) keeps every
/// SIMD lane of the panel kernels full and the scalar tails unreachable.
pub const fn packed_stride_i8(k: usize) -> usize {
    (k + 63) & !63
}

/// Blocked i8 GEMM over a k-padded packed operand pair: `a` holds `m` rows
/// of `k` lanes (the caller zero-pads real rows up to `k` =
/// [`packed_stride_i8`] of the true depth), `bt` the transposed rhs in the
/// same row form, and one [`crate::simd::Kernels::gemm2_i8`] call covers an
/// entire row pair — the per-tile dispatch overhead and per-call scalar
/// tails of [`gemm_dot_i8_batch`] disappear. Row-blocked across the
/// [`eden_par`] pool with fixed geometry; integer accumulation makes the
/// split exact at any thread count.
pub fn gemm_i8_packed(m: usize, k: usize, n: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    gemm_i8_packed_with(simd::kernels(), m, k, n, a, bt, out);
}

/// [`gemm_i8_packed`] against an explicit kernel table.
pub fn gemm_i8_packed_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "gemm_i8_packed: lhs slice too short");
    assert!(bt.len() >= n * k, "gemm_i8_packed: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_i8_packed: out slice too short");
    if m == 0 || n == 0 {
        return;
    }
    let rows = gemm_par_rows(m, k, n);
    eden_par::par_map_chunks_mut(&mut out[..m * n], rows * n, |bi, chunk| {
        let r0 = bi * rows;
        let rc = chunk.len() / n;
        let a = &a[r0 * k..(r0 + rc) * k];
        let mut i = 0;
        while i + 2 <= rc {
            let (o0, rest) = chunk[i * n..].split_at_mut(n);
            (kr.gemm2_i8)(
                &a[i * k..(i + 1) * k],
                &a[(i + 1) * k..(i + 2) * k],
                bt,
                k,
                o0,
                &mut rest[..n],
            );
            i += 2;
        }
        if i < rc {
            let arow = &a[i * k..(i + 1) * k];
            for (o, brow) in chunk[i * n..i * n + n].iter_mut().zip(bt.chunks_exact(k)) {
                *o += (kr.dot_i8)(arow, brow);
            }
        }
    });
}

/// Batched dot-structured i8 GEMM — the multi-sample form of
/// [`gemm_dot_i8`] (transposed `n×k` rhs packing a whole batch of patch
/// rows), row-blocked across the [`eden_par`] pool.
pub fn gemm_dot_i8_batch(m: usize, k: usize, n: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    gemm_dot_i8_batch_with(simd::kernels(), m, k, n, a, bt, out);
}

/// [`gemm_dot_i8_batch`] against an explicit kernel table.
pub fn gemm_dot_i8_batch_with(
    kr: &Kernels,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
) {
    assert!(a.len() >= m * k, "gemm_dot_i8_batch: lhs slice too short");
    assert!(bt.len() >= n * k, "gemm_dot_i8_batch: rhs slice too short");
    assert!(out.len() >= m * n, "gemm_dot_i8_batch: out slice too short");
    if m == 0 || n == 0 {
        return;
    }
    let rows = gemm_par_rows(m, k, n);
    eden_par::par_map_chunks_mut(&mut out[..m * n], rows * n, |bi, chunk| {
        let r0 = bi * rows;
        let rc = chunk.len() / n;
        gemm_dot_i8_with(kr, rc, k, n, &a[r0 * k..(r0 + rc) * k], bt, chunk);
    });
}

/// Matrix multiplication `a (m×k) * b (k×n) -> (m×n)`, backed by [`gemm`].
///
/// # Panics
///
/// Panics if the inner dimensions do not agree or inputs are not rank-2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank 2");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm(m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Transposes an `m×n` row-major slice into `out` (`n×m`).
fn transpose_into(m: usize, n: usize, src: &[f32], out: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = src[i * n + j];
        }
    }
}

/// Transposes a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(m, n, a.data(), &mut out);
    Tensor::from_vec(out, &[n, m])
}

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dParams {
    /// Convenience constructor.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input spatial size.
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unrolls a `[in_c, h, w]` input into the im2col patch matrix
/// `[in_c·k·k, oh·ow]`: row `(ic·k + ky)·k + kx`, column `oy·ow + ox` holds
/// the input pixel the kernel tap `(ic, ky, kx)` sees at output position
/// `(oy, ox)` (zero where the tap falls into the padding).
///
/// With this layout a convolution is one GEMM: `W [out_c × in_c·k²] · cols`.
pub fn im2col(input: &Tensor, p: Conv2dParams) -> Tensor {
    let (in_c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    let id = input.data();
    let mut cols = vec![0.0f32; in_c * k * k * oh * ow];
    for ic in 0..in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let dst = &mut cols[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row =
                        &id[ic * h * w + iy as usize * w..ic * h * w + (iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = src_row[ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(cols, &[in_c * k * k, oh * ow])
}

/// Integer variant of [`im2col`] over a raw sign-extended `[in_c, h, w]`
/// slice, writing the `[in_c·k·k, oh·ow]` patch matrix into `cols` (cleared
/// and resized — callers reuse the buffer across layers and samples). Padding
/// taps are zero, matching the f32 lowering exactly.
pub fn im2col_i32(
    input: &[i32],
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i32>,
) {
    assert!(input.len() >= in_c * h * w, "im2col_i32: input too short");
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    cols.clear();
    cols.resize(in_c * k * k * oh * ow, 0);
    for ic in 0..in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let dst = &mut cols[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row =
                        &input[ic * h * w + iy as usize * w..ic * h * w + (iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = src_row[ix as usize];
                    }
                }
            }
        }
    }
}

/// Transposed integer im2col over a raw sign-extended `[in_c, h, w]` slice:
/// writes the **patch-major** `[oh·ow, in_c·k·k]` matrix into `cols`
/// (cleared and resized), i.e. the transpose of [`im2col_i32`]'s layout.
/// Row `oy·ow + ox` holds the full receptive-field patch of output position
/// `(oy, ox)` contiguously, which is exactly the rhs layout
/// [`gemm_dot_i16`] wants.
pub fn im2col_i16_t(
    input: &[i16],
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i16>,
) {
    im2col_t_with(|i| input[i], input.len(), in_c, h, w, p, cols);
}

/// [`im2col_i16_t`] reading directly from the raw stored words of a
/// quantized tensor, sign-extending on the fly — fuses the sign-extend pass
/// into the patch gather so the native conv path never materializes the
/// activation integers.
pub fn im2col_i16_t_stored(
    stored: &[u32],
    bits: u32,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i16>,
) {
    im2col_t_with(
        |i| crate::bits::sign_extend(stored[i], bits) as i16,
        stored.len(),
        in_c,
        h,
        w,
        p,
        cols,
    );
}

/// i8 variant of [`im2col_i16_t`] — the patch matrix in the one-byte operand
/// form [`gemm_dot_i8`] wants. Only valid for values that fit i8 (int4/int8
/// precisions).
pub fn im2col_i8_t(
    input: &[i8],
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i8>,
) {
    im2col_t_with(|i| input[i], input.len(), in_c, h, w, p, cols);
}

/// [`im2col_i8_t`] reading directly from the raw stored words of a quantized
/// tensor, sign-extending on the fly (cf. [`im2col_i16_t_stored`]). `bits`
/// must be ≤ 8 so every sign-extended value fits i8.
pub fn im2col_i8_t_stored(
    stored: &[u32],
    bits: u32,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i8>,
) {
    assert!(bits <= 8, "im2col_i8_t_stored: {bits}-bit values exceed i8");
    im2col_t_with(
        |i| crate::bits::sign_extend(stored[i], bits) as i8,
        stored.len(),
        in_c,
        h,
        w,
        p,
        cols,
    );
}

/// [`im2col_i8_t_stored`] writing into a caller-provided sub-slice instead of
/// resizing a buffer: fills the `[oh·ow, in_c·k·k]` patch matrix of one
/// sample at `cols[..oh·ow·ck]`. Batched conv packs one such block per
/// sample, back to back, to form the transposed rhs of
/// [`gemm_dot_i8_batch`]. The slice must be pre-zeroed (padding taps are
/// left untouched, exactly like the resizing variants).
pub fn im2col_i8_t_stored_into(
    stored: &[u32],
    bits: u32,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut [i8],
) {
    assert!(
        bits <= 8,
        "im2col_i8_t_stored_into: {bits}-bit values exceed i8"
    );
    im2col_t_into_with(
        |i| crate::bits::sign_extend(stored[i], bits) as i8,
        stored.len(),
        in_c,
        h,
        w,
        p,
        cols,
    );
}

/// [`im2col_i8_t_stored_into`] writing each patch row at `row_stride` ≥
/// `in_c·k·k` — the k-padded panel form [`gemm_i8_packed`] consumes — and
/// gathering from a byte image instead of per-tap stored-word reads: the
/// stored words are sign-extended **once** into `vals` (O(values) instead of
/// O(taps), and taps outnumber values by the kernel footprint), then every
/// in-bounds kernel row becomes one contiguous byte copy. `cols` must be
/// pre-zeroed; padding taps and pad lanes are left untouched, so the first
/// `in_c·k·k` lanes of each row match [`im2col_i8_t_stored_into`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn im2col_i8_t_stored_strided(
    stored: &[u32],
    bits: u32,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    row_stride: usize,
    vals: &mut Vec<i8>,
    cols: &mut [i8],
) {
    assert!(
        bits <= 8,
        "im2col_i8_t_stored_strided: {bits}-bit values exceed i8"
    );
    assert!(
        stored.len() >= in_c * h * w,
        "im2col_i8_t_stored_strided: input too short"
    );
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    let ck = in_c * k * k;
    assert!(
        row_stride >= ck,
        "im2col_i8_t_stored_strided: row stride below patch length"
    );
    assert!(
        cols.len() >= oh * ow * row_stride,
        "im2col_i8_t_stored_strided: output slice too short"
    );
    vals.clear();
    vals.extend(
        stored[..in_c * h * w]
            .iter()
            .map(|&s| crate::bits::sign_extend(s, bits) as i8),
    );
    // Output columns whose kx span covers the whole kernel row
    // (ix = ox·stride + kx − padding ∈ [0, w) for every kx): everything
    // left of `ox_full_lo` clips at the left image edge, everything at
    // `ox_full_hi` or beyond clips at the right one.
    let ox_full_lo = p.padding.div_ceil(p.stride).min(ow);
    let ox_full_hi = if w + p.padding >= k {
        ((w + p.padding - k) / p.stride + 1).min(ow)
    } else {
        0
    };
    // One partial (edge-clipped) column: the span of in-bounds kx taps.
    let partial =
        |vals: &[i8], cols: &mut [i8], ox: usize, src_row: usize, tap: usize, d: usize| {
            let kx_lo = p.padding.saturating_sub(ox * p.stride);
            let kx_hi = (w + p.padding).saturating_sub(ox * p.stride).min(k);
            if kx_lo < kx_hi {
                let src = src_row + ox * p.stride + kx_lo - p.padding;
                cols[d + tap + kx_lo..d + tap + kx_hi]
                    .copy_from_slice(&vals[src..src + (kx_hi - kx_lo)]);
            }
        };
    for oy in 0..oh {
        let drow = oy * ow;
        for ic in 0..in_c {
            for ky in 0..k {
                let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let src_row = ic * h * w + iy as usize * w;
                let tap = (ic * k + ky) * k;
                for ox in 0..ox_full_lo {
                    partial(vals, cols, ox, src_row, tap, (drow + ox) * row_stride);
                }
                // Full-span columns: one k-byte copy each, with all index
                // math hoisted out of the loop.
                if ox_full_hi > ox_full_lo {
                    let mut d = (drow + ox_full_lo) * row_stride + tap;
                    let mut src = src_row + ox_full_lo * p.stride - p.padding;
                    // SAFETY: full-span columns read `vals[src..src+k]`
                    // with ix ∈ [0, w) by construction of the ox bounds,
                    // and write inside the patch row (`tap + k <= ck <=
                    // row_stride`), whose end was asserted against
                    // `cols.len()` above.
                    unsafe {
                        for _ in ox_full_lo..ox_full_hi {
                            std::ptr::copy_nonoverlapping(
                                vals.as_ptr().add(src),
                                cols.as_mut_ptr().add(d),
                                k,
                            );
                            d += row_stride;
                            src += p.stride;
                        }
                    }
                }
                for ox in ox_full_hi.max(ox_full_lo)..ow {
                    partial(vals, cols, ox, src_row, tap, (drow + ox) * row_stride);
                }
            }
        }
    }
}

/// Strided f32 im2col for batched convolution: writes one sample's
/// `[in_c·k·k, oh·ow]` patch matrix into columns
/// `[col_offset, col_offset + oh·ow)` of a `[in_c·k·k, row_stride]` batch
/// matrix, so a whole batch of samples packs into one rhs for
/// [`gemm_batch`]. `cols` must be pre-zeroed: padding taps are left
/// untouched, matching [`im2col`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn im2col_strided(
    input: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    col_offset: usize,
    row_stride: usize,
    cols: &mut [f32],
) {
    im2col_strided_with(
        |i| input[i],
        input.len(),
        in_c,
        h,
        w,
        p,
        col_offset,
        row_stride,
        cols,
    );
}

/// Integer variant of [`im2col_strided`] over a raw sign-extended
/// `[in_c, h, w]` slice — packs one sample's columns into the `[k, n]` rhs
/// of [`gemm_i32_batch`]/[`gemm_i64_batch`].
#[allow(clippy::too_many_arguments)]
pub fn im2col_i32_strided(
    input: &[i32],
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    col_offset: usize,
    row_stride: usize,
    cols: &mut [i32],
) {
    im2col_strided_with(
        |i| input[i],
        input.len(),
        in_c,
        h,
        w,
        p,
        col_offset,
        row_stride,
        cols,
    );
}

#[allow(clippy::too_many_arguments)]
fn im2col_strided_with<T: Copy>(
    read: impl Fn(usize) -> T,
    len: usize,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    col_offset: usize,
    row_stride: usize,
    cols: &mut [T],
) {
    assert!(len >= in_c * h * w, "strided im2col: input too short");
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    let ck = in_c * k * k;
    assert!(
        col_offset + oh * ow <= row_stride,
        "strided im2col: sample columns exceed the row stride"
    );
    assert!(
        cols.len() >= ck * row_stride,
        "strided im2col: batch matrix too short"
    );
    for ic in 0..in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let dst = &mut cols[row * row_stride + col_offset..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = ic * h * w + iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = read(src_base + ix as usize);
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn im2col_t_with<T: Copy + Default>(
    read: impl Fn(usize) -> T,
    len: usize,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<T>,
) {
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let ck = in_c * p.kernel * p.kernel;
    cols.clear();
    cols.resize(oh * ow * ck, T::default());
    im2col_t_into_with(read, len, in_c, h, w, p, cols);
}

/// Body of the transposed im2col gathers, writing into a caller-provided
/// (pre-zeroed) slice so batched conv can pack per-sample blocks back to
/// back without intermediate buffers.
fn im2col_t_into_with<T: Copy>(
    read: impl Fn(usize) -> T,
    len: usize,
    in_c: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut [T],
) {
    assert!(len >= in_c * h * w, "im2col transposed: input too short");
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    let ck = in_c * k * k;
    assert!(
        cols.len() >= oh * ow * ck,
        "im2col transposed: output slice too short"
    );
    for oy in 0..oh {
        for ox in 0..ow {
            let dst = &mut cols[(oy * ow + ox) * ck..(oy * ow + ox + 1) * ck];
            for ic in 0..in_c {
                for ky in 0..k {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = ic * h * w + iy as usize * w;
                    let drow = &mut dst[(ic * k + ky) * k..(ic * k + ky + 1) * k];
                    for (kx, d) in drow.iter_mut().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        *d = read(src_base + ix as usize);
                    }
                }
            }
        }
    }
}

/// Folds an im2col-shaped gradient `[in_c·k·k, oh·ow]` back onto the input
/// grid `[in_c, h, w]`, accumulating where receptive fields overlap
/// (the adjoint of [`im2col`]).
pub fn col2im(cols: &Tensor, in_c: usize, h: usize, w: usize, p: Conv2dParams) -> Tensor {
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let k = p.kernel;
    let cd = cols.data();
    assert_eq!(cols.shape(), &[in_c * k * k, oh * ow], "col2im shape");
    let mut out = vec![0.0f32; in_c * h * w];
    for ic in 0..in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let src = &cd[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[ic * h * w + iy as usize * w + ix as usize] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[in_c, h, w])
}

/// 2-D convolution forward pass for a single sample, computed as
/// [`im2col`] + one cache-blocked [`gemm`].
///
/// * `input` — `[in_c, h, w]`
/// * `weight` — `[out_c, in_c, k, k]`
/// * `bias` — `[out_c]`
///
/// Returns `[out_c, oh, ow]`. Each output accumulates its terms in the same
/// `(ic, ky, kx)`-ascending order (bias first) as a direct loop nest would,
/// so the GEMM path matches a naive implementation bit for bit on finite
/// activations (exactly-zero weights skip their terms — see [`gemm`] for the
/// NaN/Inf edge).
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, p: Conv2dParams) -> Tensor {
    let (in_c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (out_c, w_in_c, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    assert_eq!(in_c, w_in_c, "conv2d channel mismatch");
    assert_eq!(weight.shape()[3], k, "conv2d kernel must be square");
    assert_eq!(bias.len(), out_c, "conv2d bias size mismatch");
    assert_eq!(k, p.kernel, "conv2d weight kernel disagrees with params");
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    let bd = bias.data();

    let cols = im2col(input, p);
    // Seed every output row with its bias so the bias participates first in
    // each accumulation chain, exactly like `acc = bias; acc += ...`.
    let mut out = vec![0.0f32; out_c * oh * ow];
    for oc in 0..out_c {
        out[oc * oh * ow..(oc + 1) * oh * ow].fill(bd[oc]);
    }
    gemm(
        out_c,
        in_c * k * k,
        oh * ow,
        weight.data(),
        cols.data(),
        &mut out,
    );
    Tensor::from_vec(out, &[out_c, oh, ow])
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[in_c, h, w]`.
    pub d_input: Tensor,
    /// Gradient with respect to the weights, `[out_c, in_c, k, k]`.
    pub d_weight: Tensor,
    /// Gradient with respect to the bias, `[out_c]`.
    pub d_bias: Tensor,
}

/// 2-D convolution backward pass for a single sample, expressed as two GEMMs
/// over the same [`im2col`] patch matrix the forward pass uses:
///
/// * `d_weight = d_out (out_c × oh·ow) · colsᵀ`
/// * `d_input = col2im(weightᵀ · d_out)`
///
/// `d_out` has shape `[out_c, oh, ow]` and matches the forward output.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    p: Conv2dParams,
) -> Conv2dGrads {
    let (in_c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (out_c, _, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    let (oh, ow) = (p.out_size(h), p.out_size(w));
    assert_eq!(
        d_out.shape(),
        &[out_c, oh, ow],
        "conv2d_backward d_out shape"
    );
    let ck = in_c * k * k;
    let ohw = oh * ow;
    let dd = d_out.data();

    let cols = im2col(input, p);

    // d_bias: total gradient per output channel.
    let d_b: Vec<f32> = (0..out_c)
        .map(|oc| dd[oc * ohw..(oc + 1) * ohw].iter().sum())
        .collect();

    // d_weight = d_out · colsᵀ.
    let mut cols_t = vec![0.0f32; ohw * ck];
    transpose_into(ck, ohw, cols.data(), &mut cols_t);
    let mut d_w = vec![0.0f32; out_c * ck];
    gemm(out_c, ohw, ck, dd, &cols_t, &mut d_w);

    // d_input = col2im(weightᵀ · d_out).
    let mut w_t = vec![0.0f32; ck * out_c];
    transpose_into(out_c, ck, weight.data(), &mut w_t);
    let mut d_cols = vec![0.0f32; ck * ohw];
    gemm(ck, out_c, ohw, &w_t, dd, &mut d_cols);
    let d_in = col2im(&Tensor::from_vec(d_cols, &[ck, ohw]), in_c, h, w, p);

    Conv2dGrads {
        d_input: d_in,
        d_weight: Tensor::from_vec(d_w, weight.shape()),
        d_bias: Tensor::from_vec(d_b, &[out_c]),
    }
}

/// 2×2 (or general) max pooling forward pass for a single `[c, h, w]` sample.
///
/// Returns the pooled output and the flat argmax indices used by the backward
/// pass.
pub fn maxpool2d(input: &Tensor, size: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let id = input.data();
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    let mut arg = vec![0usize; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let oi = ch * oh * ow + oy * ow + ox;
                for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        let ii = ch * h * w + iy * w + ix;
                        if id[ii] > out[oi] {
                            out[oi] = id[ii];
                            arg[oi] = ii;
                        }
                    }
                }
            }
        }
    }
    (Tensor::from_vec(out, &[c, oh, ow]), arg)
}

/// Max pooling backward pass: routes gradients to the argmax positions.
pub fn maxpool2d_backward(input_shape: &[usize], d_out: &Tensor, argmax: &[usize]) -> Tensor {
    let mut d_in = vec![0.0f32; input_shape.iter().product()];
    for (g, &src) in d_out.data().iter().zip(argmax) {
        d_in[src] += g;
    }
    Tensor::from_vec(d_in, input_shape)
}

/// Global average pooling: `[c, h, w] -> [c]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let id = input.data();
    let mut out = vec![0.0f32; c];
    for ch in 0..c {
        let s: f32 = id[ch * h * w..(ch + 1) * h * w].iter().sum();
        out[ch] = s / (h * w) as f32;
    }
    Tensor::from_vec(out, &[c])
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(input_shape: &[usize], d_out: &Tensor) -> Tensor {
    let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
    let scale = 1.0 / (h * w) as f32;
    let mut d_in = vec![0.0f32; c * h * w];
    for ch in 0..c {
        let g = d_out.data()[ch] * scale;
        for v in &mut d_in[ch * h * w..(ch + 1) * h * w] {
            *v = g;
        }
    }
    Tensor::from_vec(d_in, input_shape)
}

/// ReLU activation.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU backward: passes gradient where the forward input was positive.
pub fn relu_backward(input: &Tensor, d_out: &Tensor) -> Tensor {
    input.zip(d_out, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Numerically-stable softmax over a rank-1 tensor.
pub fn softmax(x: &Tensor) -> Tensor {
    let m = x.max();
    let exps: Vec<f32> = x.data().iter().map(|&v| (v - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    Tensor::from_vec(exps.into_iter().map(|e| e / s).collect(), x.shape())
}

/// Cross-entropy loss of softmax `probs` against a one-hot `label` index.
///
/// Returns `(loss, d_logits)` where `d_logits` is the gradient with respect to
/// the pre-softmax logits (the usual `probs - onehot` shortcut).
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let probs = softmax(logits);
    let eps = 1e-9f32;
    let loss = -(probs.data()[label] + eps).ln();
    let mut d = probs.data().to_vec();
    d[label] -= 1.0;
    (loss, Tensor::from_vec(d, logits.shape()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a).shape(), &[3, 2]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let input = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[1, 3, 3]);
        let weight = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, Conv2dParams::new(1, 1, 0));
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_sum_kernel() {
        // 3x3 all-ones kernel with padding 1 at the center equals the sum of
        // the full input.
        let input = Tensor::from_vec(vec![1.0; 9], &[1, 3, 3]);
        let weight = Tensor::from_vec(vec![1.0; 9], &[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, Conv2dParams::new(3, 1, 1));
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert!(approx(out.get(&[0, 1, 1]), 9.0));
        assert!(approx(out.get(&[0, 0, 0]), 4.0)); // corner sees 2x2 window
    }

    /// Reference naive conv used to validate the im2col + GEMM path.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, p: Conv2dParams) -> Tensor {
        let (in_c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (out_c, k) = (weight.shape()[0], weight.shape()[2]);
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let mut out = vec![0.0f32; out_c * oh * ow];
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.data()[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.data()[ic * h * w + iy as usize * w + ix as usize]
                                    * weight.data()[oc * in_c * k * k + ic * k * k + ky * k + kx];
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        Tensor::from_vec(out, &[out_c, oh, ow])
    }

    fn pseudo(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * phase).sin()).collect()
    }

    #[test]
    fn gemm_matches_naive_triple_loop_across_block_boundaries() {
        // Sizes straddling the MC/KC blocking thresholds.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 4),
            (65, 257, 7),
            (64, 256, 2),
            (70, 513, 3),
        ] {
            let a = pseudo(m * k, 0.31);
            let b = pseudo(k * n, 0.17);
            let mut blocked = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut blocked);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for p in 0..k {
                    for j in 0..n {
                        naive[i * n + j] += a[i * k + p] * b[p * n + j];
                    }
                }
            }
            // Bit-identical, not just approximately equal: accumulation order
            // per output element is the same in both loops.
            assert_eq!(blocked, naive, "gemm mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_accumulates_into_out() {
        let mut out = vec![1.0f32; 4];
        gemm(
            2,
            2,
            2,
            &[1.0, 0.0, 0.0, 1.0],
            &[5.0, 6.0, 7.0, 8.0],
            &mut out,
        );
        assert_eq!(out, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn integer_gemm_matches_naive_reference() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 4), (65, 257, 7), (70, 513, 3)] {
            let a: Vec<i32> = (0..m * k)
                .map(|i| ((i * 37 + 11) % 255) as i32 - 127)
                .collect();
            let b: Vec<i32> = (0..k * n)
                .map(|i| ((i * 53 + 7) % 255) as i32 - 127)
                .collect();
            let mut out32 = vec![0i32; m * n];
            gemm_i32(m, k, n, &a, &b, &mut out32);
            let mut out64 = vec![0i64; m * n];
            gemm_i64(m, k, n, &a, &b, &mut out64);
            let mut naive = vec![0i64; m * n];
            for i in 0..m {
                for p in 0..k {
                    for j in 0..n {
                        naive[i * n + j] += (a[i * k + p] * b[p * n + j]) as i64;
                    }
                }
            }
            assert_eq!(out64, naive, "gemm_i64 mismatch at ({m},{k},{n})");
            let as64: Vec<i64> = out32.iter().map(|&v| v as i64).collect();
            assert_eq!(as64, naive, "gemm_i32 mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn integer_matvec_matches_gemm_column() {
        let (m, k) = (33, 129);
        let a: Vec<i32> = (0..m * k).map(|i| ((i * 29) % 255) as i32 - 127).collect();
        let x: Vec<i32> = (0..k).map(|i| ((i * 41) % 255) as i32 - 127).collect();
        let mut mv = vec![0i32; m];
        matvec_i32(m, k, &a, &x, &mut mv);
        let mut gm = vec![0i32; m];
        gemm_i32(m, k, 1, &a, &x, &mut gm);
        assert_eq!(mv, gm);
        let mut mv64 = vec![0i64; m];
        matvec_i64(m, k, &a, &x, &mut mv64);
        assert_eq!(mv64, mv.iter().map(|&v| v as i64).collect::<Vec<_>>());
    }

    #[test]
    fn dot_structured_i16_gemm_matches_i32_gemm() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 4), (6, 75, 64), (16, 54, 16), (7, 129, 3)] {
            let a: Vec<i32> = (0..m * k)
                .map(|i| ((i * 37 + 11) % 255) as i32 - 127)
                .collect();
            let b: Vec<i32> = (0..k * n)
                .map(|i| ((i * 53 + 7) % 255) as i32 - 127)
                .collect();
            let a16: Vec<i16> = a.iter().map(|&v| v as i16).collect();
            // Transpose b (k×n) into bt (n×k).
            let mut bt = vec![0i16; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j] as i16;
                }
            }
            let mut reference = vec![0i32; m * n];
            gemm_i32(m, k, n, &a, &b, &mut reference);
            let mut dot = vec![0i32; m * n];
            gemm_dot_i16(m, k, n, &a16, &bt, &mut dot);
            assert_eq!(dot, reference, "gemm_dot_i16 mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn dot_structured_i8_gemm_matches_i32_gemm() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 4), (6, 75, 64), (16, 54, 16), (7, 129, 3)] {
            let a: Vec<i32> = (0..m * k)
                .map(|i| ((i * 37 + 11) % 256) as i32 - 128)
                .collect();
            let b: Vec<i32> = (0..k * n)
                .map(|i| ((i * 53 + 7) % 256) as i32 - 128)
                .collect();
            let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
            // Transpose b (k×n) into bt (n×k).
            let mut bt = vec![0i8; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j] as i8;
                }
            }
            let mut reference = vec![0i32; m * n];
            gemm_i32(m, k, n, &a, &b, &mut reference);
            let mut dot = vec![0i32; m * n];
            gemm_dot_i8(m, k, n, &a8, &bt, &mut dot);
            assert_eq!(dot, reference, "gemm_dot_i8 mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn i8_matvec_matches_i32_matvec() {
        let (m, k) = (33, 129);
        // Full corrupted int8 domain including -128.
        let a: Vec<i32> = (0..m * k).map(|i| ((i * 29) % 256) as i32 - 128).collect();
        let x: Vec<i32> = (0..k).map(|i| ((i * 41) % 256) as i32 - 128).collect();
        let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
        let x8: Vec<i8> = x.iter().map(|&v| v as i8).collect();
        let mut reference = vec![0i32; m];
        matvec_i32(m, k, &a, &x, &mut reference);
        let mut dot = vec![0i32; m];
        matvec_i8(m, k, &a8, &x8, &mut dot);
        assert_eq!(dot, reference);
    }

    #[test]
    fn transposed_i8_im2col_matches_the_i16_form() {
        for (in_c, h, w, k, stride, padding) in [(3, 9, 9, 3, 1, 1), (2, 8, 7, 3, 2, 1)] {
            let p = Conv2dParams::new(k, stride, padding);
            let ints: Vec<i32> = (0..in_c * h * w).map(|i| (i % 256) as i32 - 128).collect();
            let i16s: Vec<i16> = ints.iter().map(|&v| v as i16).collect();
            let i8s: Vec<i8> = ints.iter().map(|&v| v as i8).collect();
            let mut wide = Vec::new();
            im2col_i16_t(&i16s, in_c, h, w, p, &mut wide);
            let mut narrow = vec![7i8; 2]; // junk: must be cleared
            im2col_i8_t(&i8s, in_c, h, w, p, &mut narrow);
            assert_eq!(narrow.len(), wide.len());
            assert!(
                narrow.iter().zip(&wide).all(|(&a, &b)| a as i16 == b),
                "i8/i16 transposed im2col mismatch at k={k} s={stride} p={padding}"
            );
        }
    }

    #[test]
    fn i16_matvec_matches_i32_matvec() {
        let (m, k) = (33, 129);
        let a: Vec<i32> = (0..m * k).map(|i| ((i * 29) % 255) as i32 - 127).collect();
        let x: Vec<i32> = (0..k).map(|i| ((i * 41) % 255) as i32 - 127).collect();
        let a16: Vec<i16> = a.iter().map(|&v| v as i16).collect();
        let x16: Vec<i16> = x.iter().map(|&v| v as i16).collect();
        let mut reference = vec![0i32; m];
        matvec_i32(m, k, &a, &x, &mut reference);
        let mut dot = vec![0i32; m];
        matvec_i16(m, k, &a16, &x16, &mut dot);
        assert_eq!(dot, reference);
    }

    #[test]
    fn transposed_i16_im2col_is_the_transpose_of_im2col_i32() {
        for (in_c, h, w, k, stride, padding) in [(3, 9, 9, 3, 1, 1), (2, 8, 7, 3, 2, 1)] {
            let p = Conv2dParams::new(k, stride, padding);
            let ints: Vec<i32> = (0..in_c * h * w).map(|i| (i % 255) as i32 - 127).collect();
            let i16s: Vec<i16> = ints.iter().map(|&v| v as i16).collect();
            let mut straight = Vec::new();
            im2col_i32(&ints, in_c, h, w, p, &mut straight);
            let mut transposed = vec![7i16; 2]; // junk: must be cleared
            im2col_i16_t(&i16s, in_c, h, w, p, &mut transposed);
            let (oh, ow) = (p.out_size(h), p.out_size(w));
            let (ck, ohw) = (in_c * k * k, oh * ow);
            assert_eq!(transposed.len(), straight.len());
            for row in 0..ck {
                for col in 0..ohw {
                    assert_eq!(
                        transposed[col * ck + row] as i32,
                        straight[row * ohw + col],
                        "mismatch at ({row},{col}) k={k} s={stride} p={padding}"
                    );
                }
            }
        }
    }

    #[test]
    fn integer_gemm_accumulates_into_out() {
        let mut out = vec![1i32; 4];
        gemm_i32(2, 2, 2, &[1, 0, 0, 1], &[5, 6, 7, 8], &mut out);
        assert_eq!(out, vec![6, 7, 8, 9]);
    }

    #[test]
    fn im2col_i32_matches_f32_im2col_on_integer_data() {
        for (in_c, h, w, k, stride, padding) in
            [(3, 9, 9, 3, 1, 1), (2, 8, 7, 3, 2, 1), (1, 5, 7, 1, 1, 0)]
        {
            let p = Conv2dParams::new(k, stride, padding);
            let ints: Vec<i32> = (0..in_c * h * w).map(|i| (i % 255) as i32 - 127).collect();
            let floats: Vec<f32> = ints.iter().map(|&v| v as f32).collect();
            let reference = im2col(&Tensor::from_vec(floats, &[in_c, h, w]), p);
            let mut cols = vec![99i32; 3]; // junk: must be cleared
            im2col_i32(&ints, in_c, h, w, p, &mut cols);
            assert_eq!(cols.len(), reference.len());
            for (a, &b) in cols.iter().zip(reference.data()) {
                assert_eq!(
                    *a as f32, b,
                    "im2col mismatch at k={k} s={stride} p={padding}"
                );
            }
        }
    }

    #[test]
    fn conv2d_gemm_matches_naive_reference() {
        for (in_c, out_c, h, w, k, stride, padding) in [
            (3, 8, 9, 9, 3, 1, 1),
            (2, 4, 8, 8, 3, 2, 1),
            (1, 2, 5, 7, 1, 1, 0),
            (4, 3, 6, 6, 5, 1, 2),
        ] {
            let p = Conv2dParams::new(k, stride, padding);
            let input = Tensor::from_vec(pseudo(in_c * h * w, 0.23), &[in_c, h, w]);
            let weight = Tensor::from_vec(pseudo(out_c * in_c * k * k, 0.41), &[out_c, in_c, k, k]);
            let bias = Tensor::from_vec(pseudo(out_c, 0.77), &[out_c]);
            assert_eq!(
                conv2d(&input, &weight, &bias, p),
                conv2d_naive(&input, &weight, &bias, p),
                "conv mismatch at in_c={in_c} out_c={out_c} k={k} s={stride} p={padding}"
            );
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property the backward pass relies on.
        let p = Conv2dParams::new(3, 2, 1);
        let (c, h, w) = (2, 6, 5);
        let x = Tensor::from_vec(pseudo(c * h * w, 0.13), &[c, h, w]);
        let cols = im2col(&x, p);
        let y = Tensor::from_vec(pseudo(cols.len(), 0.37), cols.shape());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, c, h, w, p);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_backward_matches_numerical_gradient() {
        // Finite-difference check of d_weight on a tiny conv.
        let input = Tensor::from_vec(
            vec![0.5, -1.0, 2.0, 0.3, 1.5, -0.7, 0.2, 0.9, -1.1],
            &[1, 3, 3],
        );
        let mut weight = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[1, 1, 2, 2]);
        let bias = Tensor::zeros(&[1]);
        let p = Conv2dParams::new(2, 1, 0);

        // Loss = sum of outputs.
        let out = conv2d(&input, &weight, &bias, p);
        let d_out = Tensor::full(out.shape(), 1.0);
        let grads = conv2d_backward(&input, &weight, &d_out, p);

        let eps = 1e-3;
        for wi in 0..weight.len() {
            let orig = weight.data()[wi];
            weight.data_mut()[wi] = orig + eps;
            let lp = conv2d(&input, &weight, &bias, p).sum();
            weight.data_mut()[wi] = orig - eps;
            let lm = conv2d(&input, &weight, &bias, p).sum();
            weight.data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads.d_weight.data()[wi]).abs() < 1e-2,
                "weight grad mismatch at {wi}: numerical {num} vs analytic {}",
                grads.d_weight.data()[wi]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let (out, arg) = maxpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[4.0]);
        let d_out = Tensor::from_vec(vec![5.0], &[1, 1, 1]);
        let d_in = maxpool2d_backward(&[1, 2, 2], &d_out, &arg);
        assert_eq!(d_in.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn global_avg_pool_mean_and_gradient() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]);
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[4.0]);
        let d = global_avg_pool_backward(&[1, 2, 2], &Tensor::from_vec(vec![4.0], &[1]));
        assert_eq!(d.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0, 1000.0], &[3]);
        let p = softmax(&x);
        assert!(approx(p.sum(), 1.0));
        assert!(approx(p.data()[0], 1.0 / 3.0));
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, -0.3], &[3]);
        let (loss, d) = softmax_cross_entropy(&logits, 1);
        assert!(loss > 0.0);
        assert_eq!(d.shape(), &[3]);
        // Gradient sums to ~0 for softmax cross-entropy.
        assert!(d.sum().abs() < 1e-5);
    }

    /// Deterministic pseudo-random f32s in [-1, 1) for the batched parity
    /// tests.
    fn lcg_f32(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn lcg_i32(seed: u64, len: usize, q: i32) -> Vec<i32> {
        let span = (2 * q + 1) as u64;
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) % span) as i32 - q
            })
            .collect()
    }

    #[test]
    fn gemm_batch_is_bit_identical_to_gemm_at_any_pool_width() {
        // Shape chosen above the parallel threshold so row blocks actually
        // fan out; a few exact zeros exercise the sparsity skip.
        let (m, k, n) = (37, 64, 448);
        let mut a = lcg_f32(1, m * k);
        a[5] = 0.0;
        a[k + 7] = 0.0;
        let b = lcg_f32(2, k * n);
        let mut expect = vec![0.5f32; m * n];
        gemm(m, k, n, &a, &b, &mut expect);
        let mut got = vec![0.5f32; m * n];
        gemm_batch(m, k, n, &a, &b, &mut got);
        assert_eq!(expect, got);
    }

    #[test]
    fn integer_gemm_batch_variants_match_their_per_call_forms() {
        let (m, k, n) = (19, 96, 640);
        let a = lcg_i32(3, m * k, 127);
        let b = lcg_i32(4, k * n, 127);
        let mut e32 = vec![0i32; m * n];
        gemm_i32(m, k, n, &a, &b, &mut e32);
        let mut g32 = vec![0i32; m * n];
        gemm_i32_batch(m, k, n, &a, &b, &mut g32);
        assert_eq!(e32, g32);

        let mut e64 = vec![0i64; m * n];
        gemm_i64(m, k, n, &a, &b, &mut e64);
        let mut g64 = vec![0i64; m * n];
        gemm_i64_batch(m, k, n, &a, &b, &mut g64);
        assert_eq!(e64, g64);

        let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
        let bt8: Vec<i8> = lcg_i32(5, n * k, 127).iter().map(|&v| v as i8).collect();
        let mut e8 = vec![0i32; m * n];
        gemm_dot_i8(m, k, n, &a8, &bt8, &mut e8);
        let mut g8 = vec![0i32; m * n];
        gemm_dot_i8_batch(m, k, n, &a8, &bt8, &mut g8);
        assert_eq!(e8, g8);
    }

    #[test]
    fn strided_im2col_packs_per_sample_patch_matrices() {
        let p = Conv2dParams::new(3, 1, 1);
        let (in_c, h, w) = (2, 5, 5);
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let ck = in_c * 9;
        let samples: Vec<Vec<f32>> = (0..3).map(|s| lcg_f32(10 + s, in_c * h * w)).collect();
        let n = 3 * oh * ow;
        let mut packed = vec![0.0f32; ck * n];
        for (j, s) in samples.iter().enumerate() {
            im2col_strided(s, in_c, h, w, p, j * oh * ow, n, &mut packed);
        }
        for (j, s) in samples.iter().enumerate() {
            let single = im2col(&Tensor::from_vec(s.clone(), &[in_c, h, w]), p);
            for row in 0..ck {
                assert_eq!(
                    &packed[row * n + j * oh * ow..row * n + (j + 1) * oh * ow],
                    &single.data()[row * oh * ow..(row + 1) * oh * ow],
                    "sample {j} row {row}"
                );
            }
        }
    }

    #[test]
    fn im2col_i8_into_matches_the_resizing_form() {
        let p = Conv2dParams::new(3, 2, 1);
        let (in_c, h, w) = (3, 7, 7);
        let (oh, ow) = (p.out_size(h), p.out_size(w));
        let ck = in_c * 9;
        let bits = 8u32;
        let stored: Vec<u32> = lcg_i32(42, in_c * h * w, 127)
            .iter()
            .map(|&v| (v as u32) & 0xFF)
            .collect();
        let mut expect = Vec::new();
        im2col_i8_t_stored(&stored, bits, in_c, h, w, p, &mut expect);
        let mut got = vec![0i8; oh * ow * ck];
        im2col_i8_t_stored_into(&stored, bits, in_c, h, w, p, &mut got);
        assert_eq!(expect, got);
    }

    /// The span-copy strided gather must reproduce the per-tap form exactly
    /// in the first `ck` lanes of every patch row and leave the pad lanes
    /// zero, across strides/paddings and sub-byte precisions.
    #[test]
    fn strided_i8_im2col_matches_the_per_tap_form_with_zero_pad_lanes() {
        for (kernel, stride, padding, bits) in [(3, 1, 1, 8u32), (3, 2, 1, 4), (5, 2, 2, 8)] {
            let p = Conv2dParams::new(kernel, stride, padding);
            let (in_c, h, w) = (3, 9, 7);
            let (oh, ow) = (p.out_size(h), p.out_size(w));
            let ck = in_c * kernel * kernel;
            let mask = (1u32 << bits) - 1;
            let stored: Vec<u32> = lcg_i32(7, in_c * h * w, 1 << 20)
                .iter()
                .map(|&v| (v as u32) & mask)
                .collect();
            let mut expect = Vec::new();
            im2col_i8_t_stored(&stored, bits, in_c, h, w, p, &mut expect);
            let row_stride = packed_stride_i8(ck);
            let mut vals = Vec::new();
            let mut got = vec![0i8; oh * ow * row_stride];
            im2col_i8_t_stored_strided(
                &stored, bits, in_c, h, w, p, row_stride, &mut vals, &mut got,
            );
            for patch in 0..oh * ow {
                let row = &got[patch * row_stride..(patch + 1) * row_stride];
                assert_eq!(
                    &row[..ck],
                    &expect[patch * ck..(patch + 1) * ck],
                    "patch {patch} at k{kernel}/s{stride}/p{padding}/{bits}b"
                );
                assert!(
                    row[ck..].iter().all(|&v| v == 0),
                    "pad lanes of patch {patch} must stay zero"
                );
            }
        }
    }

    /// The packed-panel GEMM must equal the unpadded dot-structured form on
    /// the same logical operands (the pad lanes hold zeros, which contribute
    /// nothing to an integer sum) — odd m included.
    #[test]
    fn packed_i8_gemm_matches_the_dot_structured_form() {
        for (m, k, n) in [(1usize, 27usize, 5usize), (12, 108, 33), (7, 64, 16)] {
            let k_pad = packed_stride_i8(k);
            let a8: Vec<i8> = lcg_i32(3, m * k, 128).iter().map(|&v| v as i8).collect();
            let bt8: Vec<i8> = lcg_i32(9, n * k, 128).iter().map(|&v| v as i8).collect();
            let mut want = vec![0i32; m * n];
            gemm_dot_i8(m, k, n, &a8, &bt8, &mut want);
            let mut a_pad = vec![0i8; m * k_pad];
            let mut bt_pad = vec![0i8; n * k_pad];
            for r in 0..m {
                a_pad[r * k_pad..r * k_pad + k].copy_from_slice(&a8[r * k..(r + 1) * k]);
            }
            for c in 0..n {
                bt_pad[c * k_pad..c * k_pad + k].copy_from_slice(&bt8[c * k..(c + 1) * k]);
            }
            let mut got = vec![0i32; m * n];
            gemm_i8_packed(m, k_pad, n, &a_pad, &bt_pad, &mut got);
            assert_eq!(got, want, "packed gemm at ({m},{k},{n})");
        }
    }
}
