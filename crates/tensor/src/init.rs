//! Deterministic weight initializers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kaiming/He uniform initialization for layers followed by ReLU.
///
/// `fan_in` is the number of input connections per output unit.
pub fn he_uniform(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(data, dims)
}

/// Xavier/Glorot uniform initialization.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(data, dims)
}

/// A seedable RNG for reproducible initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform random tensor in `[lo, hi)`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims)
}

/// Standard-normal random tensor scaled by `std`.
pub fn normal(dims: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = dims.iter().product();
    // Box-Muller transform to avoid an extra dependency.
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_init_is_deterministic() {
        let a = he_uniform(&[4, 4], 4, &mut seeded_rng(7));
        let b = he_uniform(&[4, 4], 4, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = he_uniform(&[8, 8], 8, &mut seeded_rng(1));
        let b = he_uniform(&[8, 8], 8, &mut seeded_rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn he_bound_respected() {
        let fan_in = 16;
        let bound = (6.0 / fan_in as f32).sqrt();
        let t = he_uniform(&[32, 16], fan_in, &mut seeded_rng(3));
        assert!(t.abs_max() <= bound);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let t = normal(&[10_000], 2.0, &mut seeded_rng(11));
        assert!(t.mean().abs() < 0.1);
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn uniform_range_respected() {
        let t = uniform(&[1000], -0.5, 0.5, &mut seeded_rng(4));
        assert!(t.max() < 0.5 && t.min() >= -0.5);
    }
}
