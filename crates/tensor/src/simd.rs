//! Runtime-dispatched SIMD kernels for the integer and f32 inner loops.
//!
//! The hot reductions in [`crate::ops`] (widening integer dot products, the
//! i32 GEMM update, the f32 GEMM row update) are resolved **once** at first
//! use into a table of function pointers ([`Kernels`]) chosen by runtime CPU
//! feature detection (`std::arch::is_x86_feature_detected!`), walking down
//! [`Isa::Avx512`] → [`Isa::Avx2`] → [`Isa::Sse2`] → [`Isa::Scalar`].
//!
//! # Parity guarantee
//!
//! The scalar kernels are the source of truth; every wider path is required
//! to be **bit-for-bit identical** to them:
//!
//! * Integer kernels: integer addition is associative, so any lane order
//!   reproduces the scalar sum exactly (given the callers' no-overflow
//!   contract, see [`crate::ops::gemm_i32`]).
//! * f32 kernels: only *element-wise independent* operations are vectorized
//!   (`out[j] += a * b[j]`, separate multiply and add, **never** FMA), so
//!   each output element's accumulation chain is untouched — reductions over
//!   f32 stay scalar.
//!
//! The int8 dot products deliberately avoid the classic `pmaddubsw`
//! sign-trick (`maddubs(|a|, sign(b, a))`): corrupted int8 storage spans the
//! full `[-128, 127]` domain and `psignb` wraps `-(-128)` back to `-128`,
//! which would mis-compute `(-128)·(-128)`. Instead the i8 paths use
//! sign-extending widening loads (`vpmovsxbw`) followed by the same
//! `pmaddwd` multiply–add as the i16 paths — exact over the full domain
//! while still halving operand memory traffic versus i16 storage.
//!
//! # Override
//!
//! Set `EDEN_ISA=scalar|sse2|avx2|avx512` to force a level, primarily for
//! the CI parity matrix. Requesting a level the CPU does not support (or a
//! typo) **panics** — a silent fallback would let CI believe it tested a
//! path it never ran.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Instruction-set level of a kernel table, ordered from narrowest to
/// widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Plain Rust loops — the bit-for-bit reference implementation.
    Scalar,
    /// 128-bit `pmaddwd` kernels (x86-64 baseline).
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
    /// 512-bit kernels; requires both `avx512f` and `avx512bw` (the latter
    /// for the 512-bit `vpmaddwd`/`vpmovsxbw` forms).
    Avx512,
}

impl Isa {
    /// Every level, narrowest first.
    pub fn all() -> [Isa; 4] {
        [Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512]
    }

    /// The widest level this CPU supports, by runtime feature detection.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                Isa::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                Isa::Avx2
            } else {
                // SSE2 is part of the x86-64 baseline.
                Isa::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Scalar
        }
    }

    /// Whether this CPU can run kernels of this level.
    pub fn is_supported(self) -> bool {
        self <= Isa::detect()
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        })
    }
}

impl FromStr for Isa {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(Isa::Scalar),
            "sse2" => Ok(Isa::Sse2),
            "avx2" => Ok(Isa::Avx2),
            "avx512" => Ok(Isa::Avx512),
            other => Err(format!(
                "unknown ISA {other:?} (expected scalar, sse2, avx2 or avx512)"
            )),
        }
    }
}

/// A 2×2-blocked dot kernel: four simultaneous dot products over two rows
/// and two columns (`a0·b0, a0·b1, a1·b0, a1·b1`).
pub type Dot4Fn<T> = fn(&[T], &[T], &[T], &[T]) -> (i32, i32, i32, i32);

/// A two-row i8 panel kernel: `out0[j] += a0 · bt[j·k..][..k]` and
/// `out1[j] += a1 · bt[j·k..][..k]` for every column `j` of a transposed,
/// contiguously packed rhs panel. One call covers a whole row pair of a
/// GEMM, so the per-tile dispatch overhead of [`Dot4Fn`] disappears; callers
/// that additionally pad `k` to [`crate::ops::packed_stride_i8`] never touch
/// the scalar tail. Arguments: `(a0, a1, bt, k, out0, out1)`.
pub type GemmPanelI8Fn = fn(&[i8], &[i8], &[i8], usize, &mut [i32], &mut [i32]);

/// The dispatch table: one function pointer per hot inner loop. All entries
/// of one table come from the same ISA level and are bit-for-bit equal to
/// the [`Isa::Scalar`] table (see the module docs for why that holds).
#[derive(Clone, Copy)]
pub struct Kernels {
    /// The level every entry was resolved at.
    pub isa: Isa,
    /// Widening i16×i16 dot product with i32 accumulation.
    pub dot_i16: fn(&[i16], &[i16]) -> i32,
    /// Four simultaneous i16 dot products over a 2×2 operand block
    /// (`a0·b0, a0·b1, a1·b0, a1·b1`) — each loaded vector feeds two
    /// multiply–adds.
    pub dot4_i16: Dot4Fn<i16>,
    /// Widening i8×i8 dot product with i32 accumulation (sign-extend +
    /// `pmaddwd`; exact for the full `[-128, 127]` corrupted domain).
    pub dot_i8: fn(&[i8], &[i8]) -> i32,
    /// 2×2-blocked variant of [`Kernels::dot_i8`].
    pub dot4_i8: Dot4Fn<i8>,
    /// Two-row × all-columns i8 panel GEMM over a packed transposed rhs —
    /// the batched-execution workhorse (integer accumulation, so every
    /// blocking order reproduces the scalar sums exactly).
    pub gemm2_i8: GemmPanelI8Fn,
    /// i32×i32 dot product with i32 accumulation.
    pub dot_i32: fn(&[i32], &[i32]) -> i32,
    /// `out[j] += a · b[j]` over i32 — the i32 GEMM row update.
    pub axpy_i32: fn(i32, &[i32], &mut [i32]),
    /// `out[j] += a · b[j]` over f32 (separate multiply and add, never FMA —
    /// lane-exact versus the scalar loop).
    pub axpy_f32: fn(f32, &[f32], &mut [f32]),
}

impl fmt::Debug for Kernels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernels").field("isa", &self.isa).finish()
    }
}

/// The kernel table for a specific ISA level, for parity tests and
/// benchmarks that want to exercise a level other than the active one.
///
/// # Panics
///
/// Panics if this CPU does not support `isa`.
pub fn kernels_for(isa: Isa) -> Kernels {
    assert!(
        isa.is_supported(),
        "ISA {isa} is not supported by this CPU (detected {})",
        Isa::detect()
    );
    match isa {
        Isa::Scalar => Kernels {
            isa,
            dot_i16: scalar::dot_i16,
            dot4_i16: scalar::dot4_i16,
            dot_i8: scalar::dot_i8,
            dot4_i8: scalar::dot4_i8,
            gemm2_i8: scalar::gemm2_i8,
            dot_i32: scalar::dot_i32,
            axpy_i32: scalar::axpy_i32,
            axpy_f32: scalar::axpy_f32,
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => Kernels {
            isa,
            dot_i16: sse2::dot_i16,
            dot4_i16: sse2::dot4_i16,
            dot_i8: sse2::dot_i8,
            dot4_i8: sse2::dot4_i8,
            gemm2_i8: sse2::gemm2_i8,
            // SSE2 has no 4-wide i32 multiply (`pmulld` is SSE4.1); the
            // scalar loops are the honest SSE2-era implementation.
            dot_i32: scalar::dot_i32,
            axpy_i32: scalar::axpy_i32,
            axpy_f32: sse2::axpy_f32,
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => Kernels {
            isa,
            dot_i16: avx2::dot_i16,
            dot4_i16: avx2::dot4_i16,
            dot_i8: avx2::dot_i8,
            dot4_i8: avx2::dot4_i8,
            gemm2_i8: avx2::gemm2_i8,
            dot_i32: avx2::dot_i32,
            axpy_i32: avx2::axpy_i32,
            axpy_f32: avx2::axpy_f32,
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => Kernels {
            isa,
            dot_i16: avx512::dot_i16,
            dot4_i16: avx512::dot4_i16,
            dot_i8: avx512::dot_i8,
            dot4_i8: avx512::dot4_i8,
            // VNNI is an upgrade within the avx512 level, not a level of
            // its own: the fused-dot form is bit-identical to the
            // `vpmaddwd` form, so which one a CPU gets is invisible to
            // results (and to `EDEN_ISA`, which only names levels).
            gemm2_i8: if std::arch::is_x86_feature_detected!("avx512vnni") {
                avx512::gemm2_i8_vnni
            } else {
                avx512::gemm2_i8
            },
            dot_i32: avx512::dot_i32,
            axpy_i32: avx512::axpy_i32,
            axpy_f32: avx512::axpy_f32,
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar ISA levels never pass is_supported off x86-64"),
    }
}

/// The active kernel table, resolved once at first use: the `EDEN_ISA`
/// override if set, otherwise [`Isa::detect`].
///
/// # Panics
///
/// Panics (at first use) if `EDEN_ISA` names an unknown or unsupported
/// level — overrides must never silently fall back.
pub fn kernels() -> &'static Kernels {
    static ACTIVE: OnceLock<Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| match std::env::var("EDEN_ISA") {
        Ok(value) => {
            let isa: Isa = value
                .parse()
                .unwrap_or_else(|e| panic!("invalid EDEN_ISA: {e}"));
            assert!(
                isa.is_supported(),
                "EDEN_ISA={isa} requested but this CPU supports at most {}",
                Isa::detect()
            );
            kernels_for(isa)
        }
        Err(_) => kernels_for(Isa::detect()),
    })
}

/// The ISA level of the active kernel table (honoring `EDEN_ISA`).
pub fn active_isa() -> Isa {
    kernels().isa
}

/// Bit-for-bit reference implementations. Plain loops; the compiler may
/// auto-vectorize the integer reductions (associative, so still exact) but
/// never the f32 ones.
mod scalar {
    pub fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = 0i32;
        for i in 0..n {
            acc += a[i] as i32 * b[i] as i32;
        }
        acc
    }

    pub fn dot4_i16(a0: &[i16], a1: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let (mut s00, mut s01, mut s10, mut s11) = (0i32, 0i32, 0i32, 0i32);
        for i in 0..n {
            let (x0, x1) = (a0[i] as i32, a1[i] as i32);
            let (y0, y1) = (b0[i] as i32, b1[i] as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = 0i32;
        for i in 0..n {
            acc += a[i] as i32 * b[i] as i32;
        }
        acc
    }

    pub fn dot4_i8(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let (mut s00, mut s01, mut s10, mut s11) = (0i32, 0i32, 0i32, 0i32);
        for i in 0..n {
            let (x0, x1) = (a0[i] as i32, a1[i] as i32);
            let (y0, y1) = (b0[i] as i32, b1[i] as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn gemm2_i8(a0: &[i8], a1: &[i8], bt: &[i8], k: usize, out0: &mut [i32], out1: &mut [i32]) {
        let n = out0.len().min(out1.len()).min(bt.len() / k.max(1));
        for j in 0..n {
            let col = &bt[j * k..(j + 1) * k];
            out0[j] += dot_i8(&a0[..k], col);
            out1[j] += dot_i8(&a1[..k], col);
        }
    }

    pub fn dot_i32(a: &[i32], b: &[i32]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = 0i32;
        for i in 0..n {
            acc += a[i] * b[i];
        }
        acc
    }

    pub fn axpy_i32(a: i32, b: &[i32], out: &mut [i32]) {
        for (o, &bv) in out.iter_mut().zip(b) {
            *o += a * bv;
        }
    }

    pub fn axpy_f32(a: f32, b: &[f32], out: &mut [f32]) {
        for (o, &bv) in out.iter_mut().zip(b) {
            *o += a * bv;
        }
    }
}

/// 128-bit kernels. SSE2 is part of the x86-64 baseline, so these need no
/// runtime check; they are still routed through the table so `EDEN_ISA`
/// can select them explicitly.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::*;

    /// Exact horizontal sum of the four i32 lanes.
    #[inline]
    unsafe fn hsum_epi32(v: __m128i) -> i32 {
        let hi = _mm_unpackhi_epi64(v, v);
        let s = _mm_add_epi32(v, hi);
        let sw = _mm_shuffle_epi32(s, 0b01);
        _mm_cvtsi128_si32(_mm_add_epi32(s, sw))
    }

    /// Sign-extends the low 8 i8 lanes of `v` to i16 (the SSE2 spelling of
    /// `pmovsxbw`: duplicate-unpack then arithmetic shift).
    #[inline]
    unsafe fn sx_lo_epi8(v: __m128i) -> __m128i {
        _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8)
    }

    /// Sign-extends the high 8 i8 lanes of `v` to i16.
    #[inline]
    unsafe fn sx_hi_epi8(v: __m128i) -> __m128i {
        _mm_srai_epi16(_mm_unpackhi_epi8(v, v), 8)
    }

    pub fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
        let n = a.len().min(b.len());
        // SAFETY: SSE2 is unconditionally available on x86-64, and all
        // unaligned loads stay within the bounds checked by `n`.
        unsafe {
            // Two independent accumulators hide the multiply-add latency.
            let mut acc0 = _mm_setzero_si128();
            let mut acc1 = _mm_setzero_si128();
            let pairs = n / 16;
            for i in 0..pairs {
                let p = i * 16;
                let va0 = _mm_loadu_si128(a.as_ptr().add(p) as *const __m128i);
                let vb0 = _mm_loadu_si128(b.as_ptr().add(p) as *const __m128i);
                acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(va0, vb0));
                let va1 = _mm_loadu_si128(a.as_ptr().add(p + 8) as *const __m128i);
                let vb1 = _mm_loadu_si128(b.as_ptr().add(p + 8) as *const __m128i);
                acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(va1, vb1));
            }
            let mut done = pairs * 16;
            if done + 8 <= n {
                let va = _mm_loadu_si128(a.as_ptr().add(done) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(done) as *const __m128i);
                acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(va, vb));
                done += 8;
            }
            let mut sum = hsum_epi32(_mm_add_epi32(acc0, acc1));
            for i in done..n {
                sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            }
            sum
        }
    }

    pub fn dot4_i16(a0: &[i16], a1: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        // SAFETY: as `dot_i16`.
        unsafe {
            let mut c00 = _mm_setzero_si128();
            let mut c01 = _mm_setzero_si128();
            let mut c10 = _mm_setzero_si128();
            let mut c11 = _mm_setzero_si128();
            let chunks = n / 8;
            for i in 0..chunks {
                let p = i * 8;
                let va0 = _mm_loadu_si128(a0.as_ptr().add(p) as *const __m128i);
                let va1 = _mm_loadu_si128(a1.as_ptr().add(p) as *const __m128i);
                let vb0 = _mm_loadu_si128(b0.as_ptr().add(p) as *const __m128i);
                let vb1 = _mm_loadu_si128(b1.as_ptr().add(p) as *const __m128i);
                c00 = _mm_add_epi32(c00, _mm_madd_epi16(va0, vb0));
                c01 = _mm_add_epi32(c01, _mm_madd_epi16(va0, vb1));
                c10 = _mm_add_epi32(c10, _mm_madd_epi16(va1, vb0));
                c11 = _mm_add_epi32(c11, _mm_madd_epi16(va1, vb1));
            }
            let (mut s00, mut s01) = (hsum_epi32(c00), hsum_epi32(c01));
            let (mut s10, mut s11) = (hsum_epi32(c10), hsum_epi32(c11));
            for i in chunks * 8..n {
                let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
                let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
                s00 += x0 * y0;
                s01 += x0 * y1;
                s10 += x1 * y0;
                s11 += x1 * y1;
            }
            (s00, s01, s10, s11)
        }
    }

    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        // SAFETY: as `dot_i16`.
        unsafe {
            let mut acc0 = _mm_setzero_si128();
            let mut acc1 = _mm_setzero_si128();
            let chunks = n / 16;
            for i in 0..chunks {
                let p = i * 16;
                let va = _mm_loadu_si128(a.as_ptr().add(p) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(p) as *const __m128i);
                acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(sx_lo_epi8(va), sx_lo_epi8(vb)));
                acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(sx_hi_epi8(va), sx_hi_epi8(vb)));
            }
            let mut sum = hsum_epi32(_mm_add_epi32(acc0, acc1));
            for i in chunks * 16..n {
                sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            }
            sum
        }
    }

    pub fn dot4_i8(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        // SAFETY: as `dot_i16`.
        unsafe {
            let mut c00 = _mm_setzero_si128();
            let mut c01 = _mm_setzero_si128();
            let mut c10 = _mm_setzero_si128();
            let mut c11 = _mm_setzero_si128();
            let chunks = n / 16;
            for i in 0..chunks {
                let p = i * 16;
                let va0 = _mm_loadu_si128(a0.as_ptr().add(p) as *const __m128i);
                let va1 = _mm_loadu_si128(a1.as_ptr().add(p) as *const __m128i);
                let vb0 = _mm_loadu_si128(b0.as_ptr().add(p) as *const __m128i);
                let vb1 = _mm_loadu_si128(b1.as_ptr().add(p) as *const __m128i);
                let (a0l, a0h) = (sx_lo_epi8(va0), sx_hi_epi8(va0));
                let (a1l, a1h) = (sx_lo_epi8(va1), sx_hi_epi8(va1));
                let (b0l, b0h) = (sx_lo_epi8(vb0), sx_hi_epi8(vb0));
                let (b1l, b1h) = (sx_lo_epi8(vb1), sx_hi_epi8(vb1));
                c00 = _mm_add_epi32(c00, _mm_madd_epi16(a0l, b0l));
                c00 = _mm_add_epi32(c00, _mm_madd_epi16(a0h, b0h));
                c01 = _mm_add_epi32(c01, _mm_madd_epi16(a0l, b1l));
                c01 = _mm_add_epi32(c01, _mm_madd_epi16(a0h, b1h));
                c10 = _mm_add_epi32(c10, _mm_madd_epi16(a1l, b0l));
                c10 = _mm_add_epi32(c10, _mm_madd_epi16(a1h, b0h));
                c11 = _mm_add_epi32(c11, _mm_madd_epi16(a1l, b1l));
                c11 = _mm_add_epi32(c11, _mm_madd_epi16(a1h, b1h));
            }
            let (mut s00, mut s01) = (hsum_epi32(c00), hsum_epi32(c01));
            let (mut s10, mut s11) = (hsum_epi32(c10), hsum_epi32(c11));
            for i in chunks * 16..n {
                let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
                let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
                s00 += x0 * y0;
                s01 += x0 * y1;
                s10 += x1 * y0;
                s11 += x1 * y1;
            }
            (s00, s01, s10, s11)
        }
    }

    pub fn gemm2_i8(a0: &[i8], a1: &[i8], bt: &[i8], k: usize, out0: &mut [i32], out1: &mut [i32]) {
        // Direct (inlinable) calls into this module's dot kernels: the panel
        // form buys SSE2 the loss of the per-tile function-pointer dispatch,
        // which is already most of the win at 128-bit width.
        let n = out0.len().min(out1.len()).min(bt.len() / k.max(1));
        let (a0, a1) = (&a0[..k], &a1[..k]);
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let (s00, s01, s10, s11) = dot4_i8(a0, a1, b0, b1);
            out0[j] += s00;
            out0[j + 1] += s01;
            out1[j] += s10;
            out1[j + 1] += s11;
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out0[j] += dot_i8(a0, b0);
            out1[j] += dot_i8(a1, b0);
        }
    }

    pub fn axpy_f32(a: f32, b: &[f32], out: &mut [f32]) {
        let n = b.len().min(out.len());
        // SAFETY: as `dot_i16`. Separate multiply and add (no FMA), so each
        // lane computes exactly the scalar `out[j] += a * b[j]`.
        unsafe {
            let va = _mm_set1_ps(a);
            let chunks = n / 4;
            for i in 0..chunks {
                let p = i * 4;
                let vb = _mm_loadu_ps(b.as_ptr().add(p));
                let vo = _mm_loadu_ps(out.as_ptr().add(p));
                _mm_storeu_ps(out.as_mut_ptr().add(p), _mm_add_ps(vo, _mm_mul_ps(va, vb)));
            }
            for i in chunks * 4..n {
                *out.get_unchecked_mut(i) += a * *b.get_unchecked(i);
            }
        }
    }
}

/// 256-bit AVX2 kernels. Only reachable through [`kernels_for`], which
/// verifies `avx2` support first.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Exact horizontal sum of the eight i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        _mm_cvtsi128_si32(_mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b01)))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i16_impl(a: &[i16], b: &[i16]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let pairs = n / 32;
        for i in 0..pairs {
            let p = i * 32;
            let va0 = _mm256_loadu_si256(a.as_ptr().add(p) as *const __m256i);
            let vb0 = _mm256_loadu_si256(b.as_ptr().add(p) as *const __m256i);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va0, vb0));
            let va1 = _mm256_loadu_si256(a.as_ptr().add(p + 16) as *const __m256i);
            let vb1 = _mm256_loadu_si256(b.as_ptr().add(p + 16) as *const __m256i);
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va1, vb1));
        }
        let mut done = pairs * 32;
        if done + 16 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(done) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(done) as *const __m256i);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, vb));
            done += 16;
        }
        let mut sum = hsum_epi32(_mm256_add_epi32(acc0, acc1));
        for i in done..n {
            sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        sum
    }

    pub fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
        // SAFETY: this table entry is only constructed after `avx2` was
        // runtime-detected; loads are unaligned and bounds-checked inside.
        unsafe { dot_i16_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot4_i16_impl(
        a0: &[i16],
        a1: &[i16],
        b0: &[i16],
        b1: &[i16],
    ) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let mut c00 = _mm256_setzero_si256();
        let mut c01 = _mm256_setzero_si256();
        let mut c10 = _mm256_setzero_si256();
        let mut c11 = _mm256_setzero_si256();
        let chunks = n / 16;
        for i in 0..chunks {
            let p = i * 16;
            let va0 = _mm256_loadu_si256(a0.as_ptr().add(p) as *const __m256i);
            let va1 = _mm256_loadu_si256(a1.as_ptr().add(p) as *const __m256i);
            let vb0 = _mm256_loadu_si256(b0.as_ptr().add(p) as *const __m256i);
            let vb1 = _mm256_loadu_si256(b1.as_ptr().add(p) as *const __m256i);
            c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(va0, vb0));
            c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(va0, vb1));
            c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(va1, vb0));
            c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(va1, vb1));
        }
        let (mut s00, mut s01) = (hsum_epi32(c00), hsum_epi32(c01));
        let (mut s10, mut s11) = (hsum_epi32(c10), hsum_epi32(c11));
        for i in chunks * 16..n {
            let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
            let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn dot4_i16(a0: &[i16], a1: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32, i32, i32) {
        // SAFETY: as `dot_i16`.
        unsafe { dot4_i16_impl(a0, a1, b0, b1) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_impl(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let pairs = n / 32;
        for i in 0..pairs {
            let p = i * 32;
            // `vpmovsxbw`: 16 sign-extended i8→i16 lanes per load.
            let va0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p) as *const __m128i));
            let vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p) as *const __m128i));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va0, vb0));
            let va1 =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p + 16) as *const __m128i));
            let vb1 =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p + 16) as *const __m128i));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va1, vb1));
        }
        let mut done = pairs * 32;
        if done + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(done) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(done) as *const __m128i));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, vb));
            done += 16;
        }
        let mut sum = hsum_epi32(_mm256_add_epi32(acc0, acc1));
        for i in done..n {
            sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        sum
    }

    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: as `dot_i16`.
        unsafe { dot_i8_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot4_i8_impl(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let mut c00 = _mm256_setzero_si256();
        let mut c01 = _mm256_setzero_si256();
        let mut c10 = _mm256_setzero_si256();
        let mut c11 = _mm256_setzero_si256();
        let chunks = n / 16;
        for i in 0..chunks {
            let p = i * 16;
            let va0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a0.as_ptr().add(p) as *const __m128i));
            let va1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a1.as_ptr().add(p) as *const __m128i));
            let vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.as_ptr().add(p) as *const __m128i));
            let vb1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.as_ptr().add(p) as *const __m128i));
            c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(va0, vb0));
            c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(va0, vb1));
            c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(va1, vb0));
            c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(va1, vb1));
        }
        let (mut s00, mut s01) = (hsum_epi32(c00), hsum_epi32(c01));
        let (mut s10, mut s11) = (hsum_epi32(c10), hsum_epi32(c11));
        for i in chunks * 16..n {
            let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
            let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn dot4_i8(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        // SAFETY: as `dot_i16`.
        unsafe { dot4_i8_impl(a0, a1, b0, b1) }
    }

    /// Reduces four 8-lane i32 accumulators to their four exact horizontal
    /// sums `[Σc00, Σc01, Σc10, Σc11]` with two `hadd` levels — ~6
    /// instructions for what four independent `hsum_epi32` calls spend ~24
    /// on. Integer addition is associative, so the tree order is exact.
    #[inline]
    unsafe fn hsum4_epi32(c00: __m256i, c01: __m256i, c10: __m256i, c11: __m256i) -> __m128i {
        let t0 = _mm256_hadd_epi32(c00, c01);
        let t1 = _mm256_hadd_epi32(c10, c11);
        let t2 = _mm256_hadd_epi32(t0, t1);
        _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256(t2, 1))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemm2_i8_impl(
        a0: &[i8],
        a1: &[i8],
        bt: &[i8],
        k: usize,
        out0: &mut [i32],
        out1: &mut [i32],
    ) {
        let n = out0.len().min(out1.len()).min(bt.len() / k.max(1));
        let chunks = k / 16;
        let done = chunks * 16;
        let mut j = 0;
        while j + 2 <= n {
            let b0 = bt.as_ptr().add(j * k);
            let b1 = bt.as_ptr().add((j + 1) * k);
            let mut c00 = _mm256_setzero_si256();
            let mut c01 = _mm256_setzero_si256();
            let mut c10 = _mm256_setzero_si256();
            let mut c11 = _mm256_setzero_si256();
            for i in 0..chunks {
                let p = i * 16;
                let va0 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(a0.as_ptr().add(p) as *const __m128i));
                let va1 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(a1.as_ptr().add(p) as *const __m128i));
                let vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.add(p) as *const __m128i));
                let vb1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.add(p) as *const __m128i));
                c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(va0, vb0));
                c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(va0, vb1));
                c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(va1, vb0));
                c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(va1, vb1));
            }
            let mut sums = [0i32; 4];
            _mm_storeu_si128(
                sums.as_mut_ptr() as *mut __m128i,
                hsum4_epi32(c00, c01, c10, c11),
            );
            for i in done..k {
                let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
                let (y0, y1) = (*b0.add(i) as i32, *b1.add(i) as i32);
                sums[0] += x0 * y0;
                sums[1] += x0 * y1;
                sums[2] += x1 * y0;
                sums[3] += x1 * y1;
            }
            *out0.get_unchecked_mut(j) += sums[0];
            *out0.get_unchecked_mut(j + 1) += sums[1];
            *out1.get_unchecked_mut(j) += sums[2];
            *out1.get_unchecked_mut(j + 1) += sums[3];
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out0[j] += dot_i8(&a0[..k], b0);
            out1[j] += dot_i8(&a1[..k], b0);
        }
    }

    pub fn gemm2_i8(a0: &[i8], a1: &[i8], bt: &[i8], k: usize, out0: &mut [i32], out1: &mut [i32]) {
        assert!(a0.len() >= k && a1.len() >= k, "gemm2_i8: lhs rows short");
        // SAFETY: as `dot_i16`; the column count is clamped to what `bt` and
        // both out rows can hold, and the lhs length is asserted above.
        unsafe { gemm2_i8_impl(a0, a1, bt, k, out0, out1) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i32_impl(a: &[i32], b: &[i32]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let chunks = n / 8;
        for i in 0..chunks {
            let p = i * 8;
            let va = _mm256_loadu_si256(a.as_ptr().add(p) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(p) as *const __m256i);
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(va, vb));
        }
        let mut sum = hsum_epi32(acc);
        for i in chunks * 8..n {
            sum += *a.get_unchecked(i) * *b.get_unchecked(i);
        }
        sum
    }

    pub fn dot_i32(a: &[i32], b: &[i32]) -> i32 {
        // SAFETY: as `dot_i16`.
        unsafe { dot_i32_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_i32_impl(a: i32, b: &[i32], out: &mut [i32]) {
        let n = b.len().min(out.len());
        let va = _mm256_set1_epi32(a);
        let chunks = n / 8;
        for i in 0..chunks {
            let p = i * 8;
            let vb = _mm256_loadu_si256(b.as_ptr().add(p) as *const __m256i);
            let vo = _mm256_loadu_si256(out.as_ptr().add(p) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(p) as *mut __m256i,
                _mm256_add_epi32(vo, _mm256_mullo_epi32(va, vb)),
            );
        }
        for i in chunks * 8..n {
            *out.get_unchecked_mut(i) += a * *b.get_unchecked(i);
        }
    }

    pub fn axpy_i32(a: i32, b: &[i32], out: &mut [i32]) {
        // SAFETY: as `dot_i16`.
        unsafe { axpy_i32_impl(a, b, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_f32_impl(a: f32, b: &[f32], out: &mut [f32]) {
        let n = b.len().min(out.len());
        let va = _mm256_set1_ps(a);
        let chunks = n / 8;
        for i in 0..chunks {
            let p = i * 8;
            let vb = _mm256_loadu_ps(b.as_ptr().add(p));
            let vo = _mm256_loadu_ps(out.as_ptr().add(p));
            // Separate multiply and add (no FMA) so every lane matches the
            // scalar `out[j] += a * b[j]` rounding exactly.
            _mm256_storeu_ps(
                out.as_mut_ptr().add(p),
                _mm256_add_ps(vo, _mm256_mul_ps(va, vb)),
            );
        }
        for i in chunks * 8..n {
            *out.get_unchecked_mut(i) += a * *b.get_unchecked(i);
        }
    }

    pub fn axpy_f32(a: f32, b: &[f32], out: &mut [f32]) {
        // SAFETY: as `dot_i16`.
        unsafe { axpy_f32_impl(a, b, out) }
    }
}

/// 512-bit kernels (`avx512f` + `avx512bw`). Only reachable through
/// [`kernels_for`], which verifies support first.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn dot_i16_impl(a: &[i16], b: &[i16]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let pairs = n / 64;
        for i in 0..pairs {
            let p = i * 64;
            let va0 = _mm512_loadu_si512(a.as_ptr().add(p) as *const __m512i);
            let vb0 = _mm512_loadu_si512(b.as_ptr().add(p) as *const __m512i);
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va0, vb0));
            let va1 = _mm512_loadu_si512(a.as_ptr().add(p + 32) as *const __m512i);
            let vb1 = _mm512_loadu_si512(b.as_ptr().add(p + 32) as *const __m512i);
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va1, vb1));
        }
        let mut done = pairs * 64;
        if done + 32 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(done) as *const __m512i);
            let vb = _mm512_loadu_si512(b.as_ptr().add(done) as *const __m512i);
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, vb));
            done += 32;
        }
        let mut sum = _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1));
        for i in done..n {
            sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        sum
    }

    pub fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
        // SAFETY: this table entry is only constructed after `avx512f` and
        // `avx512bw` were runtime-detected; loads are unaligned and
        // bounds-checked inside.
        unsafe { dot_i16_impl(a, b) }
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn dot4_i16_impl(
        a0: &[i16],
        a1: &[i16],
        b0: &[i16],
        b1: &[i16],
    ) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let mut c00 = _mm512_setzero_si512();
        let mut c01 = _mm512_setzero_si512();
        let mut c10 = _mm512_setzero_si512();
        let mut c11 = _mm512_setzero_si512();
        let chunks = n / 32;
        for i in 0..chunks {
            let p = i * 32;
            let va0 = _mm512_loadu_si512(a0.as_ptr().add(p) as *const __m512i);
            let va1 = _mm512_loadu_si512(a1.as_ptr().add(p) as *const __m512i);
            let vb0 = _mm512_loadu_si512(b0.as_ptr().add(p) as *const __m512i);
            let vb1 = _mm512_loadu_si512(b1.as_ptr().add(p) as *const __m512i);
            c00 = _mm512_add_epi32(c00, _mm512_madd_epi16(va0, vb0));
            c01 = _mm512_add_epi32(c01, _mm512_madd_epi16(va0, vb1));
            c10 = _mm512_add_epi32(c10, _mm512_madd_epi16(va1, vb0));
            c11 = _mm512_add_epi32(c11, _mm512_madd_epi16(va1, vb1));
        }
        let (mut s00, mut s01) = (_mm512_reduce_add_epi32(c00), _mm512_reduce_add_epi32(c01));
        let (mut s10, mut s11) = (_mm512_reduce_add_epi32(c10), _mm512_reduce_add_epi32(c11));
        for i in chunks * 32..n {
            let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
            let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn dot4_i16(a0: &[i16], a1: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32, i32, i32) {
        // SAFETY: as `dot_i16`.
        unsafe { dot4_i16_impl(a0, a1, b0, b1) }
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn dot_i8_impl(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let pairs = n / 64;
        for i in 0..pairs {
            let p = i * 64;
            // 512-bit `vpmovsxbw`: 32 sign-extended i8→i16 lanes per load.
            let va0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(p) as *const __m256i));
            let vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(p) as *const __m256i));
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va0, vb0));
            let va1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(p + 32) as *const __m256i));
            let vb1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(p + 32) as *const __m256i));
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va1, vb1));
        }
        let mut done = pairs * 64;
        if done + 32 <= n {
            let va =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(done) as *const __m256i));
            let vb =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(done) as *const __m256i));
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, vb));
            done += 32;
        }
        let mut sum = _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1));
        for i in done..n {
            sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        sum
    }

    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: as `dot_i16`.
        unsafe { dot_i8_impl(a, b) }
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn dot4_i8_impl(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        let n = a0.len().min(a1.len()).min(b0.len()).min(b1.len());
        let mut c00 = _mm512_setzero_si512();
        let mut c01 = _mm512_setzero_si512();
        let mut c10 = _mm512_setzero_si512();
        let mut c11 = _mm512_setzero_si512();
        let chunks = n / 32;
        for i in 0..chunks {
            let p = i * 32;
            let va0 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(a0.as_ptr().add(p) as *const __m256i));
            let va1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(a1.as_ptr().add(p) as *const __m256i));
            let vb0 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(b0.as_ptr().add(p) as *const __m256i));
            let vb1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(b1.as_ptr().add(p) as *const __m256i));
            c00 = _mm512_add_epi32(c00, _mm512_madd_epi16(va0, vb0));
            c01 = _mm512_add_epi32(c01, _mm512_madd_epi16(va0, vb1));
            c10 = _mm512_add_epi32(c10, _mm512_madd_epi16(va1, vb0));
            c11 = _mm512_add_epi32(c11, _mm512_madd_epi16(va1, vb1));
        }
        let (mut s00, mut s01) = (_mm512_reduce_add_epi32(c00), _mm512_reduce_add_epi32(c01));
        let (mut s10, mut s11) = (_mm512_reduce_add_epi32(c10), _mm512_reduce_add_epi32(c11));
        for i in chunks * 32..n {
            let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
            let (y0, y1) = (*b0.get_unchecked(i) as i32, *b1.get_unchecked(i) as i32);
            s00 += x0 * y0;
            s01 += x0 * y1;
            s10 += x1 * y0;
            s11 += x1 * y1;
        }
        (s00, s01, s10, s11)
    }

    pub fn dot4_i8(a0: &[i8], a1: &[i8], b0: &[i8], b1: &[i8]) -> (i32, i32, i32, i32) {
        // SAFETY: as `dot_i16`.
        unsafe { dot4_i8_impl(a0, a1, b0, b1) }
    }

    /// Folds a 16-lane i32 accumulator to 8 lanes (exact: integer addition).
    #[inline]
    unsafe fn fold_epi32(v: __m512i) -> __m256i {
        _mm256_add_epi32(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64(v, 1))
    }

    /// Reduces four folded accumulators to `[Σc00, Σc01, Σc10, Σc11]` with
    /// two `hadd` levels (cf. the AVX2 table's `hsum4_epi32`). AVX-512
    /// implies AVX2, so the 256-bit `hadd` forms are always available here.
    #[inline]
    unsafe fn hsum4_epi32(c00: __m256i, c01: __m256i, c10: __m256i, c11: __m256i) -> __m128i {
        let t0 = _mm256_hadd_epi32(c00, c01);
        let t1 = _mm256_hadd_epi32(c10, c11);
        let t2 = _mm256_hadd_epi32(t0, t1);
        _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256(t2, 1))
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx2")]
    unsafe fn gemm2_i8_impl(
        a0: &[i8],
        a1: &[i8],
        bt: &[i8],
        k: usize,
        out0: &mut [i32],
        out1: &mut [i32],
    ) {
        let n = out0.len().min(out1.len()).min(bt.len() / k.max(1));
        let chunks = k / 32;
        let done = chunks * 32;
        let mut j = 0;
        while j + 2 <= n {
            let b0 = bt.as_ptr().add(j * k);
            let b1 = bt.as_ptr().add((j + 1) * k);
            let mut c00 = _mm512_setzero_si512();
            let mut c01 = _mm512_setzero_si512();
            let mut c10 = _mm512_setzero_si512();
            let mut c11 = _mm512_setzero_si512();
            for i in 0..chunks {
                let p = i * 32;
                let va0 =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(a0.as_ptr().add(p) as *const __m256i));
                let va1 =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(a1.as_ptr().add(p) as *const __m256i));
                let vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b0.add(p) as *const __m256i));
                let vb1 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b1.add(p) as *const __m256i));
                c00 = _mm512_add_epi32(c00, _mm512_madd_epi16(va0, vb0));
                c01 = _mm512_add_epi32(c01, _mm512_madd_epi16(va0, vb1));
                c10 = _mm512_add_epi32(c10, _mm512_madd_epi16(va1, vb0));
                c11 = _mm512_add_epi32(c11, _mm512_madd_epi16(va1, vb1));
            }
            let mut sums = [0i32; 4];
            _mm_storeu_si128(
                sums.as_mut_ptr() as *mut __m128i,
                hsum4_epi32(
                    fold_epi32(c00),
                    fold_epi32(c01),
                    fold_epi32(c10),
                    fold_epi32(c11),
                ),
            );
            for i in done..k {
                let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
                let (y0, y1) = (*b0.add(i) as i32, *b1.add(i) as i32);
                sums[0] += x0 * y0;
                sums[1] += x0 * y1;
                sums[2] += x1 * y0;
                sums[3] += x1 * y1;
            }
            *out0.get_unchecked_mut(j) += sums[0];
            *out0.get_unchecked_mut(j + 1) += sums[1];
            *out1.get_unchecked_mut(j) += sums[2];
            *out1.get_unchecked_mut(j + 1) += sums[3];
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out0[j] += dot_i8(&a0[..k], b0);
            out1[j] += dot_i8(&a1[..k], b0);
        }
    }

    pub fn gemm2_i8(a0: &[i8], a1: &[i8], bt: &[i8], k: usize, out0: &mut [i32], out1: &mut [i32]) {
        assert!(a0.len() >= k && a1.len() >= k, "gemm2_i8: lhs rows short");
        // SAFETY: as `dot_i16`; the column count is clamped to what `bt` and
        // both out rows can hold, and the lhs length is asserted above.
        unsafe { gemm2_i8_impl(a0, a1, bt, k, out0, out1) }
    }

    /// [`gemm2_i8`] on the AVX512-VNNI `vpdpbusd` path: rhs bytes are
    /// biased to unsigned on load (`b ^ 0x80 = b + 128`), one instruction
    /// fuses 64 u8×i8 MACs (4× the `vpmaddwd` form's per-instruction
    /// throughput, with no widening converts), and the bias is removed
    /// exactly afterwards via `Σ(b+128)·a = Σa·b + 128·Σa` — all in i32,
    /// so the result is bit-identical to the signed form.
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512vnni",
        enable = "avx2"
    )]
    unsafe fn gemm2_i8_vnni_impl(
        a0: &[i8],
        a1: &[i8],
        bt: &[i8],
        k: usize,
        out0: &mut [i32],
        out1: &mut [i32],
    ) {
        let n = out0.len().min(out1.len()).min(bt.len() / k.max(1));
        let chunks = k / 64;
        let done = chunks * 64;
        // 128·Σa over the vectorized prefix (the scalar tail multiplies
        // unbiased bytes, so it needs no correction).
        let (mut sub0, mut sub1) = (0i32, 0i32);
        for i in 0..done {
            sub0 += *a0.get_unchecked(i) as i32;
            sub1 += *a1.get_unchecked(i) as i32;
        }
        sub0 *= 128;
        sub1 *= 128;
        let flip = _mm512_set1_epi8(-128);
        let mut j = 0;
        while j + 2 <= n {
            let b0 = bt.as_ptr().add(j * k);
            let b1 = bt.as_ptr().add((j + 1) * k);
            let mut c00 = _mm512_setzero_si512();
            let mut c01 = _mm512_setzero_si512();
            let mut c10 = _mm512_setzero_si512();
            let mut c11 = _mm512_setzero_si512();
            for i in 0..chunks {
                let p = i * 64;
                let va0 = _mm512_loadu_si512(a0.as_ptr().add(p) as *const __m512i);
                let va1 = _mm512_loadu_si512(a1.as_ptr().add(p) as *const __m512i);
                let vb0 = _mm512_xor_si512(_mm512_loadu_si512(b0.add(p) as *const __m512i), flip);
                let vb1 = _mm512_xor_si512(_mm512_loadu_si512(b1.add(p) as *const __m512i), flip);
                c00 = _mm512_dpbusd_epi32(c00, vb0, va0);
                c01 = _mm512_dpbusd_epi32(c01, vb1, va0);
                c10 = _mm512_dpbusd_epi32(c10, vb0, va1);
                c11 = _mm512_dpbusd_epi32(c11, vb1, va1);
            }
            let mut sums = [0i32; 4];
            _mm_storeu_si128(
                sums.as_mut_ptr() as *mut __m128i,
                hsum4_epi32(
                    fold_epi32(c00),
                    fold_epi32(c01),
                    fold_epi32(c10),
                    fold_epi32(c11),
                ),
            );
            for i in done..k {
                let (x0, x1) = (*a0.get_unchecked(i) as i32, *a1.get_unchecked(i) as i32);
                let (y0, y1) = (*b0.add(i) as i32, *b1.add(i) as i32);
                sums[0] += x0 * y0;
                sums[1] += x0 * y1;
                sums[2] += x1 * y0;
                sums[3] += x1 * y1;
            }
            *out0.get_unchecked_mut(j) += sums[0] - sub0;
            *out0.get_unchecked_mut(j + 1) += sums[1] - sub0;
            *out1.get_unchecked_mut(j) += sums[2] - sub1;
            *out1.get_unchecked_mut(j + 1) += sums[3] - sub1;
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            out0[j] += dot_i8(&a0[..k], b0);
            out1[j] += dot_i8(&a1[..k], b0);
        }
    }

    pub fn gemm2_i8_vnni(
        a0: &[i8],
        a1: &[i8],
        bt: &[i8],
        k: usize,
        out0: &mut [i32],
        out1: &mut [i32],
    ) {
        assert!(a0.len() >= k && a1.len() >= k, "gemm2_i8: lhs rows short");
        // SAFETY: as `gemm2_i8`; only installed in the table when
        // `avx512vnni` is detected.
        unsafe { gemm2_i8_vnni_impl(a0, a1, bt, k, out0, out1) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn dot_i32_impl(a: &[i32], b: &[i32]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = _mm512_setzero_si512();
        let chunks = n / 16;
        for i in 0..chunks {
            let p = i * 16;
            let va = _mm512_loadu_si512(a.as_ptr().add(p) as *const __m512i);
            let vb = _mm512_loadu_si512(b.as_ptr().add(p) as *const __m512i);
            acc = _mm512_add_epi32(acc, _mm512_mullo_epi32(va, vb));
        }
        let mut sum = _mm512_reduce_add_epi32(acc);
        for i in chunks * 16..n {
            sum += *a.get_unchecked(i) * *b.get_unchecked(i);
        }
        sum
    }

    pub fn dot_i32(a: &[i32], b: &[i32]) -> i32 {
        // SAFETY: as `dot_i16` (only `avx512f` needed here).
        unsafe { dot_i32_impl(a, b) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_i32_impl(a: i32, b: &[i32], out: &mut [i32]) {
        let n = b.len().min(out.len());
        let va = _mm512_set1_epi32(a);
        let chunks = n / 16;
        for i in 0..chunks {
            let p = i * 16;
            let vb = _mm512_loadu_si512(b.as_ptr().add(p) as *const __m512i);
            let vo = _mm512_loadu_si512(out.as_ptr().add(p) as *const __m512i);
            _mm512_storeu_si512(
                out.as_mut_ptr().add(p) as *mut __m512i,
                _mm512_add_epi32(vo, _mm512_mullo_epi32(va, vb)),
            );
        }
        for i in chunks * 16..n {
            *out.get_unchecked_mut(i) += a * *b.get_unchecked(i);
        }
    }

    pub fn axpy_i32(a: i32, b: &[i32], out: &mut [i32]) {
        // SAFETY: as `dot_i32`.
        unsafe { axpy_i32_impl(a, b, out) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_f32_impl(a: f32, b: &[f32], out: &mut [f32]) {
        let n = b.len().min(out.len());
        let va = _mm512_set1_ps(a);
        let chunks = n / 16;
        for i in 0..chunks {
            let p = i * 16;
            let vb = _mm512_loadu_ps(b.as_ptr().add(p));
            let vo = _mm512_loadu_ps(out.as_ptr().add(p));
            // Separate multiply and add (no FMA): lane-exact vs scalar.
            _mm512_storeu_ps(
                out.as_mut_ptr().add(p),
                _mm512_add_ps(vo, _mm512_mul_ps(va, vb)),
            );
        }
        for i in chunks * 16..n {
            *out.get_unchecked_mut(i) += a * *b.get_unchecked(i);
        }
    }

    pub fn axpy_f32(a: f32, b: &[f32], out: &mut [f32]) {
        // SAFETY: as `dot_i32`.
        unsafe { axpy_f32_impl(a, b, out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_parse_and_display_round_trip() {
        for isa in Isa::all() {
            assert_eq!(isa.to_string().parse::<Isa>().unwrap(), isa);
        }
        assert_eq!("AVX2".parse::<Isa>().unwrap(), Isa::Avx2);
        assert!("avx9000".parse::<Isa>().is_err());
    }

    #[test]
    fn isa_levels_are_ordered() {
        assert!(Isa::Scalar < Isa::Sse2);
        assert!(Isa::Sse2 < Isa::Avx2);
        assert!(Isa::Avx2 < Isa::Avx512);
        assert!(Isa::Scalar.is_supported());
    }

    /// The CI ISA matrix sets `EDEN_ISA` and relies on the dispatcher either
    /// honoring it or aborting — a silent fallback would make the matrix
    /// meaningless. With no override, the active table must match detection.
    #[test]
    fn active_isa_honors_eden_isa_override() {
        match std::env::var("EDEN_ISA") {
            Ok(v) => assert_eq!(
                active_isa(),
                v.parse::<Isa>().expect("EDEN_ISA must name a valid ISA"),
                "dispatcher fell back from EDEN_ISA={v}"
            ),
            Err(_) => assert_eq!(active_isa(), Isa::detect()),
        }
    }

    #[test]
    fn every_supported_table_matches_scalar_on_a_smoke_vector() {
        let a16: Vec<i16> = (0..131).map(|i| (i * 37 % 255) as i16 - 127).collect();
        let b16: Vec<i16> = (0..131).map(|i| (i * 53 % 255) as i16 - 127).collect();
        let a8: Vec<i8> = a16.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b16.iter().map(|&v| v as i8).collect();
        let reference = (scalar::dot_i16(&a16, &b16), scalar::dot_i8(&a8, &b8));
        for isa in Isa::all().into_iter().filter(|i| i.is_supported()) {
            let k = kernels_for(isa);
            assert_eq!((k.dot_i16)(&a16, &b16), reference.0, "{isa} dot_i16");
            assert_eq!((k.dot_i8)(&a8, &b8), reference.1, "{isa} dot_i8");
        }
    }

    /// Every ISA's panel kernel must reproduce the scalar sums bit for bit —
    /// across odd column counts, k values that leave scalar tails, and the
    /// full corrupted i8 domain (±128).
    #[test]
    fn gemm2_i8_matches_scalar_on_every_supported_table() {
        for (k, n) in [(1usize, 5usize), (16, 8), (27, 7), (64, 32), (108, 33)] {
            let a0: Vec<i8> = (0..k).map(|i| ((i * 97 + 13) % 256) as u8 as i8).collect();
            let a1: Vec<i8> = (0..k).map(|i| ((i * 41 + 128) % 256) as u8 as i8).collect();
            let bt: Vec<i8> = (0..n * k)
                .map(|i| ((i * 61 + 7) % 256) as u8 as i8)
                .collect();
            let mut want0 = vec![3i32; n];
            let mut want1 = vec![-5i32; n];
            scalar::gemm2_i8(&a0, &a1, &bt, k, &mut want0, &mut want1);
            for isa in Isa::all().into_iter().filter(|i| i.is_supported()) {
                let kr = kernels_for(isa);
                let mut got0 = vec![3i32; n];
                let mut got1 = vec![-5i32; n];
                (kr.gemm2_i8)(&a0, &a1, &bt, k, &mut got0, &mut got1);
                assert_eq!(got0, want0, "{isa} gemm2_i8 row0 at k={k} n={n}");
                assert_eq!(got1, want1, "{isa} gemm2_i8 row1 at k={k} n={n}");
            }
        }
    }

    /// The exactness hole that rules out the `pmaddubsw` sign-trick:
    /// `(-128)·(-128)` must come out `+16384` on every path.
    #[test]
    fn i8_kernels_are_exact_at_negative_saturation() {
        let a = vec![-128i8; 33];
        let b = vec![-128i8; 33];
        let expected = 33 * 16384;
        for isa in Isa::all().into_iter().filter(|i| i.is_supported()) {
            let k = kernels_for(isa);
            assert_eq!((k.dot_i8)(&a, &b), expected, "{isa} dot_i8 at -128×-128");
            let (s00, s01, s10, s11) = (k.dot4_i8)(&a, &b, &a, &b);
            assert_eq!(
                (s00, s01, s10, s11),
                (expected, expected, expected, expected),
                "{isa} dot4_i8 at -128×-128"
            );
        }
    }
}
