//! Bit-level helpers for stored value representations.
//!
//! Approximate DRAM corrupts the *stored* bits of a value, so the EDEN
//! reproduction needs to flip bits of the exact representation a value would
//! have in memory: IEEE-754 for `f32`, sign-extended two's complement for the
//! integer precisions.

/// Flips bit `bit` (0 = LSB) of an `f32` and returns the resulting value.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    assert!(bit < 32, "f32 has 32 bits, got bit index {bit}");
    f32::from_bits(value.to_bits() ^ (1 << bit))
}

/// Flips bit `bit` (0 = LSB) of a two's complement integer of `width` bits
/// stored in an `i32`, and returns the new (sign-extended) integer value.
///
/// # Panics
///
/// Panics if `bit >= width` or `width` is 0 or greater than 32.
pub fn flip_bit_int(value: i32, bit: u32, width: u32) -> i32 {
    assert!(width > 0 && width <= 32, "invalid integer width {width}");
    assert!(bit < width, "bit {bit} out of range for width {width}");
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let stored = (value as u32) & mask;
    let flipped = stored ^ (1 << bit);
    sign_extend(flipped, width)
}

/// Sign-extends the low `width` bits of `stored` to an `i32`.
pub fn sign_extend(stored: u32, width: u32) -> i32 {
    if width == 32 {
        return stored as i32;
    }
    let sign_bit = 1u32 << (width - 1);
    if stored & sign_bit != 0 {
        (stored | !((1u32 << width) - 1)) as i32
    } else {
        stored as i32
    }
}

/// Extracts bit `bit` of the low `width` bits of a stored pattern.
pub fn get_bit(stored: u32, bit: u32) -> bool {
    (stored >> bit) & 1 == 1
}

/// Number of differing bits between two `width`-bit patterns.
pub fn hamming_distance(a: u32, b: u32, width: u32) -> u32 {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    ((a ^ b) & mask).count_ones()
}

/// Number of set bits in the low `width` bits.
pub fn popcount(stored: u32, width: u32) -> u32 {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    (stored & mask).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_f32_sign_bit_negates() {
        let v = flip_bit_f32(1.5, 31);
        assert_eq!(v, -1.5);
    }

    #[test]
    fn flip_f32_exponent_bit_explodes() {
        // Flipping the top exponent bit of a small number produces an
        // implausibly large value — the accuracy-collapse mechanism the paper
        // describes in Section 3.2.
        let v = flip_bit_f32(1.0, 30);
        assert!(v.abs() > 1e30);
    }

    #[test]
    fn flip_f32_twice_restores() {
        for bit in 0..32 {
            let v = 0.37f32;
            assert_eq!(flip_bit_f32(flip_bit_f32(v, bit), bit), v);
        }
    }

    #[test]
    fn int_flip_msb_changes_sign() {
        assert_eq!(flip_bit_int(1, 7, 8), 1 - 128);
        assert_eq!(flip_bit_int(-1, 7, 8), 127);
    }

    #[test]
    fn int_flip_lsb() {
        assert_eq!(flip_bit_int(4, 0, 8), 5);
        assert_eq!(flip_bit_int(5, 0, 8), 4);
    }

    #[test]
    fn int_flip_twice_restores() {
        for width in [4u32, 8, 16] {
            let lo = -(1i32 << (width - 1));
            let hi = (1i32 << (width - 1)) - 1;
            for v in [lo, -1, 0, 1, hi] {
                for bit in 0..width {
                    assert_eq!(flip_bit_int(flip_bit_int(v, bit, width), bit, width), v);
                }
            }
        }
    }

    #[test]
    fn sign_extend_negative() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0b0111, 4), 7);
    }

    #[test]
    fn hamming_and_popcount() {
        assert_eq!(hamming_distance(0b1010, 0b0110, 4), 2);
        assert_eq!(popcount(0xFF, 8), 8);
        assert_eq!(popcount(0xFF, 4), 4);
    }

    #[test]
    fn get_bit_reads_pattern() {
        assert!(get_bit(0b100, 2));
        assert!(!get_bit(0b100, 1));
    }
}
