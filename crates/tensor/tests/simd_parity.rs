//! Bit-for-bit parity of every dispatched SIMD kernel against the scalar
//! reference, at every ISA level this CPU supports.
//!
//! The repo's determinism contract says results never depend on which
//! kernel table happened to be resolved, so each property here runs the
//! same inputs through `kernels_for(isa)` for all supported levels and
//! requires exact equality with `kernels_for(Isa::Scalar)`. Inputs cover
//! ragged lengths (not multiples of any lane width), unaligned slice
//! offsets, and the negative/saturating corners of the corrupted quantized
//! domain (notably `-128`, where the `pmaddubsw` sign-trick would break —
//! see `eden_tensor::simd`).

use eden_tensor::ops;
use eden_tensor::simd::{kernels_for, Isa, Kernels};
use proptest::prelude::*;

/// Every kernel table this CPU can run, scalar first.
fn supported_tables() -> Vec<Kernels> {
    Isa::all()
        .into_iter()
        .filter(|isa| isa.is_supported())
        .map(kernels_for)
        .collect()
}

/// The corrupted int8 domain: bit flips can produce any pattern, so the
/// saturating corners (`-128` in particular) must be as common as the
/// interior.
const I8_EXTREMES: [i8; 8] = [-128, -127, -64, -1, 0, 1, 126, 127];

/// Values for the i16-storage kernels. The production operands are int4/
/// int8 (|q| ≤ 128), but anything with `k · q² < 2³¹` is inside the
/// kernels' overflow contract — ±2048 at the generated lengths stays well
/// below it while exercising magnitudes the production path never sees.
fn i16_operand() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(-2048i32..2049, 1..200)
}

fn i8_operand() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(-128i32..128, 1..200)
}

proptest! {
    /// Widening dot kernels (i16/i8/i32 storage), including the 2×2-blocked
    /// forms, under ragged lengths and unaligned offsets.
    #[test]
    fn dot_kernels_match_scalar_at_every_isa(
        xs in i16_operand(),
        ys in i16_operand(),
        off in 0usize..8,
    ) {
        let n = xs.len().min(ys.len());
        let off = off.min(n.saturating_sub(1));
        let a16: Vec<i16> = xs.iter().map(|&v| v as i16).collect();
        let b16: Vec<i16> = ys.iter().map(|&v| v as i16).collect();
        // Same bit patterns folded into i8/i32 storage (i8 via truncation —
        // still a valid corrupted-domain value).
        let a8: Vec<i8> = xs.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = ys.iter().map(|&v| v as i8).collect();
        let a32: Vec<i32> = a8.iter().map(|&v| v as i32).collect();
        let b32: Vec<i32> = b8.iter().map(|&v| v as i32).collect();

        let tables = supported_tables();
        let scalar = &tables[0];
        let r16 = (scalar.dot_i16)(&a16[off..], &b16[off..]);
        let r8 = (scalar.dot_i8)(&a8[off..], &b8[off..]);
        let r32 = (scalar.dot_i32)(&a32[off..], &b32[off..]);
        let r4_16 = (scalar.dot4_i16)(&a16[off..], &b16[off..], &b16[off..], &a16[off..]);
        let r4_8 = (scalar.dot4_i8)(&a8[off..], &b8[off..], &b8[off..], &a8[off..]);
        for t in &tables[1..] {
            prop_assert_eq!((t.dot_i16)(&a16[off..], &b16[off..]), r16, "{} dot_i16", t.isa);
            prop_assert_eq!((t.dot_i8)(&a8[off..], &b8[off..]), r8, "{} dot_i8", t.isa);
            prop_assert_eq!((t.dot_i32)(&a32[off..], &b32[off..]), r32, "{} dot_i32", t.isa);
            prop_assert_eq!(
                (t.dot4_i16)(&a16[off..], &b16[off..], &b16[off..], &a16[off..]),
                r4_16,
                "{} dot4_i16",
                t.isa
            );
            prop_assert_eq!(
                (t.dot4_i8)(&a8[off..], &b8[off..], &b8[off..], &a8[off..]),
                r4_8,
                "{} dot4_i8",
                t.isa
            );
        }
    }

    /// The saturating corners of the corrupted int8 domain, dense: every
    /// element is drawn from the extreme set (−128 included), so the
    /// sign-extension of every wide path is exercised where approximations
    /// would diverge.
    #[test]
    fn i8_dots_are_exact_on_saturating_inputs(
        picks in prop::collection::vec((0usize..8, 0usize..8), 1..150),
        off in 0usize..4,
    ) {
        let a: Vec<i8> = picks.iter().map(|&(i, _)| I8_EXTREMES[i]).collect();
        let b: Vec<i8> = picks.iter().map(|&(_, j)| I8_EXTREMES[j]).collect();
        let off = off.min(a.len() - 1);
        let tables = supported_tables();
        let reference = (tables[0].dot_i8)(&a[off..], &b[off..]);
        let reference4 = (tables[0].dot4_i8)(&a[off..], &b[off..], &b[off..], &a[off..]);
        for t in &tables[1..] {
            prop_assert_eq!((t.dot_i8)(&a[off..], &b[off..]), reference, "{} dot_i8", t.isa);
            prop_assert_eq!(
                (t.dot4_i8)(&a[off..], &b[off..], &b[off..], &a[off..]),
                reference4,
                "{} dot4_i8",
                t.isa
            );
        }
    }

    /// Row-update kernels: i32 exactly, f32 bit-for-bit (the wide forms use
    /// separate multiply and add, so each lane must round identically to
    /// the scalar loop).
    #[test]
    fn axpy_kernels_match_scalar_at_every_isa(
        xs in i8_operand(),
        scale in -100.0f32..100.0,
        off in 0usize..8,
    ) {
        let off = off.min(xs.len() - 1);
        let b32 = &xs[off..];
        let bf: Vec<f32> = b32.iter().map(|&v| v as f32 * 0.37).collect();
        let a32 = (scale as i32).clamp(-99, 99);

        let tables = supported_tables();
        let mut out32 = vec![3i32; b32.len()];
        (tables[0].axpy_i32)(a32, b32, &mut out32);
        let mut outf = vec![0.125f32; bf.len()];
        (tables[0].axpy_f32)(scale, &bf, &mut outf);
        for t in &tables[1..] {
            let mut got32 = vec![3i32; b32.len()];
            (t.axpy_i32)(a32, b32, &mut got32);
            prop_assert_eq!(&got32, &out32, "{} axpy_i32", t.isa);
            let mut gotf = vec![0.125f32; bf.len()];
            (t.axpy_f32)(scale, &bf, &mut gotf);
            // Bit-for-bit, not approximate: compare the raw bit patterns.
            let want: Vec<u32> = outf.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = gotf.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want, "{} axpy_f32", t.isa);
        }
    }

    /// The composed dot-structured GEMMs (both operand widths) against a
    /// naive triple loop, at every supported level, with shapes whose `k`
    /// straddles the 2×2 blocking and every lane width.
    #[test]
    fn dot_structured_gemms_match_naive_at_every_isa(
        m in 1usize..6,
        k in 1usize..130,
        n in 1usize..6,
        seed in 0u32..1000,
    ) {
        let a: Vec<i32> = (0..m * k)
            .map(|i| ((i as u32 * 37 + seed * 11) % 256) as i32 - 128)
            .collect();
        let b: Vec<i32> = (0..k * n)
            .map(|i| ((i as u32 * 53 + seed * 7) % 256) as i32 - 128)
            .collect();
        let mut naive = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    naive[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        let a16: Vec<i16> = a.iter().map(|&v| v as i16).collect();
        let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
        let mut bt16 = vec![0i16; n * k];
        let mut bt8 = vec![0i8; n * k];
        for p in 0..k {
            for j in 0..n {
                bt16[j * k + p] = b[p * n + j] as i16;
                bt8[j * k + p] = b[p * n + j] as i8;
            }
        }
        for t in supported_tables() {
            let mut out16 = vec![0i32; m * n];
            ops::gemm_dot_i16_with(&t, m, k, n, &a16, &bt16, &mut out16);
            prop_assert_eq!(&out16, &naive, "{} gemm_dot_i16 ({},{},{})", t.isa, m, k, n);
            let mut out8 = vec![0i32; m * n];
            ops::gemm_dot_i8_with(&t, m, k, n, &a8, &bt8, &mut out8);
            prop_assert_eq!(&out8, &naive, "{} gemm_dot_i8 ({},{},{})", t.isa, m, k, n);
            let mut out32 = vec![0i32; m * n];
            ops::gemm_i32_with(&t, m, k, n, &a, &b, &mut out32);
            prop_assert_eq!(&out32, &naive, "{} gemm_i32 ({},{},{})", t.isa, m, k, n);
        }
    }

    /// The matvec forms against the `n = 1` GEMM column, at every level.
    #[test]
    fn matvecs_match_gemm_column_at_every_isa(
        m in 1usize..40,
        k in 1usize..130,
        seed in 0u32..1000,
    ) {
        let a: Vec<i32> = (0..m * k)
            .map(|i| ((i as u32 * 29 + seed * 13) % 256) as i32 - 128)
            .collect();
        let x: Vec<i32> = (0..k)
            .map(|i| ((i as u32 * 41 + seed * 3) % 256) as i32 - 128)
            .collect();
        let mut reference = vec![0i32; m];
        for i in 0..m {
            for p in 0..k {
                reference[i] += a[i * k + p] * x[p];
            }
        }
        let a16: Vec<i16> = a.iter().map(|&v| v as i16).collect();
        let x16: Vec<i16> = x.iter().map(|&v| v as i16).collect();
        let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
        let x8: Vec<i8> = x.iter().map(|&v| v as i8).collect();
        for t in supported_tables() {
            let mut got16 = vec![0i32; m];
            ops::matvec_i16_with(&t, m, k, &a16, &x16, &mut got16);
            prop_assert_eq!(&got16, &reference, "{} matvec_i16 ({},{})", t.isa, m, k);
            let mut got8 = vec![0i32; m];
            ops::matvec_i8_with(&t, m, k, &a8, &x8, &mut got8);
            prop_assert_eq!(&got8, &reference, "{} matvec_i8 ({},{})", t.isa, m, k);
            let mut got32 = vec![0i32; m];
            ops::matvec_i32_with(&t, m, k, &a, &x, &mut got32);
            prop_assert_eq!(&got32, &reference, "{} matvec_i32 ({},{})", t.isa, m, k);
        }
    }

    /// The f32 GEMM (which now dispatches its row update) stays bit-identical
    /// to the naive triple loop — the invariant the SimulatedF32 backend's
    /// determinism rests on.
    #[test]
    fn f32_gemm_matches_naive_triple_loop(
        m in 1usize..6,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u32..1000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i as u32 * 37 + seed * 11) % 256) as f32 - 128.0) * 0.013)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((i as u32 * 53 + seed * 7) % 256) as f32 - 128.0) * 0.017)
            .collect();
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    naive[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        let mut blocked = vec![0.0f32; m * n];
        ops::gemm(m, k, n, &a, &b, &mut blocked);
        let want: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = blocked.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "f32 gemm ({},{},{})", m, k, n);
    }
}
