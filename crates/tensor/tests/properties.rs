//! Property-based tests over the tensor substrate invariants.

use eden_tensor::bits;
use eden_tensor::ops;
use eden_tensor::{Precision, QuantTensor, Tensor};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..64)
}

proptest! {
    #[test]
    fn quantize_dequantize_error_bounded_by_step(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        for p in [Precision::Int8, Precision::Int16] {
            let q = QuantTensor::quantize(&t, p);
            let step = q.scale();
            for (a, b) in t.data().iter().zip(q.dequantize().data()) {
                prop_assert!((a - b).abs() <= step / 2.0 + 1e-4);
            }
        }
    }

    #[test]
    fn fp32_quantization_is_lossless(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let q = QuantTensor::quantize(&t, Precision::Fp32);
        prop_assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn double_bit_flip_is_identity(data in small_vec(), idx in 0usize..64, bit in 0u32..32) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        for p in Precision::all() {
            let mut q = QuantTensor::quantize(&t, p);
            let i = idx % n;
            let b = bit % p.bits();
            let before = q.stored_bits(i);
            q.flip_bit(i, b);
            q.flip_bit(i, b);
            prop_assert_eq!(q.stored_bits(i), before);
        }
    }

    #[test]
    fn bit_differences_matches_flip_count(data in small_vec(), flips in prop::collection::vec((0usize..64, 0u32..8), 0..10)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let base = QuantTensor::quantize(&t, Precision::Int8);
        let mut corrupted = base.clone();
        let mut unique = std::collections::HashSet::new();
        for (i, b) in flips {
            unique.insert((i % n, b));
        }
        for &(i, b) in &unique {
            corrupted.flip_bit(i, b);
        }
        prop_assert_eq!(base.bit_differences(&corrupted), unique.len() as u64);
    }

    #[test]
    fn sign_extend_round_trips_through_mask(v in -128i32..128, width in 8u32..=16) {
        let mask = (1u32 << width) - 1;
        let stored = (v as u32) & mask;
        prop_assert_eq!(bits::sign_extend(stored, width), v);
    }

    #[test]
    fn matmul_distributes_over_addition(a in prop::collection::vec(-2.0f32..2.0, 4), b in prop::collection::vec(-2.0f32..2.0, 4), c in prop::collection::vec(-2.0f32..2.0, 4)) {
        let ta = Tensor::from_vec(a, &[2, 2]);
        let tb = Tensor::from_vec(b, &[2, 2]);
        let tc = Tensor::from_vec(c, &[2, 2]);
        let lhs = ops::matmul(&ta, &tb.add(&tc));
        let rhs = ops::matmul(&ta, &tb).add(&ops::matmul(&ta, &tc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_a_probability_distribution(data in prop::collection::vec(-10.0f32..10.0, 2..16)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let p = ops::softmax(&t);
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
        prop_assert!(p.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn relu_is_idempotent(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = eden_tensor::init::seeded_rng(seed);
        let t = eden_tensor::init::uniform(&[rows, cols], -1.0, 1.0, &mut rng);
        prop_assert_eq!(ops::transpose(&ops::transpose(&t)), t);
    }
}
