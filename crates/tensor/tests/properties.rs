//! Property-based tests over the tensor substrate invariants.

use eden_tensor::bits;
use eden_tensor::ops;
use eden_tensor::{CorruptionOverlay, Precision, QuantTensor, Shape, Tensor};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..64)
}

/// A shrink-friendly strategy over [`Shape`]: generated shapes have rank
/// 1–4 with extents 1–8, and counterexamples shrink by dropping trailing
/// dimensions and pulling extents towards 1, so a failing case minimizes to
/// something close to `[1]`.
#[derive(Clone, Debug)]
struct ShapeStrategy;

impl proptest::strategy::Strategy for ShapeStrategy {
    type Value = Shape;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Shape {
        use rand::Rng;
        let rank = rng.gen_range(1usize..=4);
        let dims: Vec<usize> = (0..rank).map(|_| rng.gen_range(1usize..=8)).collect();
        Shape::new(&dims)
    }

    fn shrink(&self, value: &Shape) -> Vec<Shape> {
        let dims = value.dims();
        let mut out = Vec::new();
        // Drop trailing dimensions (rank reduction first: the most aggressive
        // simplification).
        if dims.len() > 1 {
            out.push(Shape::new(&dims[..dims.len() - 1]));
            out.push(Shape::new(&dims[1..]));
        }
        // Pull each extent towards 1.
        for (i, &d) in dims.iter().enumerate() {
            if d > 1 {
                for cand in [1, d / 2, d - 1] {
                    if cand >= 1 && cand != d {
                        let mut v = dims.to_vec();
                        v[i] = cand;
                        let s = Shape::new(&v);
                        if !out.contains(&s) {
                            out.push(s);
                        }
                    }
                }
            }
        }
        out
    }
}

/// A tensor filled with seeded uniform data in a generated shape, built
/// inside the test body from a `(Shape, seed)` tuple rather than via
/// `prop_map` — tuple strategies shrink componentwise, so counterexamples
/// still minimize through [`ShapeStrategy`]'s shrinker.
fn tensor_for(shape: &Shape, seed: u64) -> Tensor {
    let mut rng = eden_tensor::init::seeded_rng(seed);
    eden_tensor::init::uniform(shape.dims(), -50.0, 50.0, &mut rng)
}

/// The overlay produced by flipping the given `(element, bit)` pairs on a
/// copy of `clean` (indices folded into range; duplicate flips cancel, as
/// real double corruption would).
fn overlay_from_flips(clean: &QuantTensor, flips: &[(usize, u32)]) -> CorruptionOverlay {
    let mut corrupted = clean.clone();
    for &(i, b) in flips {
        corrupted.flip_bit(i % clean.len(), b % clean.bits_per_value());
    }
    CorruptionOverlay::from_diff(clean, &corrupted)
}

proptest! {
    // The quantization round-trip invariants below guard the bit-exact
    // storage layer everything else builds on, so run them at double the
    // default case count.
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn quantize_dequantize_error_bounded_by_step(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        for p in [Precision::Int8, Precision::Int16] {
            let q = QuantTensor::quantize(&t, p);
            let step = q.scale();
            for (a, b) in t.data().iter().zip(q.dequantize().data()) {
                prop_assert!((a - b).abs() <= step / 2.0 + 1e-4);
            }
        }
    }

    #[test]
    fn fp32_quantization_is_lossless(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let q = QuantTensor::quantize(&t, Precision::Fp32);
        prop_assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn double_bit_flip_is_identity(data in small_vec(), idx in 0usize..64, bit in 0u32..32) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        for p in Precision::all() {
            let mut q = QuantTensor::quantize(&t, p);
            let i = idx % n;
            let b = bit % p.bits();
            let before = q.stored_bits(i);
            q.flip_bit(i, b);
            q.flip_bit(i, b);
            prop_assert_eq!(q.stored_bits(i), before);
        }
    }

    #[test]
    fn bit_differences_matches_flip_count(data in small_vec(), flips in prop::collection::vec((0usize..64, 0u32..8), 0..10)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let base = QuantTensor::quantize(&t, Precision::Int8);
        let mut corrupted = base.clone();
        let mut unique = std::collections::HashSet::new();
        for (i, b) in flips {
            unique.insert((i % n, b));
        }
        for &(i, b) in &unique {
            corrupted.flip_bit(i, b);
        }
        prop_assert_eq!(base.bit_differences(&corrupted), unique.len() as u64);
    }

    #[test]
    fn sign_extend_round_trips_through_mask(v in -128i32..128, width in 8u32..=16) {
        let mask = (1u32 << width) - 1;
        let stored = (v as u32) & mask;
        prop_assert_eq!(bits::sign_extend(stored, width), v);
    }

    #[test]
    fn matmul_distributes_over_addition(a in prop::collection::vec(-2.0f32..2.0, 4), b in prop::collection::vec(-2.0f32..2.0, 4), c in prop::collection::vec(-2.0f32..2.0, 4)) {
        let ta = Tensor::from_vec(a, &[2, 2]);
        let tb = Tensor::from_vec(b, &[2, 2]);
        let tc = Tensor::from_vec(c, &[2, 2]);
        let lhs = ops::matmul(&ta, &tb.add(&tc));
        let rhs = ops::matmul(&ta, &tb).add(&ops::matmul(&ta, &tc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_a_probability_distribution(data in prop::collection::vec(-10.0f32..10.0, 2..16)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let p = ops::softmax(&t);
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
        prop_assert!(p.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn relu_is_idempotent(data in small_vec()) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = eden_tensor::init::seeded_rng(seed);
        let t = eden_tensor::init::uniform(&[rows, cols], -1.0, 1.0, &mut rng);
        prop_assert_eq!(ops::transpose(&ops::transpose(&t)), t);
    }

    #[test]
    fn shape_len_is_product_and_last_index_is_dense(shape in ShapeStrategy) {
        let expected: usize = shape.dims().iter().product();
        prop_assert_eq!(shape.len(), expected);
        prop_assert!(!shape.is_empty());
        // The flat index of the last coordinate must land on len - 1: strides
        // tile the whole buffer with no gaps or overlap.
        let last: Vec<usize> = shape.dims().iter().map(|&d| d - 1).collect();
        prop_assert_eq!(shape.flat_index(&last), shape.len() - 1);
        // The outermost stride times the outermost extent covers everything.
        prop_assert_eq!(shape.strides()[0] * shape.dims()[0], shape.len());
    }

    #[test]
    fn shape_flat_indices_are_a_bijection(shape in ShapeStrategy) {
        // Enumerate every coordinate and check flat indices hit 0..len once.
        let mut seen = vec![false; shape.len()];
        let mut idx = vec![0usize; shape.rank()];
        loop {
            let flat = shape.flat_index(&idx);
            prop_assert!(!seen[flat], "flat index {} visited twice", flat);
            seen[flat] = true;
            // Odometer increment.
            let mut d = shape.rank();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < shape.dims()[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if d == usize::MAX {
                break;
            }
        }
        prop_assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    fn merge_equals_from_diff_of_sequential_corruption(
        data in small_vec(),
        flips_a in prop::collection::vec((0usize..64, 0u32..8), 0..12),
        flips_b in prop::collection::vec((0usize..64, 0u32..8), 0..12),
    ) {
        // Merging the overlays of two independent corruptions must describe
        // exactly the image both corruptions produce sequentially — including
        // overlapping words, where shared mask bits cancel just as a second
        // physical flip of the same cell would.
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let clean = QuantTensor::quantize(&t, Precision::Int8);
        let a = overlay_from_flips(&clean, &flips_a);
        let b = overlay_from_flips(&clean, &flips_b);
        let mut seq = clean.clone();
        a.apply(&mut seq);
        b.apply(&mut seq);
        let reference = CorruptionOverlay::from_diff(&clean, &seq);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.deltas(), reference.deltas());
        let mut via_merged = clean.clone();
        merged.apply(&mut via_merged);
        prop_assert_eq!(via_merged, seq);
        // Counters accumulate the per-source statistics, not the net diff.
        prop_assert_eq!(merged.bit_flips(), a.bit_flips() + b.bit_flips());
    }

    #[test]
    fn merge_preserves_ascending_order_and_sums_counters(
        words_a in prop::collection::vec((0u32..64, 1u32..256), 0..16),
        words_b in prop::collection::vec((0u32..64, 1u32..256), 0..16),
        flips_a in 0u64..100, corr_a in 0u64..100,
        flips_b in 0u64..100, corr_b in 0u64..100,
    ) {
        let dedup = |v: &[(u32, u32)]| {
            let mut m = std::collections::BTreeMap::new();
            for &(w, mask) in v {
                m.insert(w % 64, mask & 0xFF);
            }
            m.into_iter().filter(|&(_, mask)| mask != 0).collect::<Vec<_>>()
        };
        let mut a = CorruptionOverlay::new(64, 8, dedup(&words_a), flips_a, corr_a);
        let b = CorruptionOverlay::new(64, 8, dedup(&words_b), flips_b, corr_b);
        a.merge(&b);
        prop_assert!(a.deltas().windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(a.deltas().iter().all(|&(_, mask)| mask != 0));
        prop_assert_eq!(a.bit_flips(), flips_a + flips_b);
        prop_assert_eq!(a.corrections(), corr_a + corr_b);
    }

    #[test]
    fn quantization_round_trips_for_every_shape(shape in ShapeStrategy, seed in 0u64..1000) {
        let t = tensor_for(&shape, seed);
        for p in [Precision::Int4, Precision::Int8, Precision::Int16, Precision::Fp32] {
            let q = QuantTensor::quantize(&t, p);
            let back = q.dequantize();
            prop_assert_eq!(back.shape(), t.shape());
            prop_assert_eq!(back.len(), t.len());
            let step = q.scale();
            for (a, b) in t.data().iter().zip(back.data()) {
                prop_assert!(
                    (a - b).abs() <= step / 2.0 + 1e-4,
                    "precision {:?}: {} vs {} (step {})", p, a, b, step
                );
            }
        }
    }
}
