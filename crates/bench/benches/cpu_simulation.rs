//! Criterion bench: CPU system-model evaluation across the Figure 13/14
//! workloads (one full sweep of energy and speedup accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use eden_dnn::zoo::ModelId;
use eden_dram::OperatingPoint;
use eden_sysim::{CpuSim, WorkloadProfile};
use eden_tensor::Precision;

fn bench_cpu(c: &mut Criterion) {
    let cpu = CpuSim::table4();
    let workloads: Vec<WorkloadProfile> = ModelId::system_eval()
        .into_iter()
        .map(|id| WorkloadProfile::for_model(id, Precision::Int8))
        .collect();
    let mut group = c.benchmark_group("cpu_simulation");
    group.sample_size(30);
    group.bench_function("figure13_14_sweep", |b| {
        b.iter(|| {
            workloads
                .iter()
                .map(|w| {
                    let nominal = cpu.run(w, &OperatingPoint::nominal());
                    let reduced = cpu.run(w, &OperatingPoint::with_reductions(0.30, 5.5));
                    let ideal = cpu.run_ideal_latency(w);
                    (
                        reduced.energy_reduction_vs(&nominal),
                        reduced.speedup_over(&nominal),
                        ideal.speedup_over(&nominal),
                    )
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("workload_profile_build", |b| {
        b.iter(|| WorkloadProfile::for_model(ModelId::Vgg16, Precision::Int8))
    });
    group.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
