//! Criterion bench: error-injection throughput of the four error models
//! (the operation Section 4 reports Error Model 0 being ~1.3x faster at).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_dram::error_model::{ErrorModel, Layout};
use eden_tensor::{Precision, QuantTensor, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_injection(c: &mut Criterion) {
    let t = Tensor::from_vec(
        (0..65_536).map(|i| (i as f32 * 0.01).sin()).collect(),
        &[65_536],
    );
    let stored = QuantTensor::quantize(&t, Precision::Int8);
    let models = [
        ("model0_uniform", ErrorModel::uniform(0.01, 0.5, 1)),
        ("model1_bitline", ErrorModel::bitline(0.01, 0.5, 0.8, 1)),
        ("model2_wordline", ErrorModel::wordline(0.01, 0.5, 0.8, 1)),
        (
            "model3_data_dependent",
            ErrorModel::data_dependent(0.01, 0.7, 0.3, 1),
        ),
    ];
    let mut group = c.benchmark_group("error_injection_64k_int8");
    group.sample_size(20);
    for (name, model) in models {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut q = stored.clone();
                m.inject(&mut q, &Layout::default(), &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
