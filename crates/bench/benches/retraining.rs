//! Criterion bench: one epoch of curricular retraining of LeNet (the boost
//! step the paper reports takes ~10 minutes for ResNet101 on a P100).

use criterion::{criterion_group, criterion_main, Criterion};
use eden_core::curricular::{CurricularConfig, CurricularTrainer};
use eden_dnn::{data::SyntheticVision, zoo, Dataset};
use eden_dram::ErrorModel;

fn bench_retraining(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let template = ErrorModel::uniform(0.01, 0.5, 3);
    let mut group = c.benchmark_group("curricular_retraining");
    group.sample_size(10);
    group.bench_function("lenet_one_epoch", |b| {
        b.iter(|| {
            let mut copy = net.clone();
            CurricularTrainer::new(CurricularConfig {
                epochs: 1,
                step_epochs: 1,
                target_ber: 5e-3,
                ..CurricularConfig::default()
            })
            .retrain(&mut copy, &dataset, &template)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_retraining);
criterion_main!(benches);
