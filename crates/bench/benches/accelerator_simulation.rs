//! Criterion bench: Eyeriss / TPU accelerator model evaluation (the Section
//! 7.2 accelerator sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_dnn::zoo::ModelId;
use eden_dram::OperatingPoint;
use eden_sysim::{AcceleratorConfig, AcceleratorSim, GpuSim, WorkloadProfile};
use eden_tensor::Precision;

fn bench_accelerators(c: &mut Criterion) {
    let workload = WorkloadProfile::for_model(ModelId::YoloTiny, Precision::Int8);
    let mut group = c.benchmark_group("accelerator_simulation");
    group.sample_size(30);
    for config in [
        AcceleratorConfig::eyeriss_ddr4(),
        AcceleratorConfig::tpu_ddr4(),
        AcceleratorConfig::eyeriss_lpddr3(),
        AcceleratorConfig::tpu_lpddr3(),
    ] {
        let sim = AcceleratorSim::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(config.name), &sim, |b, s| {
            b.iter(|| {
                let nominal = s.run(&workload, &OperatingPoint::nominal());
                let reduced = s.run(&workload, &OperatingPoint::with_vdd_reduction(0.30));
                reduced.energy_reduction_vs(&nominal)
            })
        });
    }
    group.bench_function("gpu_titanx", |b| {
        let gpu = GpuSim::table5();
        b.iter(|| {
            let nominal = gpu.run(&workload, &OperatingPoint::nominal());
            let reduced = gpu.run(&workload, &OperatingPoint::with_vdd_reduction(0.30));
            reduced.energy_reduction_vs(&nominal)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_accelerators);
criterion_main!(benches);
