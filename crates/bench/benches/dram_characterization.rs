//! Criterion bench: DRAM characterization and error-model fitting
//! (the paper reports ~4 minutes to profile a full 4 GB module; this measures
//! our per-bank characterization plus model selection).

use criterion::{criterion_group, criterion_main, Criterion};
use eden_dram::characterize::{characterize_bank, CharacterizeConfig};
use eden_dram::fit::select_model;
use eden_dram::{ApproxDramDevice, OperatingPoint, Vendor};

fn bench_characterization(c: &mut Criterion) {
    let device = ApproxDramDevice::new(Vendor::A, 7);
    let op = OperatingPoint::with_vdd_reduction(0.30);
    let cfg = CharacterizeConfig {
        rows_per_pattern: 1,
        bitlines_per_row: 1024,
        reads_per_row: 3,
        seed: 1,
    };
    let mut group = c.benchmark_group("dram_characterization");
    group.sample_size(15);
    group.bench_function("characterize_bank", |b| {
        b.iter(|| characterize_bank(&device, 0, &op, &cfg))
    });
    let obs = characterize_bank(&device, 0, &op, &cfg);
    group.bench_function("fit_and_select_model", |b| b.iter(|| select_model(&obs, 0)));
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
