//! Criterion bench: inference on reliable vs approximate DRAM (the overhead
//! of software error injection and bounding correction, cf. the 80–90x
//! speedup the paper gets over SoftMC by simulating).
//!
//! This bench backs the CI performance-regression gate: run with
//! `EDEN_BENCH_JSON=BENCH_inference.json cargo bench --bench inference` to
//! (re)generate the machine-readable baseline, and compare two baselines with
//! the `bench_gate` binary. The `calibration/spin` entry measures a fixed
//! scalar workload so the gate can normalize away absolute machine speed.
//!
//! The harness pins the `eden-par` pool to a **fixed thread count** (1 by
//! default, override with `EDEN_BENCH_THREADS`): the calibration workload is
//! single-core, so baselines are only comparable across machines when the
//! measured workloads are too. Parallel *scaling* is validated separately
//! (`tests/thread_invariance.rs` for correctness, the fig binaries'
//! `--threads` flag for wall-clock).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::characterize::{
    coarse_characterize, fine_characterize, fine_characterize_session, CoarseConfig,
    FineCharacterization, FineConfig,
};
use eden_core::faults::ApproximateMemory;
use eden_core::inference::{self, InferenceBackend};
use eden_core::mapping::{benefit_traffic_score, fine_map, multi_module_map, MultiModuleConfig};
use eden_core::session::{EvalSession, RefetchMode};
use eden_dnn::{data::SyntheticVision, zoo, DataKind, Dataset, Network};
use eden_dram::characterize::{CharacterizeConfig, DramErrorProfile};
use eden_dram::error_model::Layout;
use eden_dram::geometry::{DramGeometry, Partition};
use eden_dram::inject::Injector;
use eden_dram::system::{DramModule, MemorySystem};
use eden_dram::{ApproxDramDevice, ErrorModel, OperatingPoint, Vendor};
use eden_tensor::{ops, simd, Precision};

/// A fixed, optimizer-resistant scalar workload whose runtime tracks the
/// host's single-core speed. The gate divides every measurement by this to
/// compare baselines taken on different machines.
fn bench_calibration(c: &mut Criterion) {
    // Pin the pool before any parallel code touches it (this group runs
    // first; see the module docs for why the count must be fixed).
    let threads = std::env::var("EDEN_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    if !eden_par::configure_threads(threads) {
        eprintln!("EDEN_BENCH_THREADS ignored: pool already started");
    }
    let mut group = c.benchmark_group("calibration");
    // The gate's machine-speed scale divides by this entry, so its noise
    // multiplies into every per-entry budget at once. One spin is only
    // ~0.5 ms, and 15 one-spin samples wobbled between 287 µs and 4.2 ms on
    // busy runners: pin a 10 ms minimum sample time (the shim batches spins
    // to fill it, averaging scheduler spikes away) and take more samples so
    // the median the gate calibrates on settles.
    group.sample_size(40);
    group.measurement_time(Duration::from_secs(3));
    group.min_sample_time(Duration::from_millis(10));
    group.bench_function("spin", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let samples = &dataset.test()[..16];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let mut group = c.benchmark_group("lenet_inference_16_samples");
    group.sample_size(15);
    group.bench_function("reliable", |b| {
        b.iter(|| inference::evaluate_reliable(&net, samples, Precision::Int8))
    });
    group.bench_function("approximate_ber_1e-2", |b| {
        b.iter(|| {
            let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 3), 5)
                .with_bounding(bounding);
            inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut memory)
        })
    });
    group.finish();
}

/// The dispatched integer GEMM kernels at every ISA level this host
/// supports, on a VGG-conv-shaped problem (the dominant shape behind the
/// `quantized_backend` group). One entry per `(kernel, ISA)` pair via the
/// explicit `_with` dispatch, so the gate pins each SIMD tier individually:
/// a regression in, say, the AVX2 i8 path cannot hide behind a healthy
/// AVX-512 default. Entries exist only for ISAs the runner supports, which
/// is fine for the gate because baseline and gate share the CI runner.
fn bench_simd_kernels(c: &mut Criterion) {
    // conv3x3 over 128 input channels to 128 outputs on a 14x14 feature
    // map, as lowered by im2col: [m=128, k=1152] x [n=196, k=1152]^T.
    let (m, k, n) = (128usize, 1152usize, 196usize);
    let a16: Vec<i16> = (0..m * k).map(|i| (i as i64 % 229 - 114) as i16).collect();
    let b16: Vec<i16> = (0..n * k).map(|i| (i as i64 % 127 - 63) as i16).collect();
    let a8: Vec<i8> = a16.iter().map(|&v| (v % 128) as i8).collect();
    let b8: Vec<i8> = b16.iter().map(|&v| (v % 128) as i8).collect();
    let mut out = vec![0i32; m * n];
    let mut group = c.benchmark_group("simd_kernels");
    // Same sampling pin as the characterization groups: 15 samples under the
    // default 2 s budget left the per-run minimum wobbly enough (especially
    // for the AVX-512 i8 entry, whose iteration is the shortest of the
    // group) to trip the 20% gate on healthy builds.
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));
    for isa in simd::Isa::all() {
        if !isa.is_supported() {
            continue;
        }
        let kr = simd::kernels_for(isa);
        group.bench_function(format!("gemm_i16_{isa}"), |b| {
            b.iter(|| {
                ops::gemm_dot_i16_with(&kr, m, k, n, black_box(&a16), black_box(&b16), &mut out);
                black_box(out[0])
            })
        });
        group.bench_function(format!("gemm_i8_{isa}"), |b| {
            b.iter(|| {
                ops::gemm_dot_i8_with(&kr, m, k, n, black_box(&a8), black_box(&b8), &mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

/// The quantized execution engines head to head on a Table 1-scale model:
/// the same VGG evaluation (8 samples, BER 1e-3 — a realistic Table 3
/// operating point) run once through the simulated-f32 path and once through
/// the native integer path, serving from a pre-characterized memory as the
/// tolerance sweeps do. This is the benchmark behind the "native int8 is
/// ≥2× the simulated path at 1 thread" acceptance bar, and the regression
/// gate watches both engines so neither hot path can silently regress.
fn bench_quantized_backends(c: &mut Criterion) {
    let dataset = SyntheticVision::small(0);
    let net = zoo::vgg_mini(&dataset.spec(), 1);
    let samples = &dataset.test()[..8];
    let template = ErrorModel::uniform(0.02, 0.5, 3);
    let mut group = c.benchmark_group("quantized_backend");
    group.sample_size(15);
    for (id, precision, backend) in [
        (
            "vgg_simulated_f32_int8",
            Precision::Int8,
            InferenceBackend::SimulatedF32,
        ),
        (
            "vgg_native_int_int8",
            Precision::Int8,
            InferenceBackend::NativeInt,
        ),
        (
            "vgg_native_int_int4",
            Precision::Int4,
            InferenceBackend::NativeInt,
        ),
    ] {
        // DRAM placement and weak-cell characterization happen once per
        // operating point in the real sweeps; hoist them so the bench
        // measures steady-state serving, then clone per iteration so every
        // iteration replays identical load streams.
        let mut base = ApproximateMemory::from_model(template.with_ber(1e-3), 5);
        base.preallocate(&net, precision);
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut memory = base.clone();
                inference::evaluate_with_faults_backend(
                    &net,
                    black_box(samples),
                    precision,
                    &mut memory,
                    backend,
                )
            })
        });
    }
    group.finish();
}

/// Batched forward execution head to head with per-sample execution: the
/// Table 1-scale VGG evaluation over 32 samples through a reused session at
/// batch caps 1 (the per-sample reference), 8 and 32, on both execution
/// backends. The error model fixes the weak-cell flip probability at 1.0 so
/// every refetch draws identical overlays and the overlay-grouping rule
/// merges refetch slots into full-width weight-stationary groups — the
/// batched GEMM path this group exists to watch. Results are bit-identical
/// across caps (pinned by `tests/batched_equivalence.rs`); the gate watches
/// the throughput gap, which is the tentpole's payoff.
fn bench_batched(c: &mut Criterion) {
    let dataset = SyntheticVision::small(0);
    let net = zoo::vgg_mini(&dataset.spec(), 1);
    let samples = &dataset.test()[..32];
    let template = ErrorModel::uniform(0.02, 1.0, 3);
    let mut group = c.benchmark_group("batched");
    // Same sampling pin as the characterization groups: session evaluations
    // have enough spread that the default budget leaves a wobbly minimum.
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(4));
    for (tag, backend) in [
        ("sim", InferenceBackend::SimulatedF32),
        ("native", InferenceBackend::NativeInt),
    ] {
        let mut base = ApproximateMemory::from_model(template.with_ber(1e-3), 5);
        base.preallocate(&net, Precision::Int8);
        let session = EvalSession::new(&net, Precision::Int8, backend);
        for cap in [1usize, 8, 32] {
            group.bench_function(format!("vgg_{tag}_int8_batch{cap}"), |b| {
                b.iter(|| {
                    let mut memory = base.clone();
                    session.evaluate_concurrent_batched(black_box(samples), &mut memory, cap)
                })
            });
        }
    }
    group.finish();
}

/// The Figure 8 hot path: a (scaled-down) accuracy-vs-BER tolerance sweep,
/// batch- and point-parallel on the `eden-par` pool. This is the workload the
/// tentpole parallelization targets, so the gate watches it directly.
fn bench_tolerance_sweep(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let samples = &dataset.test()[..32];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let template = ErrorModel::uniform(0.02, 0.5, 3);
    let mut group = c.benchmark_group("fig08_sweep");
    group.sample_size(10);
    group.bench_function("lenet_4points_32samples", |b| {
        b.iter(|| {
            inference::accuracy_vs_ber(
                &net,
                samples,
                Precision::Int8,
                &template,
                &[1e-4, 1e-3, 1e-2, 5e-2],
                Some(bounding),
                11,
            )
        })
    });
    group.finish();
}

/// The characterization hot paths (Table 3 / Figure 11): a coarse binary
/// search and a fine-grained per-site sweep on the committed mini network.
/// Both are probe loops — dozens of repeated accuracy evaluations against
/// the same network — so they are the workloads the `EvalSession` reuse
/// layer accelerates, and the gate watches them directly.
fn bench_characterization(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let template = ErrorModel::uniform(0.02, 0.5, 3);
    let mut group = c.benchmark_group("characterization");
    // Same sampling pin as the overlay group below: the fine sweep's
    // per-iteration time has a wide spread, and 10 samples left the
    // minimum wobbly enough to trip the gate on healthy builds.
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("coarse_lenet", |b| {
        b.iter(|| {
            coarse_characterize(
                &net,
                &dataset,
                Precision::Int8,
                black_box(&template),
                Some(bounding),
                &CoarseConfig {
                    eval_samples: 32,
                    iterations: 4,
                    accuracy_drop: 0.02,
                    ..CoarseConfig::default()
                },
            )
        })
    });
    group.bench_function("fine_lenet", |b| {
        b.iter(|| {
            fine_characterize(
                &net,
                &dataset,
                Precision::Int8,
                black_box(&template),
                Some(bounding),
                &FineConfig {
                    eval_samples: 24,
                    max_rounds: 2,
                    bootstrap_ber: 5e-4,
                    ..FineConfig::default()
                },
            )
        })
    });
    group.finish();
}

/// The sparse corruption-overlay refetch path head to head with the
/// image-reload reference, on the two workloads the overlay tentpole
/// targets: a fig08-style tolerance sweep through a reused session and the
/// fine-grained characterization probe loop, both on the committed mini
/// net. `fine_characterize` / `fig08_sweep` run the production
/// [`RefetchMode::Overlay`] path (O(flips) per weight refetch);
/// `fine_characterize_reload` keeps the O(weights) reference path under the
/// gate so neither implementation can silently regress.
fn bench_overlay(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let samples = &dataset.test()[..32];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let template = ErrorModel::uniform(0.02, 0.5, 3);
    let fine_cfg = FineConfig {
        eval_samples: 24,
        max_rounds: 2,
        bootstrap_ber: 5e-4,
        ..FineConfig::default()
    };
    let mut group = c.benchmark_group("overlay");
    // A fine-characterization iteration is tens of milliseconds with a wide
    // spread (the probe loop's workload depends on which sites a round
    // deactivates), so the shim's default 2 s budget admitted as few as ~10
    // samples and the per-run minimum wobbled enough to trip the 20%
    // regression gate on healthy builds. Pin a larger sample count with the
    // budget to match, so every run's minimum settles.
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("fig08_sweep", |b| {
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default());
        b.iter(|| {
            session.accuracy_vs_ber(
                black_box(samples),
                &template,
                &[1e-4, 1e-3, 1e-2, 5e-2],
                Some(bounding),
                11,
            )
        })
    });
    for (id, mode) in [
        ("fine_characterize", RefetchMode::Overlay),
        ("fine_characterize_reload", RefetchMode::ImageReload),
    ] {
        group.bench_function(id, |b| {
            let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
                .with_refetch_mode(mode);
            b.iter(|| {
                fine_characterize_session(
                    &mut session,
                    &dataset,
                    black_box(&template),
                    Some(bounding),
                    &fine_cfg,
                )
            })
        });
    }
    group.finish();
}

/// Synthetic per-site tolerances for the mapping benches (three realistic
/// magnitudes, cycled), so the searches get a mixed-tolerance site list
/// without paying for a real fine-characterization run.
fn synthetic_characterization(net: &Network) -> FineCharacterization {
    let tolerances = net
        .data_sites()
        .into_iter()
        .enumerate()
        .map(|(i, info)| (info, [5e-2, 5e-3, 2e-2][i % 3]))
        .collect();
    FineCharacterization {
        baseline_accuracy: 0.9,
        accuracy_floor: 0.85,
        tolerances,
    }
}

/// The mapping searches (Algorithm 1 / the multi-module generalization):
/// the single-module `fine_map` assignment and the `multi_module_map`
/// greedy-seed + local-search planner, both on the committed mini net over
/// pre-characterized memory. Pure planner workloads — no accuracy
/// evaluations — so the gate watches the search itself, not the evaluator
/// underneath it.
fn bench_mapping(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let characterization = synthetic_characterization(&net);
    // Small-rowed custom geometry with partitions sized below the largest
    // site (as in tests/multi_module.rs): the planner must spill and split,
    // which is the expensive part of the search.
    let geometry = DramGeometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 512,
        row_bytes: 64,
    };
    let row_bytes = geometry.row_bytes as u64;
    let rows: Vec<u64> = net
        .data_sites()
        .iter()
        .map(|d| d.bytes(Precision::Int8).div_ceil(row_bytes))
        .collect();
    let max_rows = rows.iter().copied().max().unwrap();
    let total_rows: u64 = rows.iter().sum::<u64>() + rows.len() as u64;
    let cap_rows = (total_rows.div_ceil(3)).max(2).min(max_rows - 1);
    let parts: Vec<Partition> = (0..2)
        .map(|i| Partition {
            index: i,
            bank: i,
            first_subarray: 0,
            subarrays: 1,
            capacity_bytes: cap_rows * row_bytes,
        })
        .collect();
    let cfg = CharacterizeConfig {
        rows_per_pattern: 1,
        bitlines_per_row: 64,
        reads_per_row: 1,
        seed: 9,
    };
    let ops_a = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_vdd_reduction(0.15),
        OperatingPoint::with_vdd_reduction(0.30),
    ];
    let ops_b = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_trcd_reduction(3.0),
        OperatingPoint::with_trcd_reduction(5.5),
    ];
    // Characterization is a per-deployment one-off; hoist it so the bench
    // measures the searches alone.
    let profile = DramErrorProfile::characterize(
        &ApproxDramDevice::with_geometry(Vendor::A, geometry, 41),
        &parts,
        &ops_a,
        &cfg,
    );
    let system = MemorySystem::new(vec![
        DramModule::characterize(
            ApproxDramDevice::with_geometry(Vendor::A, geometry, 41),
            &parts,
            &ops_a,
            &cfg,
        ),
        DramModule::characterize(
            ApproxDramDevice::with_geometry(Vendor::B, geometry, 42),
            &parts,
            &ops_b,
            &cfg,
        ),
    ]);
    let mut group = c.benchmark_group("mapping");
    group.sample_size(15);
    // `fine_map_lenet` completes in well under a microsecond — a single
    // call sits at timer granularity, where the committed minimum is clock
    // jitter, not workload. Pin a minimum sample span so the shim batches
    // thousands of calls per sample and the per-iteration time is an
    // average far above the tick.
    group.min_sample_time(Duration::from_millis(10));
    group.bench_function("fine_map_lenet", |b| {
        b.iter(|| {
            fine_map(
                black_box(&characterization),
                black_box(&profile),
                Precision::Int8,
            )
        })
    });
    group.bench_function("multi_module_map_lenet_2modules", |b| {
        b.iter(|| {
            multi_module_map(
                black_box(&characterization),
                black_box(&system),
                Precision::Int8,
                &MultiModuleConfig::default(),
                &benefit_traffic_score,
            )
        })
    });
    group.finish();
}

/// Incremental re-evaluation head to head with full re-execution, on its
/// two target workloads:
///
/// * `fine_characterize[_no]_checkpoints` — the Figure 11 probe loop through
///   a reused session with the clean-activation checkpoint store on (the
///   production path: single-site probes resume at the probed layer) and
///   off (every probe re-executes the full forward pass). Both are
///   bit-identical by construction; the gap is the tentpole's payoff.
/// * `probe_layer{L}[_full]` — one single-site probe against the IFM of
///   layer `L`, resumed from a warm checkpoint store vs fully re-executed.
///   One entry per probed layer pins the expected shape: resume cost falls
///   with `L` (only the suffix runs) while full-forward cost stays flat.
fn bench_incremental(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let samples = &dataset.test()[..32];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let template = ErrorModel::uniform(0.02, 0.5, 3);
    let fine_cfg = FineConfig {
        eval_samples: 24,
        max_rounds: 2,
        bootstrap_ber: 5e-4,
        ..FineConfig::default()
    };
    let mut group = c.benchmark_group("incremental");
    // Same sampling pin as the overlay group: wide-spread probe loops need
    // more than the default samples for a stable minimum.
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));
    for (id, checkpoints) in [
        ("fine_characterize_checkpoints", true),
        ("fine_characterize_no_checkpoints", false),
    ] {
        group.bench_function(id, |b| {
            let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
                .with_checkpoints(checkpoints);
            b.iter(|| {
                fine_characterize_session(
                    &mut session,
                    &dataset,
                    black_box(&template),
                    Some(bounding),
                    &fine_cfg,
                )
            })
        });
    }
    // Per-layer suffix resume: probe each IFM site individually. Layer 0
    // has no clean prefix to skip, so it doubles as the "resume cannot
    // help" floor.
    let ifm_sites: Vec<_> = net
        .data_sites()
        .into_iter()
        .filter(|info| info.site.kind == DataKind::Ifm)
        .map(|info| info.site)
        .collect();
    for site in &ifm_sites {
        let injector = Injector::from_model(template.with_ber(1e-3), Layout::default());
        for (suffix, checkpoints) in [("", true), ("_full", false)] {
            let id = format!("probe_layer{}{suffix}", site.layer_index);
            group.bench_function(id, |b| {
                let session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
                    .with_checkpoints(checkpoints);
                b.iter(|| {
                    let mut memory = ApproximateMemory::reliable(7);
                    memory.assign_site(site.clone(), injector.clone());
                    session.evaluate_concurrent(black_box(samples), &mut memory)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_calibration,
    bench_inference,
    bench_simd_kernels,
    bench_quantized_backends,
    bench_batched,
    bench_tolerance_sweep,
    bench_characterization,
    bench_overlay,
    bench_mapping,
    bench_incremental
);
criterion_main!(benches);
