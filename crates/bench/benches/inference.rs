//! Criterion bench: inference on reliable vs approximate DRAM (the overhead
//! of software error injection and bounding correction, cf. the 80–90x
//! speedup the paper gets over SoftMC by simulating).

use criterion::{criterion_group, criterion_main, Criterion};
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::faults::ApproximateMemory;
use eden_core::inference;
use eden_dnn::{data::SyntheticVision, zoo, Dataset};
use eden_dram::ErrorModel;
use eden_tensor::Precision;

fn bench_inference(c: &mut Criterion) {
    let dataset = SyntheticVision::tiny(0);
    let net = zoo::lenet(&dataset.spec(), 1);
    let samples = &dataset.test()[..16];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..8], 1.5, CorrectionPolicy::Zero);
    let mut group = c.benchmark_group("lenet_inference_16_samples");
    group.sample_size(15);
    group.bench_function("reliable", |b| {
        b.iter(|| inference::evaluate_reliable(&net, samples, Precision::Int8))
    });
    group.bench_function("approximate_ber_1e-2", |b| {
        b.iter(|| {
            let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 3), 5)
                .with_bounding(bounding);
            inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut memory)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
