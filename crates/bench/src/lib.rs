//! `eden-bench` hosts the experiment binaries (`src/bin/`) that regenerate
//! every table and figure of the paper, and the Criterion benches
//! (`benches/`). This library crate only exposes small shared helpers.

pub mod report;
