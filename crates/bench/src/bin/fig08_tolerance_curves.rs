//! Figure 8: ResNet accuracy vs bit error rate, for each of the four error
//! models and each numeric precision (int4/int8/int16/FP32).
//!
//! Pass `--detail` to also print the Section 6.3 observations (DNN-size
//! effect and accuracy collapse without bounding), and
//! `--backend simulated|native` to pick the inference engine (the native
//! integer engine reproduces the same curves faster for the integer
//! precisions; FP32 always runs on the simulated path).

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::inference::accuracy_vs_ber_backend;
use eden_core::session::EvalSession;
use eden_dnn::zoo::ModelId;
use eden_dnn::Dataset;
use eden_dram::{ErrorModel, ErrorModelKind};
use eden_tensor::Precision;

fn template(kind: ErrorModelKind, seed: u64) -> ErrorModel {
    match kind {
        ErrorModelKind::Uniform => ErrorModel::uniform(0.02, 0.5, seed),
        ErrorModelKind::Bitline => ErrorModel::bitline(0.02, 0.5, 0.9, seed),
        ErrorModelKind::Wordline => ErrorModel::wordline(0.02, 0.5, 0.9, seed),
        ErrorModelKind::DataDependent => ErrorModel::data_dependent(0.02, 0.7, 0.3, seed),
    }
}

fn main() {
    report::init_threads();
    let backend = report::parse_backend();
    let refetch = report::parse_refetch();
    let detail = std::env::args().any(|a| a == "--detail");
    report::header(
        "Figure 8",
        "ResNet accuracy vs BER for each error model and precision",
    );
    let bers = [1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1];
    let (net, dataset) = report::train_model(ModelId::ResNet, 6, 2);
    let samples = &dataset.test()[..64.min(dataset.test().len())];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);

    // One session per precision, reused across all four error-model kinds:
    // the weight bit images and corrupted-weight state depend only on the
    // precision, so the 4 kinds × |precisions| sweeps share them.
    let mut sessions: Vec<EvalSession> = Precision::all()
        .iter()
        .map(|&p| EvalSession::new(&net, p, backend).with_refetch_mode(refetch))
        .collect();
    for kind in ErrorModelKind::all() {
        println!("\n{kind}");
        print!("{:<8}", "prec");
        for b in &bers {
            print!(" {:>9.0e}", b);
        }
        println!();
        for session in sessions.iter_mut() {
            let curve =
                session.accuracy_vs_ber(samples, &template(kind, 5), &bers, Some(bounding), 11);
            print!("{:<8}", session.precision().to_string());
            for (_, acc) in curve {
                print!(" {:>9}", report::acc(acc));
            }
            println!();
        }
    }

    if detail {
        println!("\nSection 6.3 detail — DNN size effect (accuracy at BER 1e-2, int8):");
        for id in [
            ModelId::Vgg16,
            ModelId::ResNet,
            ModelId::SqueezeNet,
            ModelId::LeNet,
        ] {
            let (m, d) = report::train_model(id, 5, 4);
            let b = BoundingLogic::calibrated(&m, &d.train()[..16], 1.5, CorrectionPolicy::Zero);
            let curve = accuracy_vs_ber_backend(
                &m,
                &d.test()[..48],
                Precision::Int8,
                &template(ErrorModelKind::Uniform, 6),
                &[1e-2],
                Some(b),
                13,
                backend,
            );
            println!(
                "  {:<14} {:>6}",
                id.spec().display_name,
                report::acc(curve[0].1)
            );
        }

        println!(
            "\nSection 6.3 detail — FP32 accuracy collapse without bounding (BER 1e-4..1e-2):"
        );
        let no_bounding = accuracy_vs_ber_backend(
            &net,
            samples,
            Precision::Fp32,
            &template(ErrorModelKind::Uniform, 5),
            &[1e-4, 1e-3, 1e-2],
            None,
            11,
            backend,
        );
        let with_bounding = accuracy_vs_ber_backend(
            &net,
            samples,
            Precision::Fp32,
            &template(ErrorModelKind::Uniform, 5),
            &[1e-4, 1e-3, 1e-2],
            Some(bounding),
            11,
            backend,
        );
        println!(
            "  {:<12} {:>12} {:>12}",
            "BER", "no bounding", "with bounding"
        );
        for ((ber, a), (_, b)) in no_bounding.iter().zip(&with_bounding) {
            println!("  {:<12.0e} {:>12.3} {:>12.3}", ber, a, b);
        }
    }

    println!("\npaper shape: accuracy drops at high BER; spatially-correlated models (1/2) and");
    println!("low precisions drop earlier; bounding rescues FP32 from implausible-value collapse.");
}
