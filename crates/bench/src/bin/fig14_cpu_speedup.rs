//! Figure 14: CPU speedup of EDEN (reduced tRCD, per-model Table 3 values)
//! versus a system with an ideal tRCD = 0, per DNN, for FP32 and int8.

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_dram::OperatingPoint;
use eden_sysim::result::geometric_mean;
use eden_sysim::{CpuSim, SystemSim, WorkloadProfile};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Figure 14",
        "CPU speedup: EDEN (reduced tRCD) vs ideal tRCD = 0",
    );
    let cpu: &dyn SystemSim = &CpuSim::table4();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "model", "FP32 EDEN", "FP32 ideal", "int8 EDEN", "int8 ideal"
    );
    let mut eden_speedups = Vec::new();
    let mut ideal_speedups = Vec::new();
    for id in ModelId::system_eval() {
        let spec = id.spec();
        print!("{:<14}", spec.display_name);
        for (precision, coarse) in [
            (Precision::Fp32, spec.paper.coarse_fp32),
            (Precision::Int8, spec.paper.coarse_int8),
        ] {
            let Some((_, _, dtrcd)) = coarse else {
                print!(" {:>12} {:>12}", "—", "—");
                continue;
            };
            let workload = WorkloadProfile::for_model(id, precision);
            let nominal = cpu.run(&workload, &OperatingPoint::nominal());
            let reduced = cpu.run(&workload, &OperatingPoint::with_trcd_reduction(dtrcd));
            let ideal = cpu.run_ideal_latency(&workload);
            let s = reduced.speedup_over(&nominal);
            let si = ideal.speedup_over(&nominal);
            eden_speedups.push(s);
            ideal_speedups.push(si);
            print!(" {:>11.3}x {:>11.3}x", s, si);
        }
        println!();
    }
    println!(
        "\ngeometric means: EDEN {:.3}x, ideal {:.3}x   (paper: 1.08x EDEN, 1.10x ideal; YOLO up to 1.17x)",
        geometric_mean(&eden_speedups),
        geometric_mean(&ideal_speedups)
    );
    println!("paper shape: YOLO-family DNNs (irregular accesses) gain the most; ResNet and");
    println!("SqueezeNet are not DRAM-latency bound and gain essentially nothing.");
}
