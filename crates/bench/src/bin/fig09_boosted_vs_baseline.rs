//! Figure 9: LeNet accuracy on the (simulated) real approximate DRAM device,
//! before and after EDEN's curricular-retraining boost, as a function of
//! supply voltage and of tRCD.

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::curricular::{CurricularConfig, CurricularTrainer};
use eden_core::faults::ApproximateMemory;
use eden_core::inference;
use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};
use eden_dram::characterize::{characterize_bank, CharacterizeConfig};
use eden_dram::fit::select_model;
use eden_dram::geometry::{partitions, PartitionGranularity};
use eden_dram::inject::Injector;
use eden_dram::{ApproxDramDevice, OperatingPoint, Vendor};
use eden_tensor::Precision;

fn device_accuracy(
    net: &Network,
    dataset: &eden_dnn::data::SyntheticVision,
    device: &ApproxDramDevice,
    op: OperatingPoint,
) -> f32 {
    let partition = partitions(device.geometry(), PartitionGranularity::Bank)[0];
    let bounding =
        BoundingLogic::calibrated(net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let mut memory =
        ApproximateMemory::from_injector(Injector::from_device(*device, partition, op), 1)
            .with_bounding(bounding);
    inference::evaluate_with_faults(net, &dataset.test()[..96], Precision::Int8, &mut memory)
}

fn main() {
    report::init_threads();
    report::header(
        "Figure 9",
        "LeNet on the approximate device: baseline vs boosted (curricular retraining)",
    );
    let (baseline, dataset) = report::train_model(ModelId::LeNet, 6, 3);
    let device = ApproxDramDevice::new(Vendor::A, 77);

    // Boost against the error model fitted at an aggressive profiling point.
    let obs = characterize_bank(
        &device,
        0,
        &OperatingPoint::with_vdd_reduction(0.30),
        &CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 1024,
            reads_per_row: 3,
            seed: 4,
        },
    );
    let fitted = select_model(&obs, 4).model;
    let mut boosted = baseline.clone();
    CurricularTrainer::new(CurricularConfig {
        epochs: 6,
        step_epochs: 2,
        target_ber: fitted.expected_ber().max(1e-3),
        ..CurricularConfig::default()
    })
    .retrain(&mut boosted, &dataset, &fitted);

    println!("\nvoltage sweep (accuracy)");
    println!("{:>8} {:>10} {:>10}", "VDD", "baseline", "boosted");
    for &dv in &[0.05f32, 0.15, 0.25, 0.30, 0.35] {
        let op = OperatingPoint::with_vdd_reduction(dv);
        println!(
            "{:>7.2}V {:>10.3} {:>10.3}",
            op.vdd,
            device_accuracy(&baseline, &dataset, &device, op),
            device_accuracy(&boosted, &dataset, &device, op)
        );
    }

    println!("\ntRCD sweep (accuracy)");
    println!("{:>8} {:>10} {:>10}", "tRCD", "baseline", "boosted");
    for &dt in &[2.0f32, 4.0, 5.5, 7.0, 9.0] {
        let op = OperatingPoint::with_trcd_reduction(dt);
        println!(
            "{:>6.1}ns {:>10.3} {:>10.3}",
            op.timing.trcd_ns,
            device_accuracy(&baseline, &dataset, &device, op),
            device_accuracy(&boosted, &dataset, &device, op)
        );
    }
    println!("\npaper shape: the boosted DNN sustains its accuracy ~0.25 V / ~4.5 ns further");
    println!("into the reduced-parameter regime than the baseline DNN.");
}
