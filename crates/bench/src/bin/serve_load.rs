//! Load test for eden-serve: a synthetic many-tenant workload.
//!
//! Boots an in-process server (or connects to a running daemon via
//! `--socket`), drives it from several client connections round-robining
//! over tenant configurations that map to distinct session shards, and
//! reports request and sample throughput (aggregate and per tenant),
//! latency percentiles (p50/p95/p99), session-shard, weak-map and
//! batch-group counters, and a parallelism factor (aggregate busy time over
//! wall time — the all-cores utilization sanity check).
//!
//! Every response is verified bit-identical to a fresh standalone
//! `EvalSession` evaluating the same spec (disable with `--no-verify` when
//! pointed at a daemon with a different zoo configuration). Exits non-zero
//! on any request error, any verification mismatch, or a parallelism factor
//! under `--min-parallelism`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::faults::ApproximateMemory;
use eden_core::inference::InferenceBackend;
use eden_core::session::EvalSession;
use eden_dnn::zoo::{ModelId, ModelZoo};
use eden_dnn::Dataset as _;
use eden_dram::ErrorModel;
use eden_serve::{serve, Client, Json, ServeConfig};
use eden_tensor::Precision;

const COUNT: usize = 8;
const MEM_SEED: u64 = 11;

/// One tenant: a serving configuration that maps to its own shard key
/// (distinct precision or error-model template).
struct Tenant {
    precision: Precision,
    precision_key: &'static str,
    kind: &'static str,
    ber: f64,
}

const TENANTS: [Tenant; 4] = [
    Tenant {
        precision: Precision::Int8,
        precision_key: "int8",
        kind: "uniform",
        ber: 1e-3,
    },
    Tenant {
        precision: Precision::Int4,
        precision_key: "int4",
        kind: "uniform",
        ber: 1e-2,
    },
    Tenant {
        precision: Precision::Int16,
        precision_key: "int16",
        kind: "wordline",
        ber: 1e-3,
    },
    Tenant {
        precision: Precision::Int8,
        precision_key: "int8",
        kind: "wordline",
        ber: 1e-2,
    },
];

impl Tenant {
    fn request(&self) -> Json {
        Json::obj([
            ("op", Json::str("eval")),
            ("model", Json::str("lenet")),
            ("precision", Json::str(self.precision_key)),
            (
                "error_model",
                Json::obj([("kind", Json::str(self.kind)), ("seed", Json::num(5.0))]),
            ),
            ("ber", Json::num(self.ber)),
            ("count", Json::num(COUNT as f64)),
            ("seed", Json::num(MEM_SEED as f64)),
        ])
    }

    fn template(&self) -> ErrorModel {
        match self.kind {
            "uniform" => ErrorModel::uniform(0.02, 0.5, 5),
            "wordline" => ErrorModel::wordline(0.02, 0.5, 0.9, 5),
            other => unreachable!("unknown tenant kind {other}"),
        }
    }

    /// The ground-truth accuracy from a fresh standalone session.
    fn standalone(&self, zoo: &ModelZoo) -> f32 {
        let entry = zoo.get(ModelId::LeNet);
        let mut session =
            EvalSession::new_shared(entry.net, self.precision, InferenceBackend::default());
        let mut memory =
            ApproximateMemory::from_model(self.template().with_ber(self.ber), MEM_SEED);
        session.evaluate_with_faults(&entry.dataset.test()[..COUNT], &mut memory)
    }
}

fn fatal(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if arg == flag {
            match args.get(i + 1) {
                Some(v) => return Some(v.clone()),
                None => fatal(&format!("{flag} requires a value")),
            }
        }
    }
    None
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v
            .parse::<T>()
            .unwrap_or_else(|_| fatal(&format!("invalid value {v:?} for {flag}"))),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: usize = parse_flag(&args, "--requests", 48);
    let clients: usize = parse_flag(&args, "--clients", 4);
    let workers: usize = parse_flag(&args, "--workers", eden_par::current_num_threads());
    let zoo_epochs: usize = parse_flag(&args, "--zoo-epochs", 1);
    let zoo_seed: u64 = parse_flag(&args, "--zoo-seed", 3);
    let min_parallelism: f64 = parse_flag(&args, "--min-parallelism", 0.0);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let report_path = flag_value(&args, "--report").map(PathBuf::from);
    let external = flag_value(&args, "--socket").map(PathBuf::from);
    if requests == 0 || clients == 0 || workers == 0 {
        fatal("--requests, --clients and --workers must be at least 1");
    }

    // Boot an in-process server unless pointed at a running daemon.
    let (socket, server) = match external {
        Some(path) => (path, None),
        None => {
            let config = ServeConfig {
                socket: std::env::temp_dir()
                    .join(format!("eden-serve-load-{}.sock", std::process::id())),
                workers,
                max_inflight: (workers * 2).max(4),
                zoo_epochs,
                zoo_seed,
                ..ServeConfig::default()
            };
            let handle = serve(config).unwrap_or_else(|e| fatal(&format!("serve: {e}")));
            (handle.socket().clone(), Some(handle))
        }
    };

    println!("eden-serve load test");
    println!(
        "  requests {requests}  clients {clients}  workers {workers}  tenants {}",
        TENANTS.len()
    );

    // Fan the workload out: each client connection round-robins the tenant
    // list, so every shard sees interleaved traffic from every connection.
    let socket = Arc::new(socket);
    let wall_start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let socket = socket.clone();
            let per_client = requests / clients + usize::from(c < requests % clients);
            std::thread::spawn(move || {
                let mut client = Client::connect_with_retry(&*socket, Duration::from_secs(10))
                    .unwrap_or_else(|e| fatal(&format!("connect: {e}")));
                let mut latencies = Vec::with_capacity(per_client);
                let mut results: Vec<(usize, u32)> = Vec::with_capacity(per_client);
                let mut errors = 0usize;
                for i in 0..per_client {
                    let tenant = (c + i) % TENANTS.len();
                    let start = Instant::now();
                    let response = client
                        .request(&TENANTS[tenant].request())
                        .unwrap_or_else(|e| fatal(&format!("request: {e}")));
                    latencies.push(start.elapsed());
                    match (
                        response.get("ok").and_then(Json::as_bool),
                        response.get("accuracy").and_then(Json::as_f64),
                    ) {
                        (Some(true), Some(acc)) => results.push((tenant, (acc as f32).to_bits())),
                        _ => {
                            eprintln!("request error: {response}");
                            errors += 1;
                        }
                    }
                }
                (latencies, results, errors)
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    let mut results: Vec<(usize, u32)> = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for thread in threads {
        let (lat, res, err) = thread.join().expect("client thread panicked");
        latencies.extend(lat);
        results.extend(res);
        errors += err;
    }
    let wall = wall_start.elapsed();

    // Counters from the server, then shut it down if we own it.
    let mut client = Client::connect_with_retry(&*socket, Duration::from_secs(10))
        .unwrap_or_else(|e| fatal(&format!("connect: {e}")));
    let stats = client
        .stats()
        .unwrap_or_else(|e| fatal(&format!("stats: {e}")));
    if args.iter().any(|a| a == "--shutdown") {
        // Ask an external daemon to exit gracefully (CI smoke test).
        let _ = client.shutdown();
    }
    if let Some(handle) = server {
        handle.join();
    }

    let busy: Duration = latencies.iter().sum();
    let parallelism = busy.as_secs_f64() / wall.as_secs_f64().max(1e-9);
    latencies.sort();
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let throughput = latencies.len() as f64 / wall.as_secs_f64().max(1e-9);

    // Sample throughput: every request evaluates COUNT samples, so the
    // aggregate (and each tenant's share) is requests · COUNT over the wall.
    let wall_s = wall.as_secs_f64().max(1e-9);
    let samples_per_sec = results.len() as f64 * COUNT as f64 / wall_s;
    let mut tenant_requests = vec![0usize; TENANTS.len()];
    for &(t, _) in &results {
        tenant_requests[t] += 1;
    }

    let shards = stats.get("shards").cloned().unwrap_or(Json::Null);
    let weak = stats.get("weak_maps").cloned().unwrap_or(Json::Null);
    let ckpt = stats.get("checkpoints").cloned().unwrap_or(Json::Null);
    let batches = stats.get("batches").cloned().unwrap_or(Json::Null);
    let live = shards.get("live").and_then(Json::as_u64).unwrap_or(0);
    let mut report = String::new();
    report.push_str("eden-serve load test report\n");
    report.push_str(&format!(
        "requests {}  clients {clients}  workers {workers}  tenants {}\n",
        latencies.len(),
        TENANTS.len()
    ));
    report.push_str(&format!(
        "wall {:.1} ms  throughput {throughput:.1} req/s  parallelism x{parallelism:.2}\n",
        ms(wall)
    ));
    report.push_str(&format!(
        "latency p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms\n",
        ms(p50),
        ms(p95),
        ms(p99)
    ));
    let per_tenant: Vec<String> = tenant_requests
        .iter()
        .enumerate()
        .map(|(t, &n)| format!("t{t} {:.1}", n as f64 * COUNT as f64 / wall_s))
        .collect();
    report.push_str(&format!(
        "throughput {samples_per_sec:.1} samples/s  per-tenant [{}]\n",
        per_tenant.join("  ")
    ));
    report.push_str(&format!(
        "shards live {live}  hits {}  misses {}  evictions {}\n",
        shards.get("hits").and_then(Json::as_u64).unwrap_or(0),
        shards.get("misses").and_then(Json::as_u64).unwrap_or(0),
        shards.get("evictions").and_then(Json::as_u64).unwrap_or(0),
    ));
    report.push_str(&format!(
        "weak-map cache hits {}  misses {}\n",
        weak.get("hits").and_then(Json::as_u64).unwrap_or(0),
        weak.get("misses").and_then(Json::as_u64).unwrap_or(0),
    ));
    report.push_str(&format!(
        "checkpoints hits {}  misses {}  evictions {}  resident {} B\n",
        ckpt.get("hits").and_then(Json::as_u64).unwrap_or(0),
        ckpt.get("misses").and_then(Json::as_u64).unwrap_or(0),
        ckpt.get("evictions").and_then(Json::as_u64).unwrap_or(0),
        ckpt.get("resident_bytes")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    ));
    report.push_str(&format!(
        "batch groups {}  samples batched {}  fallback {}\n",
        batches.get("groups").and_then(Json::as_u64).unwrap_or(0),
        batches
            .get("samples_batched")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        batches
            .get("fallback_samples")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    ));
    report.push_str(&format!("errors {errors}\n"));
    print!("{report}");

    // Bit-identity: within the run (every response for a tenant identical)
    // and against fresh standalone sessions over the same zoo config.
    let mut mismatches = 0usize;
    if verify {
        let zoo = ModelZoo::new(zoo_epochs, zoo_seed);
        for (t, tenant) in TENANTS.iter().enumerate() {
            let got: Vec<u32> = results
                .iter()
                .filter(|(idx, _)| *idx == t)
                .map(|&(_, bits)| bits)
                .collect();
            let expected = tenant.standalone(&zoo).to_bits();
            let ok = !got.is_empty() && got.iter().all(|&bits| bits == expected);
            if !ok {
                eprintln!(
                    "tenant {t} ({} {} ber {}): served results differ from standalone",
                    tenant.precision_key, tenant.kind, tenant.ber
                );
                mismatches += 1;
            }
        }
        println!(
            "verification: {}/{} tenant configs bit-identical to standalone",
            TENANTS.len() - mismatches,
            TENANTS.len()
        );
    }

    if let Some(path) = report_path {
        std::fs::write(&path, &report).unwrap_or_else(|e| fatal(&format!("write report: {e}")));
        println!("report written to {}", path.display());
    }

    if errors > 0 {
        fatal(&format!("{errors} request(s) failed"));
    }
    if mismatches > 0 {
        fatal("served results are not bit-identical to standalone sessions");
    }
    if live < 2 {
        fatal(&format!(
            "expected at least 2 live session shards, server reports {live}"
        ));
    }
    if parallelism < min_parallelism {
        fatal(&format!(
            "parallelism x{parallelism:.2} below the --min-parallelism x{min_parallelism:.2} floor"
        ));
    }
    println!("PASS");
}
