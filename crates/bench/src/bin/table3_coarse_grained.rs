//! Table 3: coarse-grained characterization and mapping — the maximum
//! tolerable BER of each DNN and the corresponding ΔVDD / ΔtRCD on the
//! vendor-A device, for FP32 and int8.

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::characterize::{coarse_characterize_session, CoarseConfig};
use eden_core::curricular::{CurricularConfig, CurricularTrainer};
use eden_core::mapping::coarse_map;
use eden_core::session::EvalSession;
use eden_dnn::zoo::ModelId;
use eden_dnn::Dataset;
use eden_dram::{ErrorModel, Vendor};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    let backend = report::parse_backend();
    report::header(
        "Table 3",
        "max tolerable BER and ΔVDD/ΔtRCD per DNN (coarse-grained), <1% accuracy drop",
    );
    let template = ErrorModel::uniform(0.02, 0.5, 7);
    let vendor = Vendor::A.profile();

    println!(
        "{:<14} {:<6} {:>10} {:>8} {:>9}   (paper: BER, ΔVDD, ΔtRCD)",
        "model", "prec", "max BER", "ΔVDD", "ΔtRCD"
    );
    for id in [
        ModelId::ResNet,
        ModelId::MobileNet,
        ModelId::Vgg16,
        ModelId::DenseNet,
        ModelId::SqueezeNet,
        ModelId::AlexNet,
        ModelId::Yolo,
        ModelId::YoloTiny,
    ] {
        let (mut net, dataset) = report::train_model(id, 6, 1);
        // Boost once before characterizing (the deployed DNN is the boosted one).
        CurricularTrainer::new(CurricularConfig {
            epochs: 3,
            step_epochs: 1,
            target_ber: 1e-2,
            ..CurricularConfig::default()
        })
        .retrain(&mut net, &dataset, &template);

        for (precision, paper) in [
            (Precision::Fp32, id.spec().paper.coarse_fp32),
            (Precision::Int8, id.spec().paper.coarse_int8),
        ] {
            let bounding = BoundingLogic::calibrated(
                &net,
                &dataset.train()[..16],
                1.5,
                CorrectionPolicy::Zero,
            );
            // One session per (model, precision): the binary search's probes
            // share weight images, pools and weak-cell maps. FP32 rows always
            // take the simulated path; integer rows honor --backend.
            let mut session = EvalSession::new(&net, precision, backend);
            let coarse = coarse_characterize_session(
                &mut session,
                &dataset,
                &template,
                Some(bounding),
                &CoarseConfig {
                    eval_samples: 48,
                    iterations: 6,
                    accuracy_drop: 0.01,
                    backend,
                    ..CoarseConfig::default()
                },
            );
            let mapping = coarse_map(coarse.max_tolerable_ber, &vendor);
            let paper_str = paper
                .map(|(b, v, t)| format!("{:.1}%, -{:.2}V, -{:.1}ns", 100.0 * b, v, t))
                .unwrap_or_else(|| "—".to_string());
            println!(
                "{:<14} {:<6} {:>9.2}% {:>7.2}V {:>7.1}ns   ({paper_str})",
                id.spec().display_name,
                precision.to_string(),
                100.0 * coarse.max_tolerable_ber,
                mapping.vdd_reduction,
                mapping.trcd_reduction_ns,
            );
        }
    }
    println!("\npaper shape: tolerable BER varies strongly by model (0.5%–5%), and larger");
    println!("tolerable BERs translate into larger voltage and tRCD reductions.");
}
