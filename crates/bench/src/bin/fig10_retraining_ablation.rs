//! Figure 10: accuracy-vs-BER curves of the boosted ResNet.
//! Left: retraining with a good-fit vs a poor-fit error model.
//! Right: curricular vs non-curricular retraining (both with the good fit).

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::curricular::{CurricularConfig, CurricularTrainer};
use eden_core::inference::accuracy_vs_ber;
use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};
use eden_dram::ErrorModel;
use eden_tensor::Precision;

const BERS: [f64; 5] = [1e-4, 1e-3, 5e-3, 2e-2, 1e-1];

fn curve(
    net: &Network,
    dataset: &eden_dnn::data::SyntheticVision,
    eval_model: &ErrorModel,
) -> Vec<(f64, f32)> {
    let bounding =
        BoundingLogic::calibrated(net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    accuracy_vs_ber(
        net,
        &dataset.test()[..64],
        Precision::Int8,
        eval_model,
        &BERS,
        Some(bounding),
        17,
    )
}

fn print_curves(label: &str, curves: &[(&str, Vec<(f64, f32)>)]) {
    println!("\n{label}");
    print!("{:<26}", "BER");
    for b in BERS {
        print!(" {:>9.0e}", b);
    }
    println!();
    for (name, c) in curves {
        print!("{:<26}", name);
        for (_, acc) in c {
            print!(" {:>9}", report::acc(*acc));
        }
        println!();
    }
}

fn main() {
    report::init_threads();
    report::header(
        "Figure 10",
        "retraining ablations: error-model fit quality and curricular schedule",
    );
    let (baseline, dataset) = report::train_model(ModelId::ResNet, 6, 2);

    // The device errors are data-dependent with a bitline flavour; the
    // "good fit" captures that, the "poor fit" is a mis-parameterized
    // uniform model (far larger weak-cell failure probability and no
    // data dependence).
    let good_fit = ErrorModel::data_dependent(0.02, 0.65, 0.35, 3);
    let poor_fit = ErrorModel::uniform(0.4, 0.02, 99);
    let eval_model = good_fit;

    let retrain = |model: &ErrorModel, curricular: bool, seed: u64| -> Network {
        let mut net = baseline.clone();
        CurricularTrainer::new(CurricularConfig {
            epochs: 4,
            step_epochs: 1,
            target_ber: 1e-2,
            curricular,
            seed,
            ..CurricularConfig::default()
        })
        .retrain(&mut net, &dataset, model);
        net
    };

    let good_net = retrain(&good_fit, true, 1);
    let poor_net = retrain(&poor_fit, true, 2);
    let noncurricular_net = retrain(&good_fit, false, 3);

    print_curves(
        "left: fit quality (evaluated against the good-fit model's errors)",
        &[
            (
                "baseline (no retraining)",
                curve(&baseline, &dataset, &eval_model),
            ),
            (
                "poor-fit retraining",
                curve(&poor_net, &dataset, &eval_model),
            ),
            (
                "good-fit retraining",
                curve(&good_net, &dataset, &eval_model),
            ),
        ],
    );
    print_curves(
        "right: schedule (both retrained with the good-fit model)",
        &[
            (
                "baseline (no retraining)",
                curve(&baseline, &dataset, &eval_model),
            ),
            (
                "non-curricular retraining",
                curve(&noncurricular_net, &dataset, &eval_model),
            ),
            (
                "curricular retraining",
                curve(&good_net, &dataset, &eval_model),
            ),
        ],
    );
    println!("\npaper shape: good-fit curricular retraining shifts the accuracy knee to a BER");
    println!("5-10x higher; poor-fit or non-curricular retraining gives much smaller gains.");
}
