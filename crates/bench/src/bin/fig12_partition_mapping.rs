//! Figure 12: mapping of ResNet IFMs and weights onto four DRAM partitions
//! operated at different supply voltages (Algorithm 1).

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::characterize::{fine_characterize, FineConfig};
use eden_core::mapping::fine_map;
use eden_dnn::zoo::ModelId;
use eden_dnn::Dataset;
use eden_dram::characterize::{CharacterizeConfig, DramErrorProfile};
use eden_dram::geometry::{partitions, PartitionGranularity};
use eden_dram::{ApproxDramDevice, ErrorModel, OperatingPoint, Vendor};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Figure 12",
        "mapping ResNet data types onto 4 DRAM partitions with different VDD",
    );
    let (net, dataset) = report::train_model(ModelId::ResNet, 6, 2);
    let template = ErrorModel::uniform(0.02, 0.5, 5);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let fine = fine_characterize(
        &net,
        &dataset,
        Precision::Int8,
        &template,
        Some(bounding),
        &FineConfig {
            eval_samples: 32,
            bootstrap_ber: 1e-3,
            max_rounds: 3,
            ..FineConfig::default()
        },
    );

    let device = ApproxDramDevice::new(Vendor::A, 31);
    let parts = partitions(device.geometry(), PartitionGranularity::Bank);
    let ops = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_vdd_reduction(0.10),
        OperatingPoint::with_vdd_reduction(0.25),
        OperatingPoint::with_vdd_reduction(0.35),
    ];
    let profile = DramErrorProfile::characterize(
        &device,
        &parts[..4],
        &ops,
        &CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 1024,
            reads_per_row: 3,
            seed: 3,
        },
    );

    let mapping = fine_map(&fine, &profile, Precision::Int8);
    println!("partition operating points:");
    for (p, op_idx) in mapping.partition_ops.iter().enumerate() {
        match op_idx {
            Some(o) => println!(
                "  partition {p}: {} (measured BER {:.2e})",
                profile.operating_points[*o],
                profile.ber(p, *o)
            ),
            None => println!("  partition {p}: unused"),
        }
    }
    println!("\nassignments:");
    println!(
        "{:<28} {:>12} {:>10} {:>14}",
        "data type", "tol. BER", "partition", "partition VDD"
    );
    for a in &mapping.assignments {
        println!(
            "{:<28} {:>12.2e} {:>10} {:>13.2}V",
            a.data.site.to_string(),
            a.tolerable_ber,
            a.partition_index,
            profile.operating_points[a.op_index].vdd
        );
    }
    println!(
        "\n{} data types mapped, {} left on nominal DRAM; {:.1}% of bytes on reduced-voltage partitions",
        mapping.assignments.len(),
        mapping.unmapped.len(),
        100.0 * mapping.mapped_fraction(Precision::Int8)
    );
    println!("paper shape: tolerant (deep/middle) data lands in strongly-reduced partitions,");
    println!("sensitive (first/last) data in mildly-reduced ones.");
}
