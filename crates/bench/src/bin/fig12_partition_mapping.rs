//! Figure 12, generalized to multi-module memory systems: fine-grained
//! mapping of ResNet IFMs and weights onto DRAM partitions operated at
//! different (VDD, tRCD) points (Algorithm 1), swept from a single module up
//! to a three-module system whose modules come from different vendors and
//! offer different operating points. Each plan is scored during the search by
//! the system simulator's mixed energy/latency model and reported with its
//! measured end-to-end accuracy, DRAM energy saving and speedup.

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::characterize::{fine_characterize_session, FineConfig};
use eden_core::faults::ApproximateMemory;
use eden_core::mapping::{multi_module_map, MultiModuleConfig, PlacementPlan, SlotTraffic};
use eden_core::session::EvalSession;
use eden_dnn::zoo::ModelId;
use eden_dnn::Dataset;
use eden_dram::characterize::CharacterizeConfig;
use eden_dram::geometry::{DramGeometry, Partition};
use eden_dram::system::{DramModule, MemorySystem};
use eden_dram::{ApproxDramDevice, ErrorModel, OperatingPoint, Vendor};
use eden_sysim::workload::WorkloadProfile;
use eden_sysim::{CpuSim, SystemSim, TrafficShare};
use eden_tensor::Precision;

/// Adapts the search's per-slot traffic accounting to the system simulator's
/// traffic-share model (same shape, different layer of the stack).
fn to_shares(shares: &[SlotTraffic]) -> Vec<TrafficShare> {
    shares
        .iter()
        .map(|s| TrafficShare {
            bytes: s.bytes,
            vdd_reduction: s.vdd_reduction,
            trcd_reduction_ns: s.trcd_reduction_ns,
        })
        .collect()
}

fn main() {
    report::init_threads();
    let backend = report::parse_backend();
    let refetch = report::parse_refetch();
    report::header(
        "Figure 12",
        "fine-grained mapping of ResNet data onto single- and multi-module DRAM",
    );
    let precision = Precision::Int8;
    let (net, dataset) = report::train_model(ModelId::ResNet, 6, 2);
    let template = ErrorModel::uniform(0.02, 0.5, 5);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let mut session = EvalSession::new(&net, precision, backend).with_refetch_mode(refetch);
    let fine = fine_characterize_session(
        &mut session,
        &dataset,
        &template,
        Some(bounding),
        &FineConfig {
            eval_samples: 32,
            accuracy_drop: 0.05,
            bootstrap_ber: 2e-3,
            step_factor: 2.0,
            max_rounds: 4,
            ..FineConfig::default()
        },
    );

    // Three modules from three vendors, each offering its own operating
    // points: A reduces VDD (the original Figure 12 sweep), B reduces tRCD,
    // and C — the high-guardband vendor — offers both. Partition capacities
    // are a handful of rows so the model does not trivially fit into the
    // single best partition: plans must spread and split sites across
    // modules, which is exactly the placement problem the sweep studies.
    let cfg = CharacterizeConfig {
        rows_per_pattern: 1,
        bitlines_per_row: 1024,
        reads_per_row: 3,
        seed: 3,
    };
    let small_partitions = |geometry: &DramGeometry, rows: u64| -> Vec<Partition> {
        (0..2)
            .map(|i| Partition {
                index: i,
                bank: i,
                first_subarray: 0,
                subarrays: 1,
                capacity_bytes: rows * geometry.row_bytes as u64,
            })
            .collect()
    };
    let device_a = ApproxDramDevice::new(Vendor::A, 31);
    let module_a = DramModule::characterize(
        device_a,
        &small_partitions(device_a.geometry(), 4),
        &[
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.05),
            OperatingPoint::with_vdd_reduction(0.08),
            OperatingPoint::with_vdd_reduction(0.10),
            OperatingPoint::with_vdd_reduction(0.25),
        ],
        &cfg,
    );
    let device_b = ApproxDramDevice::new(Vendor::B, 32);
    let module_b = DramModule::characterize(
        device_b,
        &small_partitions(device_b.geometry(), 8),
        &[
            OperatingPoint::nominal(),
            OperatingPoint::with_trcd_reduction(0.5),
            OperatingPoint::with_trcd_reduction(1.0),
            OperatingPoint::with_trcd_reduction(2.5),
        ],
        &cfg,
    );
    let device_c = ApproxDramDevice::new(Vendor::C, 33);
    let module_c = DramModule::characterize(
        device_c,
        &small_partitions(device_c.geometry(), 8),
        &[
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.10),
            OperatingPoint::with_vdd_reduction(0.20),
            OperatingPoint::with_trcd_reduction(1.0),
            OperatingPoint::with_trcd_reduction(2.0),
        ],
        &cfg,
    );
    let systems = [
        ("1 module (A)", MemorySystem::new(vec![module_a.clone()])),
        (
            "2 modules (A+B)",
            MemorySystem::new(vec![module_a.clone(), module_b.clone()]),
        ),
        (
            "3 modules (A+B+C)",
            MemorySystem::new(vec![module_a, module_b, module_c]),
        ),
    ];

    // The search's objective is the simulator's own cost model: bytes-weighted
    // DRAM energy saving plus the bytes-weighted harmonic-mean speedup gain.
    // The Table 4 CPU is the system where both VDD and tRCD reductions pay
    // off (the accelerators hide activation latency almost entirely).
    let sim = CpuSim::table4();
    let workload = WorkloadProfile::from_network(&net, precision, 0.05);
    let score = |shares: &[SlotTraffic]| -> f64 {
        let shares = to_shares(shares);
        sim.mixed_energy_saving(&workload, &shares)
            + (sim.mixed_trcd_speedup(&workload, &shares) - 1.0)
    };

    let samples = &dataset.test()[..48];
    let baseline = session.evaluate_reliable(samples);
    println!("\nreliable baseline accuracy: {}", report::acc(baseline));

    let mut rows: Vec<(String, PlacementPlan, f32, f64, f64)> = Vec::new();
    for (name, system) in &systems {
        let plan = multi_module_map(
            &fine,
            system,
            precision,
            &MultiModuleConfig::default(),
            &score,
        );
        println!("\n{name}: per-partition operating points");
        let shares = plan.traffic_shares(system, precision);
        let mut share = shares.iter();
        for (m, p) in system.slots() {
            match plan.partition_ops[m][p] {
                Some(o) => {
                    let module = system.module(m);
                    let bytes = share.next().map_or(0, |s| s.bytes);
                    println!(
                        "  module {m} ({:?}) partition {p}: {} (BER {:.2e}, {} KiB placed)",
                        module.device().vendor(),
                        module.operating_points()[o],
                        module.ber(p, o),
                        bytes / 1024,
                    );
                }
                None => println!("  module {m} partition {p}: unused"),
            }
        }
        let split = plan.placements.iter().filter(|p| p.spans.len() > 1).count();
        if split > 0 {
            println!("  ({split} data types split across several partitions)");
        }
        let mut memory = ApproximateMemory::reliable(97).with_bounding(bounding);
        plan.apply_to(&mut memory, system);
        let accuracy = session.evaluate_with_faults(samples, &mut memory);
        // Unmapped data stays on nominal DRAM; it must weigh into the
        // workload-wide energy/latency numbers as a zero-reduction share.
        let mut shares = to_shares(&shares);
        shares.push(TrafficShare {
            bytes: plan.unmapped.iter().map(|d| d.bytes(precision)).sum(),
            vdd_reduction: 0.0,
            trcd_reduction_ns: 0.0,
        });
        let energy = sim.mixed_energy_saving(&workload, &shares);
        let speedup = sim.mixed_trcd_speedup(&workload, &shares);
        rows.push((name.to_string(), plan, accuracy, energy, speedup));
    }

    println!(
        "\n{:<20} {:>8} {:>10} {:>9} {:>14} {:>9}",
        "system", "mapped", "accuracy", "vs base", "energy saving", "speedup"
    );
    for (name, plan, accuracy, energy, speedup) in &rows {
        println!(
            "{:<20} {:>8} {:>10} {:>+9.3} {:>14} {:>7.4}x",
            name,
            report::pct(plan.mapped_fraction(precision)),
            report::acc(*accuracy),
            accuracy - baseline,
            report::pct(*energy),
            speedup,
        );
    }
    println!("\npaper shape: tolerant data lands in strongly-reduced partitions, sensitive");
    println!("data in mildly-reduced ones; extra modules raise the mapped fraction and the");
    println!("workload-wide energy saving, with the tRCD module adding capacity at a");
    println!("modest (sub-percent on the CPU) latency gain.");
}
