//! Table 2: baseline accuracy of every model at int4 / int8 / int16 / FP32
//! on reliable DRAM (no bit errors), after post-training quantization.

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_dnn::{metrics, quantized, Dataset};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Table 2",
        "baseline accuracy per numeric precision on reliable DRAM",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8}   (paper FP32)",
        "model", "int4", "int8", "int16", "FP32"
    );
    for id in ModelId::all() {
        let (net, dataset) = eden_bench::report::train_model(id, 6, 1);
        print!("{:<14}", id.spec().display_name);
        for precision in Precision::all() {
            let q = quantized::quantize_network(&net, precision);
            let acc = metrics::accuracy(&q, dataset.test());
            print!(" {:>8}", eden_bench::report::pct(acc as f64));
        }
        let paper_fp32 = id.spec().paper.baseline_accuracy[3]
            .map(|a| format!("{:.1}%", 100.0 * a))
            .unwrap_or_else(|| "—".to_string());
        println!("   ({paper_fp32})");
    }
    println!("\npaper shape: accuracy grows with precision; int4 collapses for some models;");
    println!("absolute values differ because our models/datasets are synthetic stand-ins.");
}
