//! Table 1: the evaluated DNN models, their datasets, and their model /
//! IFM+weight sizes (paper sizes vs the sizes of our scaled-down stand-ins).

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_dnn::{quantized, Dataset};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header("Table 1", "DNN models used in the evaluation");
    println!(
        "{:<14} {:<12} {:>10} {:>14} | {:>12} {:>16} {:>9}",
        "model", "dataset", "paper MB", "paper IFM+W MB", "ours KB", "ours IFM+W KB", "params"
    );
    for id in ModelId::all() {
        let spec = id.spec();
        let dataset = id.dataset(0);
        let net = id.build(&dataset.spec(), 0);
        let fp = quantized::footprint(&net, Precision::Fp32);
        println!(
            "{:<14} {:<12} {:>10.1} {:>14.1} | {:>12.1} {:>16.1} {:>9}",
            spec.display_name,
            spec.paper_dataset,
            spec.paper.model_size_mb,
            spec.paper.ifm_weight_size_mb,
            fp.weight_bytes as f64 / 1024.0,
            fp.total_bytes() as f64 / 1024.0,
            net.param_count()
        );
    }
    println!(
        "\nour stand-ins preserve architecture family and relative ordering, not absolute size"
    );
    println!(
        "(system-level experiments scale traffic back to the paper footprints; see DESIGN.md)."
    );
}
