//! Figure 13: DRAM energy savings of EDEN on the CPU system (Table 4), per
//! DNN, for FP32 and int8, using each model's Table 3 operating point.

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_sysim::result::geometric_mean;
use eden_sysim::{CpuSim, SystemSim, WorkloadProfile};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Figure 13",
        "CPU DRAM energy savings per DNN (FP32 and int8)",
    );
    let cpu: &dyn SystemSim = &CpuSim::table4();
    println!("{:<14} {:>10} {:>10}", "model", "FP32", "int8");
    let mut ratios = Vec::new();
    for id in ModelId::system_eval() {
        let spec = id.spec();
        print!("{:<14}", spec.display_name);
        for (precision, coarse) in [
            (Precision::Fp32, spec.paper.coarse_fp32),
            (Precision::Int8, spec.paper.coarse_int8),
        ] {
            let Some((_, dvdd, _)) = coarse else {
                print!(" {:>10}", "—");
                continue;
            };
            let workload = WorkloadProfile::for_model(id, precision);
            let saving = cpu.energy_saving(&workload, dvdd);
            ratios.push(1.0 - saving);
            print!(" {:>9.1}%", 100.0 * saving);
        }
        println!();
    }
    println!(
        "\ngeometric-mean DRAM energy saving: {}   (paper: 21% average, 29% for YOLO/VGG)",
        report::pct(1.0 - geometric_mean(&ratios))
    );
    println!("paper shape: savings track each model's tolerable voltage reduction; FP32 and");
    println!("int8 savings are similar because their ΔVDD values are similar.");
}
