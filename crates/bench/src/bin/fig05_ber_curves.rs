//! Figure 5: BER vs supply voltage and vs tRCD for data patterns
//! 0xFF / 0xCC / 0xAA / 0x00 on devices from vendors A, B and C.

use eden_bench::report;
use eden_dram::characterize::{measured_pattern_ber, CharacterizeConfig, DATA_PATTERNS};
use eden_dram::{ApproxDramDevice, OperatingPoint, Vendor};

fn main() {
    report::init_threads();
    report::header(
        "Figure 5",
        "bit error rate vs reduced VDD and reduced tRCD, per data pattern and vendor",
    );
    let cfg = CharacterizeConfig {
        rows_per_pattern: 2,
        bitlines_per_row: 2048,
        reads_per_row: 2,
        seed: 7,
    };

    for vendor in Vendor::all() {
        let device = ApproxDramDevice::new(vendor, 100 + vendor as u64);
        println!("\n{vendor} — supply voltage sweep (nominal 1.35 V)");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "VDD", "0xFF", "0xCC", "0xAA", "0x00"
        );
        for &dv in &[0.0f32, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40] {
            let op = OperatingPoint::with_vdd_reduction(dv);
            print!("{:>7.2}V", op.vdd);
            for &pattern in &DATA_PATTERNS {
                print!(
                    " {:>12.3e}",
                    measured_pattern_ber(&device, pattern, &op, &cfg)
                );
            }
            println!();
        }
        println!("\n{vendor} — tRCD sweep (nominal 12.5 ns)");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "tRCD", "0xFF", "0xCC", "0xAA", "0x00"
        );
        for &dt in &[0.0f32, 2.5, 4.0, 5.0, 6.0, 7.5, 9.0, 10.0] {
            let op = OperatingPoint::with_trcd_reduction(dt);
            print!("{:>6.1}ns", op.timing.trcd_ns);
            for &pattern in &DATA_PATTERNS {
                print!(
                    " {:>12.3e}",
                    measured_pattern_ber(&device, pattern, &op, &cfg)
                );
            }
            println!();
        }
    }
    println!("\npaper shape: BER rises as VDD/tRCD shrink; 0xFF worst under voltage scaling,");
    println!("0x00 worst under tRCD scaling; vendors differ in where the knee falls.");
}
