//! Figure 11: fine-grained characterization — the maximum tolerable BER of
//! each individual IFM and weight tensor of the ResNet stand-in, ordered by
//! depth.

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::characterize::{
    coarse_characterize_session, fine_characterize_session, CoarseConfig, FineConfig,
};
use eden_core::session::EvalSession;
use eden_dnn::zoo::ModelId;
use eden_dnn::{DataKind, Dataset};
use eden_dram::ErrorModel;
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    let backend = report::parse_backend();
    let refetch = report::parse_refetch();
    report::header(
        "Figure 11",
        "per-IFM / per-weight tolerable BER of ResNet (fine-grained characterization)",
    );
    let (net, dataset) = report::train_model(ModelId::ResNet, 6, 2);
    let template = ErrorModel::uniform(0.02, 0.5, 5);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);

    // One session serves the coarse bootstrap *and* the fine-grained sweep:
    // the weight images, corrupted-weight pools, reliable baseline and
    // weak-cell maps carry over between the two characterizations.
    let mut session = EvalSession::new(&net, Precision::Int8, backend).with_refetch_mode(refetch);
    let coarse = coarse_characterize_session(
        &mut session,
        &dataset,
        &template,
        Some(bounding),
        &CoarseConfig {
            eval_samples: 48,
            iterations: 6,
            ..CoarseConfig::default()
        },
    );
    println!(
        "coarse-grained tolerable BER (bootstrap): {:.2e}\n",
        coarse.max_tolerable_ber
    );

    let fine = fine_characterize_session(
        &mut session,
        &dataset,
        &template,
        Some(bounding),
        &FineConfig {
            eval_samples: 32,
            bootstrap_ber: (coarse.max_tolerable_ber * 0.5).max(1e-4),
            step_factor: 1.5,
            max_rounds: 4,
            ..FineConfig::default()
        },
    );

    println!(
        "{:<28} {:<8} {:>9} {:>12} {:>8}",
        "data type (depth order)", "kind", "elements", "max BER", "vs coarse"
    );
    for (info, ber) in &fine.tolerances {
        println!(
            "{:<28} {:<8} {:>9} {:>12.2e} {:>7.1}x",
            info.site.to_string(),
            if info.site.kind == DataKind::Weight {
                "weight"
            } else {
                "IFM"
            },
            info.elements,
            ber,
            ber / coarse.max_tolerable_ber.max(1e-12)
        );
    }
    println!(
        "\nmax fine-grained tolerance: {:.2e} ({:.1}x the coarse-grained tolerance)",
        fine.max_tolerance(),
        fine.max_tolerance() / coarse.max_tolerable_ber.max(1e-12)
    );
    println!("paper shape: weights usually tolerate more than IFMs; individual data types");
    println!("tolerate up to ~3x the coarse-grained BER; the first layers tolerate the least.");
}
