//! Section 7.2 (accelerators): DRAM energy savings of EDEN on Eyeriss and
//! TPU with DDR4 and LPDDR3, and the (absence of) speedup from reduced tRCD.

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_dram::OperatingPoint;
use eden_sysim::result::geometric_mean;
use eden_sysim::{accelerator_sims, WorkloadProfile};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Section 7.2 (accelerators)",
        "Eyeriss / TPU DRAM energy savings (DDR4 and LPDDR3) and tRCD speedup",
    );
    let workloads = [ModelId::AlexNet, ModelId::YoloTiny];
    // The shared Table 6 trait-object list: the experiment loop below only
    // touches the `SystemSim` interface.
    let sims = accelerator_sims();
    println!(
        "{:<16} {:<12} {:>12} {:>14}",
        "accelerator", "workload", "energy save", "tRCD speedup"
    );
    for sim in &sims {
        let mut ratios = Vec::new();
        for id in workloads {
            let spec = id.spec();
            let Some((_, dvdd, dtrcd)) = spec.paper.coarse_int8 else {
                continue;
            };
            let workload = WorkloadProfile::for_model(id, Precision::Int8);
            let nominal = sim.run(&workload, &OperatingPoint::nominal());
            let reduced = sim.run(&workload, &OperatingPoint::with_vdd_reduction(dvdd));
            let faster = sim.run(&workload, &OperatingPoint::with_trcd_reduction(dtrcd));
            let saving = reduced.energy_reduction_vs(&nominal);
            ratios.push(1.0 - saving);
            println!(
                "{:<16} {:<12} {:>11.1}% {:>13.3}x",
                sim.name(),
                spec.display_name,
                100.0 * saving,
                faster.speedup_over(&nominal)
            );
        }
        println!(
            "{:<16} {:<12} {:>11.1}% (geometric mean)",
            sim.name(),
            "—",
            100.0 * (1.0 - geometric_mean(&ratios))
        );
    }
    println!("\npaper: 31% (Eyeriss/DDR4), 32% (TPU/DDR4), 21% (LPDDR3) DRAM energy savings;");
    println!(
        "no speedup from tRCD reduction because the accelerators' accesses are fully prefetchable."
    );
}
