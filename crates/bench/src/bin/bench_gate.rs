//! CI performance-regression gate over the JSON-lines emitted by the
//! criterion shim (`EDEN_BENCH_JSON`).
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance 0.20]
//! ```
//!
//! Every benchmark present in the baseline must be present in the current
//! run and must not be slower than `baseline × calibration × (1 + tolerance)`
//! on its **minimum** per-iteration time — the minimum is far more robust
//! than the mean against co-tenant noise on shared CI runners (the shim does
//! no outlier rejection). `calibration` is the ratio of the two runs'
//! `calibration/spin` entries (a fixed scalar workload), which cancels
//! absolute machine-speed differences between the runner that recorded the
//! baseline and the runner executing the gate; it defaults to 1 when either
//! file lacks the entry. The scale is computed on the entries' **median**
//! (`median_ns`, falling back to `min_ns` for baselines recorded before the
//! shim reported medians): a scale from two single minimums wobbled by more
//! than an order of magnitude across runs on busy runners, and a bad scale
//! poisons every per-entry budget at once — the per-entry comparisons stay
//! on the minimum, where a noise spike can only fail its own entry.
//!
//! The per-entry table — normalized ratio and verdict for every benchmark —
//! is printed on PASS as well as FAIL, so a green run still shows where the
//! time went; entries only present in the current run are listed as `NEW`
//! (informational, never a failure).
//!
//! Exit status: 0 when every benchmark passes, 1 on any regression or
//! missing benchmark, 2 on usage/parse errors. The tolerance can also be set
//! via the `BENCH_GATE_TOLERANCE` environment variable (the flag wins).

use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    group: String,
    id: String,
    min_ns: f64,
    /// Absent in baselines recorded before the shim reported medians.
    median_ns: Option<f64>,
}

impl Entry {
    /// The statistic the machine-speed calibration uses: the median when
    /// recorded, else the minimum.
    fn calibration_ns(&self) -> f64 {
        self.median_ns.unwrap_or(self.min_ns)
    }
}

impl Entry {
    fn key(&self) -> String {
        format!("{}/{}", self.group, self.id)
    }
}

/// Extracts the value of a `"field":` from a single JSON-lines record.
/// Only handles the flat records the criterion shim writes.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse(path: &str) -> Result<Vec<Entry>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (ln, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let entry = (|| {
            Some(Entry {
                group: field(line, "group")?.to_string(),
                id: field(line, "id")?.to_string(),
                min_ns: field(line, "min_ns")?.parse::<f64>().ok()?,
                median_ns: field(line, "median_ns").and_then(|v| v.parse::<f64>().ok()),
            })
        })()
        .ok_or_else(|| format!("{path}:{}: malformed bench record: {line}", ln + 1))?;
        out.push(entry);
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(out)
}

fn find<'a>(entries: &'a [Entry], key: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.key() == key)
}

/// One comparison row, kept so the table can be rendered twice: to stdout
/// as it is computed, and to `$GITHUB_STEP_SUMMARY` as markdown afterwards.
struct Row {
    key: String,
    base_ns: Option<f64>,
    cur_ns: Option<f64>,
    ratio: Option<f64>,
    verdict: &'static str,
}

fn fmt_ns(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |ns| format!("{ns:.0}"))
}

/// Renders the per-entry delta table as a GitHub-flavored markdown job
/// summary. `NEW` entries (present only in the current run) are included so
/// a freshly added benchmark shows up in the PR's summary pane immediately,
/// not only after the next baseline regeneration.
fn markdown_summary(rows: &[Row], tolerance: f64, scale: f64, ok: bool) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "### Bench gate: {}\n\ntolerance {:.0}%, machine-speed scale {scale:.3}\n\n",
        if ok { "PASS" } else { "FAIL" },
        tolerance * 100.0
    ));
    md.push_str("| benchmark | base min ns | cur min ns | ratio | verdict |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for r in rows {
        md.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            r.key,
            fmt_ns(r.base_ns),
            fmt_ns(r.cur_ns),
            r.ratio.map_or_else(|| "-".into(), |x| format!("{x:.2}x")),
            r.verdict
        ));
    }
    md
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().ok_or("--tolerance needs a value")?;
            tolerance = Some(
                v.parse::<f64>()
                    .map_err(|e| format!("bad tolerance: {e}"))?,
            );
        } else {
            paths.push(arg.clone());
        }
    }
    if paths.len() != 2 {
        return Err("usage: bench_gate <baseline.json> <current.json> [--tolerance 0.20]".into());
    }
    let tolerance = tolerance
        .or_else(|| {
            std::env::var("BENCH_GATE_TOLERANCE")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0.20);

    let baseline = parse(&paths[0])?;
    let current = parse(&paths[1])?;

    const CAL: &str = "calibration/spin";
    // Median-based (see module doc): both sides must report a median for it
    // to be used, so a median is never compared against a minimum.
    let scale = match (find(&baseline, CAL), find(&current, CAL)) {
        (Some(b), Some(c)) => {
            let (b_ns, c_ns) = if b.median_ns.is_some() && c.median_ns.is_some() {
                (b.calibration_ns(), c.calibration_ns())
            } else {
                (b.min_ns, c.min_ns)
            };
            if b_ns > 0.0 {
                c_ns / b_ns
            } else {
                1.0
            }
        }
        _ => 1.0,
    };
    println!(
        "bench gate: tolerance {:.0}%, machine-speed scale {scale:.3}",
        tolerance * 100.0
    );
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict",
        "benchmark", "base min ns", "cur min ns", "ratio"
    );

    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    for base in &baseline {
        let key = base.key();
        if key == CAL {
            continue;
        }
        match find(&current, &key) {
            None => {
                println!(
                    "{key:<45} {:>12.0} {:>12} {:>9}  MISSING",
                    base.min_ns, "-", "-"
                );
                ok = false;
                rows.push(Row {
                    key,
                    base_ns: Some(base.min_ns),
                    cur_ns: None,
                    ratio: None,
                    verdict: "MISSING",
                });
            }
            Some(cur) => {
                let budget = base.min_ns * scale;
                let ratio = cur.min_ns / budget.max(1.0);
                let pass = ratio <= 1.0 + tolerance;
                println!(
                    "{key:<45} {:>12.0} {:>12.0} {:>8.2}x  {}",
                    base.min_ns,
                    cur.min_ns,
                    ratio,
                    if pass { "ok" } else { "REGRESSION" }
                );
                ok &= pass;
                rows.push(Row {
                    key,
                    base_ns: Some(base.min_ns),
                    cur_ns: Some(cur.min_ns),
                    ratio: Some(ratio),
                    verdict: if pass { "ok" } else { "REGRESSION" },
                });
            }
        }
    }
    // Entries the baseline does not know yet: report them (with no budget to
    // compare against) so a freshly added benchmark is visible in the log
    // instead of silently unguarded until the next baseline regeneration.
    for cur in &current {
        let key = cur.key();
        if key != CAL && find(&baseline, &key).is_none() {
            println!("{key:<45} {:>12} {:>12.0} {:>9}  NEW", "-", cur.min_ns, "-");
            rows.push(Row {
                key,
                base_ns: None,
                cur_ns: Some(cur.min_ns),
                ratio: None,
                verdict: "NEW",
            });
        }
    }
    // On GitHub runners, mirror the table into the job summary pane so the
    // per-entry deltas are readable without expanding the step log.
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !path.is_empty() {
            let md = markdown_summary(&rows, tolerance, scale, ok);
            // Append: the summary file is shared by every step in the job.
            let write = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()));
            if let Err(e) = write {
                eprintln!("bench_gate: cannot write GITHUB_STEP_SUMMARY ({path}): {e}");
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("bench gate: FAIL (regression or missing benchmark)");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_strings_and_numbers() {
        let line = "{\"group\":\"g\",\"id\":\"x/y\",\"mean_ns\":123,\"samples\":5}";
        assert_eq!(field(line, "group"), Some("g"));
        assert_eq!(field(line, "id"), Some("x/y"));
        assert_eq!(field(line, "mean_ns"), Some("123"));
        assert_eq!(field(line, "min_ns"), None);
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn markdown_summary_renders_every_row_kind() {
        let rows = vec![
            Row {
                key: "g/ok".into(),
                base_ns: Some(100.0),
                cur_ns: Some(90.0),
                ratio: Some(0.9),
                verdict: "ok",
            },
            Row {
                key: "g/gone".into(),
                base_ns: Some(50.0),
                cur_ns: None,
                ratio: None,
                verdict: "MISSING",
            },
            Row {
                key: "g/fresh".into(),
                base_ns: None,
                cur_ns: Some(70.0),
                ratio: None,
                verdict: "NEW",
            },
        ];
        let md = markdown_summary(&rows, 0.20, 1.25, false);
        assert!(md.starts_with("### Bench gate: FAIL"));
        assert!(md.contains("tolerance 20%, machine-speed scale 1.250"));
        assert!(md.contains("| `g/ok` | 100 | 90 | 0.90x | ok |"));
        assert!(md.contains("| `g/gone` | 50 | - | - | MISSING |"));
        assert!(md.contains("| `g/fresh` | - | 70 | - | NEW |"));
    }

    #[test]
    fn median_field_is_optional_and_drives_calibration() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bench_gate_median_{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\"group\":\"calibration\",\"id\":\"spin\",\"mean_ns\":900,\"median_ns\":500,\"min_ns\":300,\"max_ns\":4000,\"samples\":15}\n\
             {\"group\":\"old\",\"id\":\"entry\",\"mean_ns\":120,\"min_ns\":100,\"max_ns\":200,\"samples\":5}\n",
        )
        .unwrap();
        let entries = parse(path.to_str().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let cal = find(&entries, "calibration/spin").unwrap();
        assert_eq!(cal.median_ns, Some(500.0));
        assert_eq!(cal.calibration_ns(), 500.0);
        // Pre-median records parse fine and calibrate off their minimum.
        let old = find(&entries, "old/entry").unwrap();
        assert_eq!(old.median_ns, None);
        assert_eq!(old.calibration_ns(), 100.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bench_gate_test_{}.json", std::process::id()));
        std::fs::write(&path, "not json\n").unwrap();
        let err = parse(path.to_str().unwrap()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("malformed"));
    }
}
