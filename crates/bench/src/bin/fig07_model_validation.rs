//! Figure 7: LeNet accuracy obtained on "real" approximate DRAM devices
//! (the simulated devices of vendors A/B/C) versus accuracy obtained with the
//! fitted Error Model 0 — validating that the error models reproduce device
//! behaviour.

use eden_bench::report;
use eden_core::bounding::{BoundingLogic, CorrectionPolicy};
use eden_core::faults::ApproximateMemory;
use eden_core::inference;
use eden_dnn::zoo::ModelId;
use eden_dnn::Dataset;
use eden_dram::characterize::{characterize_bank, CharacterizeConfig};
use eden_dram::fit::fit_model;
use eden_dram::geometry::{partitions, PartitionGranularity};
use eden_dram::inject::Injector;
use eden_dram::{ApproxDramDevice, ErrorModelKind, OperatingPoint, Vendor};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Figure 7",
        "LeNet accuracy: simulated real device (SoftMC stand-in) vs fitted Error Model 0",
    );
    let (net, dataset) = report::train_model(ModelId::LeNet, 6, 3);
    let samples = &dataset.test()[..96.min(dataset.test().len())];
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let char_cfg = CharacterizeConfig {
        rows_per_pattern: 1,
        bitlines_per_row: 1024,
        reads_per_row: 3,
        seed: 9,
    };

    for vendor in Vendor::all() {
        let device = ApproxDramDevice::new(vendor, 50 + vendor as u64);
        let partition = partitions(device.geometry(), PartitionGranularity::Bank)[0];
        println!("\n{vendor} — voltage sweep");
        println!(
            "{:>8} {:>14} {:>16}",
            "VDD", "device acc", "Error Model 0 acc"
        );
        for &dv in &[0.10f32, 0.20, 0.25, 0.30, 0.35] {
            let op = OperatingPoint::with_vdd_reduction(dv);
            let obs = characterize_bank(&device, 0, &op, &char_cfg);
            let model = fit_model(ErrorModelKind::Uniform, &obs, 0);

            let mut dev_mem =
                ApproximateMemory::from_injector(Injector::from_device(device, partition, op), 1)
                    .with_bounding(bounding);
            let dev_acc =
                inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut dev_mem);

            let mut model_mem = ApproximateMemory::from_model(model, 1).with_bounding(bounding);
            let model_acc =
                inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut model_mem);

            println!("{:>7.2}V {:>13.3} {:>16.3}", op.vdd, dev_acc, model_acc);
        }
        println!("\n{vendor} — tRCD sweep");
        println!(
            "{:>8} {:>14} {:>16}",
            "tRCD", "device acc", "Error Model 0 acc"
        );
        for &dt in &[2.0f32, 4.0, 5.5, 7.0, 9.0] {
            let op = OperatingPoint::with_trcd_reduction(dt);
            let obs = characterize_bank(&device, 0, &op, &char_cfg);
            let model = fit_model(ErrorModelKind::Uniform, &obs, 0);
            let mut dev_mem =
                ApproximateMemory::from_injector(Injector::from_device(device, partition, op), 1)
                    .with_bounding(bounding);
            let dev_acc =
                inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut dev_mem);
            let mut model_mem = ApproximateMemory::from_model(model, 1).with_bounding(bounding);
            let model_acc =
                inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut model_mem);
            println!(
                "{:>6.1}ns {:>13.3} {:>16.3}",
                op.timing.trcd_ns, dev_acc, model_acc
            );
        }
    }
    println!("\npaper shape: the Error Model 0 curve tracks the real-device curve closely.");
}
