//! Section 7.2 (GPU): DRAM energy savings and speedup of EDEN on the Titan X
//! model for the YOLO and YOLO-Tiny workloads.

use eden_bench::report;
use eden_dnn::zoo::ModelId;
use eden_dram::OperatingPoint;
use eden_sysim::result::geometric_mean;
use eden_sysim::{GpuSim, SystemSim, WorkloadProfile};
use eden_tensor::Precision;

fn main() {
    report::init_threads();
    report::header(
        "Section 7.2 (GPU)",
        "GPU DRAM energy savings and speedup (YOLO family)",
    );
    let gpu: &dyn SystemSim = &GpuSim::table5();
    println!(
        "{:<14} {:<6} {:>12} {:>12} {:>12}",
        "model", "prec", "energy save", "EDEN speedup", "ideal tRCD=0"
    );
    let mut savings = Vec::new();
    let mut speedups = Vec::new();
    for id in [ModelId::YoloTiny, ModelId::Yolo] {
        let spec = id.spec();
        for (precision, coarse) in [
            (Precision::Fp32, spec.paper.coarse_fp32),
            (Precision::Int8, spec.paper.coarse_int8),
        ] {
            let Some((_, dvdd, dtrcd)) = coarse else {
                continue;
            };
            let workload = WorkloadProfile::for_model(id, precision);
            let nominal = gpu.run(&workload, &OperatingPoint::nominal());
            let energy = gpu.run(&workload, &OperatingPoint::with_vdd_reduction(dvdd));
            let faster = gpu.run(&workload, &OperatingPoint::with_trcd_reduction(dtrcd));
            let ideal = gpu.run_ideal_latency(&workload);
            let saving = energy.energy_reduction_vs(&nominal);
            let speedup = faster.speedup_over(&nominal);
            savings.push(1.0 - saving);
            speedups.push(speedup);
            println!(
                "{:<14} {:<6} {:>11.1}% {:>11.3}x {:>11.3}x",
                spec.display_name,
                precision.to_string(),
                100.0 * saving,
                speedup,
                ideal.speedup_over(&nominal)
            );
        }
    }
    println!(
        "\ngeometric means: {} energy saving, {:.3}x speedup   (paper: 37% energy, 1.027x speedup)",
        report::pct(1.0 - geometric_mean(&savings)),
        geometric_mean(&speedups)
    );
    println!("paper shape: GPU DRAM energy savings exceed CPU savings; speedups are small");
    println!("because the GPU hides most activation latency (YOLO is compute bound).");
}
