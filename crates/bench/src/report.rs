//! Small shared helpers for the experiment binaries.

use eden_core::inference::InferenceBackend;
use eden_core::session::RefetchMode;
use eden_dnn::data::SyntheticVision;
use eden_dnn::train::{TrainConfig, Trainer};
use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};

/// Applies the `--threads N` CLI flag (falling back to the `EDEN_THREADS`
/// environment variable, then to the machine parallelism) to the global
/// `eden-par` pool, and returns the effective worker count.
///
/// Every experiment binary calls this first thing in `main`, before any
/// parallel work, so the requested size always takes effect. Thread count
/// never changes results — only wall-clock time (see the README's
/// threading-model section).
pub fn init_threads() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let n = if let Some(v) = arg.strip_prefix("--threads=") {
            v.parse::<usize>().ok()
        } else if arg == "--threads" {
            args.next().and_then(|v| v.parse::<usize>().ok())
        } else {
            None
        };
        if let Some(n) = n {
            if !eden_par::configure_threads(n) {
                eprintln!("--threads {n} ignored: thread pool already started");
            }
            break;
        }
    }
    let effective = eden_par::current_num_threads();
    eprintln!("eden-par: {effective} worker thread(s)");
    effective
}

/// Applies the `--backend simulated|native` CLI flag (falling back to the
/// `EDEN_BACKEND` environment variable, then to the simulated-f32 default)
/// and returns the selected inference backend.
///
/// The native backend executes quantized models on the integer kernels
/// (faster, integer precisions only); the simulated backend is the seed
/// behavior. Both model the same approximate DRAM — see the README's
/// inference-backends section.
pub fn parse_backend() -> InferenceBackend {
    let mut args = std::env::args();
    let mut choice: Option<String> = None;
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--backend=") {
            choice = Some(v.to_string());
            break;
        }
        if arg == "--backend" {
            choice = args.next();
            break;
        }
    }
    let choice = choice.or_else(|| std::env::var("EDEN_BACKEND").ok());
    let backend = match choice {
        Some(v) => v.parse::<InferenceBackend>().unwrap_or_else(|e| {
            eprintln!("{e}; using the default backend");
            InferenceBackend::default()
        }),
        None => InferenceBackend::default(),
    };
    eprintln!("inference backend: {backend}");
    backend
}

/// Applies the `--refetch overlay|reload` CLI flag (falling back to the
/// `EDEN_REFETCH` environment variable, then to the sparse-overlay default)
/// and returns the selected weight-refetch mode.
///
/// `overlay` serves weight refetches as sparse corruption overlays (O(flips)
/// per refetch, the production path); `reload` is the full image-reload
/// reference implementation the overlay path is pinned against. Results are
/// bit-identical either way — the flag exists for A/B timing and for
/// driving the reference path end to end.
pub fn parse_refetch() -> RefetchMode {
    let mut args = std::env::args();
    let mut choice: Option<String> = None;
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--refetch=") {
            choice = Some(v.to_string());
            break;
        }
        if arg == "--refetch" {
            choice = args.next();
            break;
        }
    }
    let choice = choice.or_else(|| std::env::var("EDEN_REFETCH").ok());
    let mode = match choice {
        Some(v) => v.parse::<RefetchMode>().unwrap_or_else(|e| {
            eprintln!("{e}; using the default refetch mode");
            RefetchMode::default()
        }),
        None => RefetchMode::default(),
    };
    eprintln!("weight refetch mode: {mode}");
    mode
}

/// Trains the scaled-down zoo model `id` on its synthetic dataset and returns
/// the trained network together with the dataset.
pub fn train_model(id: ModelId, epochs: usize, seed: u64) -> (Network, SyntheticVision) {
    let dataset = id.dataset(seed);
    let mut net = id.build(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// Prints a section header in the style used by all experiment binaries.
pub fn header(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}: {description}");
    println!("==============================================================");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.215), "21.5%");
    }

    #[test]
    fn init_threads_reports_a_positive_pool_size() {
        assert!(init_threads() >= 1);
    }

    #[test]
    fn parse_backend_defaults_to_simulated() {
        assert_eq!(parse_backend(), InferenceBackend::SimulatedF32);
    }

    #[test]
    fn parse_refetch_defaults_to_overlay() {
        assert_eq!(parse_refetch(), RefetchMode::Overlay);
    }

    #[test]
    fn train_model_returns_a_runnable_network() {
        let (net, dataset) = train_model(ModelId::LeNet, 1, 0);
        assert!(net.param_count() > 0);
        assert!(!dataset.test().is_empty());
    }
}
