//! Small shared helpers for the experiment binaries.

use eden_dnn::data::SyntheticVision;
use eden_dnn::train::{TrainConfig, Trainer};
use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};

/// Trains the scaled-down zoo model `id` on its synthetic dataset and returns
/// the trained network together with the dataset.
pub fn train_model(id: ModelId, epochs: usize, seed: u64) -> (Network, SyntheticVision) {
    let dataset = id.dataset(seed);
    let mut net = id.build(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// Prints a section header in the style used by all experiment binaries.
pub fn header(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}: {description}");
    println!("==============================================================");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.215), "21.5%");
    }

    #[test]
    fn train_model_returns_a_runnable_network() {
        let (net, dataset) = train_model(ModelId::LeNet, 1, 0);
        assert!(net.param_count() > 0);
        assert!(!dataset.test().is_empty());
    }
}
