//! Small shared helpers for the experiment binaries.

use eden_core::inference::InferenceBackend;
use eden_core::session::RefetchMode;
use eden_dnn::data::SyntheticVision;
use eden_dnn::train::{TrainConfig, Trainer};
use eden_dnn::zoo::ModelId;
use eden_dnn::{Dataset, Network};

/// Extracts the value of a `--flag value` / `--flag=value` pair from an
/// argument list. `Some(Err(..))` means the flag was present but malformed
/// (no value followed it).
fn flag_value(args: &[String], flag: &str) -> Option<Result<String, String>> {
    let prefix = format!("{flag}=");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(v) = arg.strip_prefix(&prefix) {
            return Some(Ok(v.to_string()));
        }
        if arg == flag {
            return Some(match it.next() {
                Some(v) => Ok(v.clone()),
                None => Err(format!("{flag} requires a value")),
            });
        }
    }
    None
}

/// Parses the `--threads` request out of an argument list: `Ok(None)` when
/// the flag is absent, `Ok(Some(n))` for a valid positive count, `Err` for
/// anything else. Zero and unparseable values (`--threads abc`,
/// `--threads=-1`) are hard errors: a load measurement silently running at
/// the default pool size is exactly the failure mode this must prevent.
pub fn threads_from_args(args: &[String]) -> Result<Option<usize>, String> {
    let Some(value) = flag_value(args, "--threads") else {
        return Ok(None);
    };
    let value = value?;
    match value.parse::<usize>() {
        Ok(0) => Err("--threads 0 is invalid: the pool needs at least one worker".to_string()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "--threads {value:?} is invalid: expected a positive integer"
        )),
    }
}

/// Applies the `--threads N` CLI flag (falling back to the `EDEN_THREADS`
/// environment variable, then to the machine parallelism) to the global
/// `eden-par` pool, and returns the effective worker count.
///
/// Every experiment binary calls this first thing in `main`, before any
/// parallel work, so the requested size always takes effect. Thread count
/// never changes results — only wall-clock time (see the README's
/// threading-model section). An invalid or zero `--threads` value aborts
/// the run with a non-zero exit instead of silently measuring at the
/// default pool size.
pub fn init_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match threads_from_args(&args) {
        Ok(Some(n)) => {
            if !eden_par::configure_threads(n) {
                eprintln!("--threads {n} ignored: thread pool already started");
            }
        }
        Ok(None) => {}
        Err(e) => fatal(&e),
    }
    let effective = eden_par::current_num_threads();
    eprintln!("eden-par: {effective} worker thread(s)");
    effective
}

/// Resolves a `--flag` / environment-variable pair to a parsed value:
/// CLI takes precedence, then the environment, then the default. Unknown
/// values return the parser's `Err` — callers either abort ([`fatal`], the
/// binaries) or surface it as a request-validation error (eden-serve).
fn choice_from<T: std::str::FromStr<Err = String> + Default>(
    args: &[String],
    flag: &str,
    env_var: &str,
) -> Result<T, String> {
    let choice = match flag_value(args, flag) {
        Some(v) => Some(v?),
        None => std::env::var(env_var).ok(),
    };
    match choice {
        Some(v) => v.parse::<T>(),
        None => Ok(T::default()),
    }
}

/// [`parse_backend`] on an explicit argument list, returning `Err` instead
/// of exiting — the form eden-serve request validation reuses.
pub fn backend_from_args(args: &[String]) -> Result<InferenceBackend, String> {
    choice_from(args, "--backend", "EDEN_BACKEND")
}

/// [`parse_refetch`] on an explicit argument list, returning `Err` instead
/// of exiting.
pub fn refetch_from_args(args: &[String]) -> Result<RefetchMode, String> {
    choice_from(args, "--refetch", "EDEN_REFETCH")
}

/// Applies the `--backend simulated|native` CLI flag (falling back to the
/// `EDEN_BACKEND` environment variable, then to the simulated-f32 default)
/// and returns the selected inference backend.
///
/// The native backend executes quantized models on the integer kernels
/// (faster, integer precisions only); the simulated backend is the seed
/// behavior. Both model the same approximate DRAM — see the README's
/// inference-backends section. An unknown backend name exits non-zero: a
/// typo (`--backend ntaive`) must not silently measure the default
/// configuration for a whole A/B run.
pub fn parse_backend() -> InferenceBackend {
    let args: Vec<String> = std::env::args().collect();
    let backend = backend_from_args(&args).unwrap_or_else(|e| fatal(&e));
    eprintln!("inference backend: {backend}");
    backend
}

/// Applies the `--refetch overlay|reload` CLI flag (falling back to the
/// `EDEN_REFETCH` environment variable, then to the sparse-overlay default)
/// and returns the selected weight-refetch mode.
///
/// `overlay` serves weight refetches as sparse corruption overlays (O(flips)
/// per refetch, the production path); `reload` is the full image-reload
/// reference implementation the overlay path is pinned against. Results are
/// bit-identical either way — the flag exists for A/B timing and for
/// driving the reference path end to end. An unknown mode exits non-zero
/// rather than silently measuring the default.
pub fn parse_refetch() -> RefetchMode {
    let args: Vec<String> = std::env::args().collect();
    let mode = refetch_from_args(&args).unwrap_or_else(|e| fatal(&e));
    eprintln!("weight refetch mode: {mode}");
    mode
}

/// Prints a CLI error and exits non-zero.
fn fatal(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Trains the scaled-down zoo model `id` on its synthetic dataset and returns
/// the trained network together with the dataset.
pub fn train_model(id: ModelId, epochs: usize, seed: u64) -> (Network, SyntheticVision) {
    let dataset = id.dataset(seed);
    let mut net = id.build(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// Prints a section header in the style used by all experiment binaries.
pub fn header(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}: {description}");
    println!("==============================================================");
}

/// Formats a fraction as a percentage with one decimal. The empty-sample
/// NaN accuracy sentinel renders as an explicit `n/a` marker — `NaN%` in a
/// figure or table would read as a formatting bug rather than "no samples".
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        return "n/a".to_string();
    }
    format!("{:.1}%", 100.0 * x)
}

/// Formats an accuracy fraction as the 3-decimal cell used by the sweep
/// printers, with the NaN sentinel rendered as `n/a`.
pub fn acc(x: f32) -> String {
    if x.is_nan() {
        return "n/a".to_string();
    }
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.215), "21.5%");
    }

    #[test]
    fn nan_sentinel_renders_as_na() {
        // The empty-sample accuracy sentinel must never leak as "NaN%".
        assert_eq!(pct(f64::NAN), "n/a");
        assert_eq!(acc(f32::NAN), "n/a");
        assert_eq!(acc(0.4375), "0.438");
    }

    #[test]
    fn init_threads_reports_a_positive_pool_size() {
        assert!(init_threads() >= 1);
    }

    #[test]
    fn threads_from_args_accepts_positive_counts() {
        assert_eq!(threads_from_args(&args(&["bin"])), Ok(None));
        assert_eq!(
            threads_from_args(&args(&["bin", "--threads", "4"])),
            Ok(Some(4))
        );
        assert_eq!(
            threads_from_args(&args(&["bin", "--threads=8"])),
            Ok(Some(8))
        );
    }

    #[test]
    fn threads_from_args_rejects_invalid_and_zero_values() {
        // Each of these used to silently fall through to the default pool
        // size (or pass 0 straight to configure_threads).
        assert!(threads_from_args(&args(&["bin", "--threads", "abc"])).is_err());
        assert!(threads_from_args(&args(&["bin", "--threads=-1"])).is_err());
        assert!(threads_from_args(&args(&["bin", "--threads", "0"])).is_err());
        assert!(threads_from_args(&args(&["bin", "--threads=0"])).is_err());
        assert!(threads_from_args(&args(&["bin", "--threads"])).is_err());
    }

    #[test]
    fn parse_backend_defaults_to_simulated() {
        assert_eq!(parse_backend(), InferenceBackend::SimulatedF32);
    }

    #[test]
    fn backend_from_args_rejects_typos() {
        assert_eq!(
            backend_from_args(&args(&["bin", "--backend", "native"])),
            Ok(InferenceBackend::NativeInt)
        );
        // A typo must be a hard error, not a silent run of the default
        // configuration.
        assert!(backend_from_args(&args(&["bin", "--backend", "ntaive"])).is_err());
        assert!(backend_from_args(&args(&["bin", "--backend=ntaive"])).is_err());
        assert!(backend_from_args(&args(&["bin", "--backend"])).is_err());
    }

    #[test]
    fn parse_refetch_defaults_to_overlay() {
        assert_eq!(parse_refetch(), RefetchMode::Overlay);
    }

    #[test]
    fn refetch_from_args_rejects_typos() {
        assert_eq!(
            refetch_from_args(&args(&["bin", "--refetch=reload"])),
            Ok(RefetchMode::ImageReload)
        );
        assert!(refetch_from_args(&args(&["bin", "--refetch", "overlya"])).is_err());
    }

    #[test]
    fn train_model_returns_a_runnable_network() {
        let (net, dataset) = train_model(ModelId::LeNet, 1, 0);
        assert!(net.param_count() > 0);
        assert!(!dataset.test().is_empty());
    }
}
