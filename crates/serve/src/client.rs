//! A small blocking client for the eden-serve protocol, used by the
//! `serve_load` load generator, the integration tests and the CI smoke
//! test.

use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{read_json, write_json};

/// One connection to an eden-serve daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon at `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Connects, retrying until the daemon is up or `timeout` elapses
    /// (startup races in tests and CI).
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let socket = socket.as_ref();
        let start = std::time::Instant::now();
        loop {
            match Client::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request and reads one response frame.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        write_json(&mut self.stream, request)?;
        read_json(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Sends a `sweep` request and invokes `on_point` for each streamed
    /// point frame; returns the terminal frame (`"done": true`).
    pub fn sweep(
        &mut self,
        request: &Json,
        mut on_point: impl FnMut(&Json),
    ) -> std::io::Result<Json> {
        write_json(&mut self.stream, request)?;
        loop {
            let frame = read_json(&mut self.stream)?.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-sweep",
                )
            })?;
            if frame.get("done").and_then(Json::as_bool) == Some(true) {
                return Ok(frame);
            }
            if let Some(point) = frame.get("point") {
                on_point(point);
            } else {
                return Ok(frame);
            }
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::str("ping"))]))
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::str("stats"))]))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::str("shutdown"))]))
    }
}
